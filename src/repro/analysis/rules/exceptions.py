"""exception-contract: failures must be handled or envelope-coded.

The gateway's wire contract (PR 5) is "never a traceback on the wire":
every failure crossing the API boundary is an
:class:`~repro.api.schemas.ErrorEnvelope` carrying one of the stable
``ErrorCode`` values that clients branch on.  Inside the system, a
handler that swallows everything silently (``except Exception: pass``)
erases the evidence the next incident needs.

Checks:

* bare ``except:`` anywhere — catches ``SystemExit``/
  ``KeyboardInterrupt`` and hides typos in exception names;
* ``except Exception``/``except BaseException`` whose body is *only*
  ``pass``/``...`` — a silent swallow.  Sites where ignoring is the
  contract (a peer that already hung up) keep the ``except`` and add a
  justified suppression;
* in ``api/`` modules: ``ErrorEnvelope(code=...)`` built from a string
  literal that is not one of the stable codes (the codes themselves are
  read from the project's ``schemas.py``, so the rule tracks the real
  enum, not a copy), and ``raise Exception(...)`` / ``raise
  BaseException(...)`` which no boundary can map to an envelope.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import Rule, register


def _stable_codes(project: Project) -> set[str] | None:
    """The ErrorCode constants, read from the project's api schemas."""
    for module in project.modules:
        if not module.path.endswith("schemas.py"):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "ErrorCode":
                codes = set()
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign) and isinstance(
                        stmt.value, ast.Constant
                    ):
                        if isinstance(stmt.value.value, str):
                            codes.add(stmt.value.value)
                return codes or None
    return None


def _is_swallow_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ``...``
        return False
    return True


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    def broad(expr: ast.AST) -> bool:
        return isinstance(expr, ast.Name) and expr.id in (
            "Exception",
            "BaseException",
        )

    if handler.type is None:
        return False  # the bare-except check covers it
    if broad(handler.type):
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(broad(e) for e in handler.type.elts)
    return False


@register
class ExceptionContractRule(Rule):
    id = "exception-contract"
    summary = "bare/silent excepts; API errors outside the stable codes"
    rationale = (
        "PR 5: the gateway promises 'never a traceback on the wire' — 16 "
        "stable ErrorEnvelope codes that clients branch on"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        codes = _stable_codes(project)
        for module in project.modules:
            in_api = "api" in module.path.split("/")
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(module, node)
                elif in_api and isinstance(node, ast.Call):
                    yield from self._check_api_call(module, node, codes)
                elif in_api and isinstance(node, ast.Raise):
                    yield from self._check_api_raise(module, node)

    def _check_handler(self, module: ModuleInfo, node: ast.ExceptHandler):
        if node.type is None:
            yield module.finding(
                self.id,
                node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                "hides misspelled exception names",
                hint="name the exceptions this site can actually handle",
            )
            return
        if _catches_everything(node) and _is_swallow_body(node.body):
            yield module.finding(
                self.id,
                node,
                "'except Exception' with a pass-only body silently erases "
                "the failure",
                hint=(
                    "handle it, narrow it, or — where ignoring is the "
                    "contract — suppress with '# provlint: "
                    "disable=exception-contract - <why>'"
                ),
            )

    def _check_api_call(
        self, module: ModuleInfo, node: ast.Call, codes: set[str] | None
    ):
        name = node.func.attr if isinstance(node.func, ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        if name != "ErrorEnvelope" or codes is None:
            return
        for kw in node.keywords:
            if (
                kw.arg == "code"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
                and kw.value.value not in codes
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"ErrorEnvelope code {kw.value.value!r} is not one of "
                    f"the stable ErrorCode values — clients cannot branch "
                    f"on it",
                    hint="use an ErrorCode.<NAME> constant",
                )

    def _check_api_raise(self, module: ModuleInfo, node: ast.Raise):
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in ("Exception", "BaseException"):
            yield module.finding(
                self.id,
                node,
                f"raising bare {exc.id} in an api/ module — no boundary "
                f"can map it to a stable ErrorEnvelope code",
                hint="raise a typed error the gateway maps to an ErrorCode",
            )
