"""The provenance AI agent (paper §4): live NL interaction with provenance.

Components map one-to-one onto Figure 4:

* :mod:`context_manager` — subscribes to the streaming hub; maintains the
  in-memory context (recent task messages as a DataFrame), the
  **dynamic dataflow schema** (:mod:`schema`), and the
  **query guidelines** (:mod:`guidelines`);
* :mod:`prompts` / :mod:`rag` — prompt templates and RAG strategies
  (Table 2 configurations) assembling the LLM context;
* :mod:`router` — the Tool Router: rule-based + LLM intent dispatch;
* :mod:`tools` — MCP-style tools: in-memory query, provenance-DB query,
  anomaly detector, plotter, summariser — plus bring-your-own-tool
  registration;
* :mod:`monitor` — the Context Monitor dispatching tools on rules;
* :mod:`recorder` — provenance *of* the agent: tool executions and LLM
  interactions recorded as W3C-PROV-style task messages (§4.2);
* :mod:`mcp` — a minimal Model Context Protocol server/client pair;
* :mod:`session` — :class:`AgentSession`, one user's conversation state
  (history, prompt config, guidelines, recorder identity);
* :mod:`service` — :class:`AgentService`, the multi-session gateway:
  shared tools/LLM/cache, worker-pool turn execution with per-session
  ordering;
* :mod:`agent` — the single-session facade:
  ``ProvenanceAgent.chat("which bond ...")``.
"""

from repro.agent.schema import DynamicDataflowSchema
from repro.agent.guidelines import GuidelineStore, STATIC_GUIDELINES
from repro.agent.context_manager import ContextManager
from repro.agent.prompts import PromptBuilder, PromptConfig
from repro.agent.session import AgentReply, AgentSession
from repro.agent.service import AgentService
from repro.agent.agent import ProvenanceAgent

__all__ = [
    "DynamicDataflowSchema",
    "GuidelineStore",
    "STATIC_GUIDELINES",
    "ContextManager",
    "PromptBuilder",
    "PromptConfig",
    "ProvenanceAgent",
    "AgentService",
    "AgentSession",
    "AgentReply",
]
