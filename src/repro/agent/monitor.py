"""Context Monitor (paper §4.2).

"The Context Monitor periodically inspects the in-memory buffer
maintained by the Context Manager and dispatches tools based on
configurable rules."  Rules pair a predicate over the context manager
with a tool invocation; :meth:`poll` evaluates every rule once (a real
deployment calls it from a timer loop — tests and benches call it
directly for determinism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.agent.context_manager import ContextManager
from repro.agent.tools.base import Tool, ToolResult

__all__ = ["MonitorRule", "ContextMonitor"]


@dataclass
class MonitorRule:
    """When ``condition(context_manager)`` holds, invoke ``tool``."""

    name: str
    condition: Callable[[ContextManager], bool]
    tool: Tool
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: fire at most once per condition "episode" (reset when it goes False)
    edge_triggered: bool = True
    _armed: bool = True


class ContextMonitor:
    """Evaluates monitoring rules against the live context."""

    def __init__(self, context_manager: ContextManager):
        self.context_manager = context_manager
        self.rules: list[MonitorRule] = []
        self.dispatches: list[tuple[str, ToolResult]] = []

    def add_rule(self, rule: MonitorRule) -> MonitorRule:
        self.rules.append(rule)
        return rule

    def every_n_messages(
        self, n: int, tool: Tool, name: str | None = None, **kwargs: Any
    ) -> MonitorRule:
        """Convenience: dispatch ``tool`` whenever n new messages arrived."""
        state = {"last": 0}

        def condition(cm: ContextManager) -> bool:
            if cm.messages_received - state["last"] >= n:
                state["last"] = cm.messages_received
                return True
            return False

        rule = MonitorRule(
            name=name if name is not None else f"every-{n}-messages:{tool.name}",
            condition=condition,
            tool=tool,
            kwargs=kwargs,
            edge_triggered=False,
        )
        return self.add_rule(rule)

    def poll(self) -> list[tuple[str, ToolResult]]:
        """Evaluate all rules once; returns this round's dispatches."""
        fired: list[tuple[str, ToolResult]] = []
        for rule in self.rules:
            try:
                active = bool(rule.condition(self.context_manager))
            except Exception:  # noqa: BLE001 - a broken rule must not kill the loop
                continue
            if not active:
                rule._armed = True
                continue
            if rule.edge_triggered and not rule._armed:
                continue
            rule._armed = False
            result = rule.tool.invoke(**rule.kwargs)
            fired.append((rule.name, result))
        self.dispatches.extend(fired)
        return fired
