"""ProvenanceAgent: the user-facing facade (paper Fig. 4, §5.3).

``agent.chat("Which bond has the highest dissociation free energy?")``
routes the message (greeting / guideline / plot / monitoring /
historical), invokes the right tool, records the tool execution and any
LLM interaction as provenance (§4.2), and returns an
:class:`AgentReply` carrying the summary text, the generated code, the
tabular result, and the chart when one was requested — the same answer
anatomy as the paper's GUI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agent.context_manager import ContextManager
from repro.agent.monitor import ContextMonitor
from repro.agent.nl_tokens import extract_ids, looks_id_shaped
from repro.agent.prompts import PromptConfig
from repro.agent.recorder import AgentProvenanceRecorder
from repro.agent.router import Intent, ToolRouter
from repro.agent.tools.anomaly import AnomalyDetectorTool
from repro.agent.tools.base import Tool, ToolRegistry, ToolResult
from repro.agent.tools.db_query import DatabaseQueryTool
from repro.agent.tools.graph_query import GraphQueryTool
from repro.agent.tools.in_memory_query import FULL_CONTEXT, InMemoryQueryTool
from repro.agent.tools.plotting import PlottingTool
from repro.agent.tools.summarize import SummaryTool, summarize
from repro.agent.mcp.server import MCPServer
from repro.capture.context import CaptureContext
from repro.dataframe import DataFrame
from repro.lineage import LineageIndex, LineageService
from repro.llm.service import LLMServer
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI

__all__ = ["ProvenanceAgent", "AgentReply"]


@dataclass
class AgentReply:
    """Everything the GUI would show for one turn."""

    text: str
    intent: Intent
    ok: bool = True
    code: str | None = None
    table: DataFrame | None = None
    chart: str | None = None
    error: str | None = None
    details: dict[str, Any] = field(default_factory=dict)


class ProvenanceAgent:
    """Live provenance chat agent over a streaming capture context."""

    def __init__(
        self,
        capture_context: CaptureContext,
        *,
        llm: LLMServer | None = None,
        model: str = "gpt-4",
        query_api: QueryAPI | None = None,
        lineage: LineageIndex | None = None,
        keeper: "ProvenanceKeeper | None" = None,
        prompt_config: PromptConfig = FULL_CONTEXT,
        agent_id: str = "provenance-agent",
    ):
        self.capture_context = capture_context
        #: optional keeper whose ingest stats the MCP surface exposes;
        #: its lineage index is reused when no explicit one is given
        self.keeper = keeper
        self.llm = llm or LLMServer()
        self.model = model
        self.context_manager = ContextManager(capture_context.broker).start()
        self.recorder = AgentProvenanceRecorder(capture_context, agent_id=agent_id)
        self.router = ToolRouter()
        self.registry = ToolRegistry()

        self.query_tool = InMemoryQueryTool(
            self.context_manager, self.llm, model=model, prompt_config=prompt_config
        )
        self.registry.register(self.query_tool)
        self.plot_tool = PlottingTool(self.query_tool)
        self.registry.register(self.plot_tool)
        self.anomaly_tool = AnomalyDetectorTool(
            self.context_manager, capture_context.broker
        )
        self.registry.register(self.anomaly_tool)
        self.registry.register(SummaryTool())
        if query_api is not None:
            self.db_tool: DatabaseQueryTool | None = DatabaseQueryTool(
                query_api, self.context_manager, self.llm, model=model,
                prompt_config=prompt_config,
            )
            self.registry.register(self.db_tool)
        else:
            self.db_tool = None

        # live lineage: use the caller's index (e.g. one a keeper already
        # feeds) or run our own broker-fed service, replaying retained
        # history so lineage questions work on campaigns that ran before
        # the agent attached
        if lineage is None and keeper is not None:
            lineage = keeper.lineage_index
        if lineage is not None:
            self.lineage = lineage
            self.lineage_service: LineageService | None = None
        else:
            self.lineage_service = LineageService(capture_context.broker).start(
                replay=True
            )
            self.lineage = self.lineage_service.index
        self.graph_tool = GraphQueryTool(self.lineage)
        self.registry.register(self.graph_tool)

        self.monitor = ContextMonitor(self.context_manager)
        self.mcp = MCPServer(self.registry)
        self.mcp.add_resource(
            "dataflow-schema", self.context_manager.schema_payload
        )
        self.mcp.add_resource("example-values", self.context_manager.values_payload)
        self.mcp.add_resource("lineage-stats", self._lineage_stats)
        if query_api is not None:
            # shares QueryAPI.counts, the same indexed tally the
            # monitoring surface uses for status breakdowns
            self.mcp.add_resource(
                "db-status-counts", lambda: query_api.counts("status")
            )
        self.mcp.add_resource(
            "guidelines",
            lambda: [g.text for g in self.context_manager.guidelines.all()],
        )
        self.turns: list[AgentReply] = []

    # -- bring your own tool -----------------------------------------------------
    def register_tool(self, tool: Tool) -> None:
        self.registry.register(tool)

    # -- MCP resources -----------------------------------------------------------
    def _lineage_stats(self) -> dict[str, Any]:
        """Live lineage stats, with keeper ingest accounting when wired."""
        stats: dict[str, Any] = self.lineage.stats()
        if self.keeper is not None:
            stats["ingest"] = self.keeper.stats()
        return stats

    # -- chat -----------------------------------------------------------------------
    def chat(self, message: str) -> AgentReply:
        intent = self.router.classify(message)
        started = self.capture_context.clock.now()

        if intent == Intent.GREETING:
            reply = AgentReply(
                text=(
                    "Hello! I am the provenance agent. Ask me about running "
                    "or completed workflow tasks, their data, telemetry, or "
                    "where they ran."
                ),
                intent=intent,
            )
        elif intent == Intent.ADD_GUIDELINE:
            self.context_manager.add_user_guideline(message)
            reply = AgentReply(
                text=(
                    "Understood — I stored that as a session guideline and "
                    "will apply it to future queries (it overrides any "
                    "conflicting earlier guideline)."
                ),
                intent=intent,
            )
        elif intent == Intent.VISUALIZATION:
            reply = self._tool_turn(self.plot_tool, message, intent)
        elif intent == Intent.LINEAGE_QUERY:
            reply = self._tool_turn(self.graph_tool, message, intent)
            if not reply.ok and not any(
                looks_id_shaped(t) for t in extract_ids(message)
            ):
                # traversal vocabulary around quoted free text (activity
                # names, guideline fragments) — not a real task id; the
                # LLM-backed monitoring tool answered these before the
                # lineage intent existed, so hand the question back to it
                intent = Intent.MONITORING_QUERY
                reply = self._tool_turn(self.query_tool, message, intent)
        elif intent == Intent.HISTORICAL_QUERY and self.db_tool is not None:
            reply = self._tool_turn(self.db_tool, message, intent)
        else:
            reply = self._tool_turn(self.query_tool, message, intent)

        ended = self.capture_context.clock.now()
        tool_name = {
            Intent.GREETING: "greeting",
            Intent.ADD_GUIDELINE: "add_guideline",
            Intent.VISUALIZATION: self.plot_tool.name,
            Intent.LINEAGE_QUERY: self.graph_tool.name,
            Intent.HISTORICAL_QUERY: getattr(self.db_tool, "name", "db"),
            Intent.MONITORING_QUERY: self.query_tool.name,
        }[intent]
        tool_task_id = self.recorder.record_tool_execution(
            tool_name,
            {"message": message},
            {"ok": reply.ok, "summary": reply.text[:200]},
            started_at=started,
            ended_at=ended,
            failed=not reply.ok,
        )
        if intent in (
            Intent.VISUALIZATION,
            Intent.HISTORICAL_QUERY,
            Intent.MONITORING_QUERY,
        ):
            response = self.query_tool.last_response
            if response is not None:
                self.recorder.record_llm_interaction(
                    response.model,
                    message,
                    response.text,
                    started_at=started,
                    ended_at=started + response.latency_s,
                    informed_by=tool_task_id,
                    prompt_tokens=response.prompt_tokens,
                    output_tokens=response.output_tokens,
                )
        self.capture_context.flush()
        self.turns.append(reply)
        return reply

    # -- internals -----------------------------------------------------------------------
    def _tool_turn(self, tool: Tool, message: str, intent: Intent) -> AgentReply:
        result: ToolResult = tool.invoke(question=message)
        if not result.ok:
            return AgentReply(
                text=(
                    f"I could not answer that: {result.summary}. "
                    f"The generated query was shown below so you can correct "
                    f"it or add a guideline."
                ),
                intent=intent,
                ok=False,
                code=result.code,
                error=result.error,
            )
        chart = None
        table = None
        data = result.data
        if intent == Intent.VISUALIZATION:
            chart = data if isinstance(data, str) else None
            text = f"Here is the chart you asked for ({result.summary})."
        elif intent == Intent.LINEAGE_QUERY:
            # the graph tool's summary already names the traversal shape
            # ("4 task(s) upstream of ..."), which beats a generic row dump
            table = data if isinstance(data, DataFrame) else None
            text = (result.summary or summarize(data, message)).rstrip(".") + "."
            text = text[0].upper() + text[1:]
        else:
            table = data if isinstance(data, DataFrame) else None
            text = summarize(data, message)
        return AgentReply(
            text=text,
            intent=intent,
            code=result.code,
            table=table,
            chart=chart,
            details=result.details,
        )
