"""ProvenanceAgent: the single-session facade (paper Fig. 4, §5.3).

``agent.chat("Which bond has the highest dissociation free energy?")``
routes the message (greeting / guideline / plot / monitoring /
historical), invokes the right tool, records the tool execution and any
LLM interaction as provenance (§4.2), and returns an
:class:`AgentReply` carrying the summary text, the generated code, the
tabular result, and the chart when one was requested — the same answer
anatomy as the paper's GUI.

Since the serving-layer refactor the heavy lifting lives in
:class:`~repro.agent.service.AgentService`, which serves many
concurrent sessions over shared infrastructure, and since the gateway
refactor every turn rides through the
:class:`~repro.api.gateway.ProvenanceGateway` — the same versioned
front door remote clients use — so facade traffic shows up in gateway
stats and exercises the same code path as ``/v1/sessions/{id}/chat``.
``ProvenanceAgent`` is the thin single-user wrapper: it owns one
service + gateway with one ``"default"`` session and exposes the
pre-refactor attribute surface (``context_manager``, ``query_tool``,
``mcp``, ``turns``, ...) unchanged.  Multi-user callers should hold an
``AgentService`` directly (or a :class:`~repro.api.GatewayClient`) and
create one session per user.
"""

from __future__ import annotations

from typing import Any

from repro.agent.prompts import PromptConfig
from repro.agent.service import AgentService
from repro.agent.session import AgentReply, AgentSession
from repro.agent.tools.base import Tool
from repro.agent.tools.in_memory_query import FULL_CONTEXT
from repro.api.gateway import ProvenanceGateway
from repro.capture.context import CaptureContext
from repro.lineage import LineageIndex
from repro.llm.service import LLMServer
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI

__all__ = ["ProvenanceAgent", "AgentReply"]

#: the facade's one session
DEFAULT_SESSION_ID = "default"


class ProvenanceAgent:
    """Live provenance chat agent over a streaming capture context."""

    def __init__(
        self,
        capture_context: CaptureContext,
        *,
        llm: LLMServer | None = None,
        model: str = "gpt-4",
        query_api: QueryAPI | None = None,
        lineage: LineageIndex | None = None,
        keeper: "ProvenanceKeeper | None" = None,
        prompt_config: PromptConfig = FULL_CONTEXT,
        agent_id: str = "provenance-agent",
    ):
        self.service = AgentService(
            capture_context,
            llm=llm,
            model=model,
            query_api=query_api,
            lineage=lineage,
            keeper=keeper,
            prompt_config=prompt_config,
            agent_id=agent_id,
        )
        #: the versioned front door; remote transports and this facade
        #: share it, so all traffic lands in one stats surface
        self.gateway = ProvenanceGateway(self.service)
        # the default session keeps the pre-refactor identities (plain
        # agent_id / "agent-session" workflow) and shares the context
        # manager's guideline store, which the MCP "guidelines" resource
        # and prompt assembly historically read
        self.session: AgentSession = self.service.create_session(
            DEFAULT_SESSION_ID,
            agent_id=agent_id,
            workflow_id="agent-session",
            guidelines=self.service.context_manager.guidelines,
        )

    # -- chat -----------------------------------------------------------------------
    def chat(self, message: str) -> AgentReply:
        return self.gateway.chat_native(DEFAULT_SESSION_ID, message)

    # -- bring your own tool -----------------------------------------------------
    def register_tool(self, tool: Tool) -> None:
        self.service.register_tool(tool)

    # -- pre-refactor attribute surface (delegation) -----------------------------
    @property
    def capture_context(self) -> CaptureContext:
        return self.service.capture_context

    @property
    def keeper(self) -> "ProvenanceKeeper | None":
        return self.service.keeper

    @property
    def llm(self) -> LLMServer:
        return self.service.llm

    @property
    def model(self) -> str:
        return self.service.model

    @property
    def context_manager(self):
        return self.service.context_manager

    @property
    def recorder(self):
        return self.session.recorder

    @property
    def router(self):
        return self.service.router

    @property
    def registry(self):
        return self.service.registry

    @property
    def query_tool(self):
        return self.service.query_tool

    @property
    def plot_tool(self):
        return self.service.plot_tool

    @property
    def anomaly_tool(self):
        return self.service.anomaly_tool

    @property
    def db_tool(self):
        return self.service.db_tool

    @property
    def graph_tool(self):
        return self.service.graph_tool

    @property
    def lineage(self):
        return self.service.lineage

    @property
    def lineage_service(self):
        return self.service.lineage_service

    @property
    def monitor(self):
        return self.service.monitor

    @property
    def mcp(self):
        return self.service.mcp

    @property
    def turns(self) -> list[AgentReply]:
        return self.session.turns

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "ProvenanceAgent":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
