"""Shared id-token grammar for natural-language questions.

The router (does this question name a task?) and the graph-query tool
(which tasks does it name?) must agree on what counts as an id token —
one definition lives here so the two can never drift.
"""

from __future__ import annotations

import re

__all__ = [
    "QUOTED_RE",
    "BARE_ID_RE",
    "TASK_ID_TOKEN_RE",
    "extract_ids",
    "looks_id_shaped",
]

#: 'single' or "double" quoted spans.
QUOTED_RE = re.compile(r"'([^']+)'|\"([^\"]+)\"")

#: unquoted tokens shaped like the system's ids: timestamp-derived task
#: ids (``1753457858.95_4``) and UUID4 workflow/campaign ids, optionally
#: with a ``/run`` suffix (workflow-run records).
_ID_SHAPE = (
    r"\d+\.\d+_[\w.-]+"
    r"|[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}(?:/run)?"
)
BARE_ID_RE = re.compile(rf"\b({_ID_SHAPE})\b")

#: anything the router should treat as "this question names an id".
TASK_ID_TOKEN_RE = re.compile(rf"'[^']+'|\"[^\"]+\"|\b(?:{_ID_SHAPE})\b")

_ID_SHAPED_FULL = re.compile(rf"^(?:{_ID_SHAPE})$")

_TOKEN_RE = re.compile(rf"'([^']+)'|\"([^\"]+)\"|\b({_ID_SHAPE})\b")


def extract_ids(text: str) -> list[str]:
    """Candidate ids in the order the question names them.

    Quoted spans and bare id-shaped tokens are collected together — a
    question can mix a real task id with quoted free text ("downstream
    of 1753458.95_4 in the 'alpha' workflow") and must not lose the id.
    Duplicates collapse to their first position.
    """
    out: list[str] = []
    for m in _TOKEN_RE.finditer(text):
        token = m.group(1) or m.group(2) or m.group(3)
        if token and token not in out:
            out.append(token)
    return out


def looks_id_shaped(token: str) -> bool:
    """True when a token has the system's id shape (vs free text)."""
    return bool(_ID_SHAPED_FULL.match(token))
