"""MCP client session: the consumer half of the agent-client architecture."""

from __future__ import annotations

import itertools
from typing import Any

from repro.agent.mcp.protocol import MCPRequest, MCPResponse
from repro.agent.mcp.server import MCPServer
from repro.errors import AgentError

__all__ = ["MCPClient"]


class MCPClient:
    """Talks to an MCPServer through the JSON wire format.

    Serialising through JSON (rather than passing objects) keeps the
    client honest: everything it sees could have crossed a socket.
    """

    def __init__(self, server: MCPServer):
        self._server = server
        self._ids = itertools.count(1)
        self.server_info: dict[str, Any] | None = None

    def initialize(self) -> dict[str, Any]:
        self.server_info = self._call("initialize", {})
        return self.server_info

    def list_tools(self) -> list[dict[str, Any]]:
        return self._call("tools/list", {})["tools"]

    def call_tool(self, name: str, **arguments: Any) -> dict[str, Any]:
        return self._call("tools/call", {"name": name, "arguments": arguments})

    def list_resources(self) -> list[str]:
        return self._call("resources/list", {})["resources"]

    def read_resource(self, name: str) -> Any:
        return self._call("resources/read", {"name": name})["contents"]

    def list_prompts(self) -> list[str]:
        return self._call("prompts/list", {})["prompts"]

    def get_prompt(self, name: str, **arguments: Any) -> str:
        return self._call(
            "prompts/get", {"name": name, "arguments": arguments}
        )["prompt"]

    def _call(self, method: str, params: dict[str, Any]) -> Any:
        request = MCPRequest(
            method=method, params=params, request_id=next(self._ids)
        )
        raw = self._server.handle_json(request.to_json())
        response = MCPResponse.from_json(raw)
        if not response.ok:
            assert response.error is not None
            raise AgentError(
                f"MCP {method} failed [{response.error.code}]: "
                f"{response.error.message}"
            )
        return response.result
