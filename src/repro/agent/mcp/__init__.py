"""Minimal Model Context Protocol (MCP) layer.

Implements the MCP concepts the paper relies on — tools, prompts,
resources, and an agent-client architecture — as an in-process
JSON-RPC-flavoured protocol.  The agent's tools are published through
:class:`~repro.agent.mcp.server.MCPServer`; any MCP-style client can
list and call them without importing agent internals.
"""

from repro.agent.mcp.protocol import MCPError, MCPRequest, MCPResponse
from repro.agent.mcp.server import MCPServer
from repro.agent.mcp.client import MCPClient

__all__ = ["MCPRequest", "MCPResponse", "MCPError", "MCPServer", "MCPClient"]
