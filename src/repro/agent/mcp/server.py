"""MCP server: publishes the agent's tools, prompts, and resources."""

from __future__ import annotations

from typing import Any, Callable

from repro.agent.mcp.protocol import MCPError, MCPRequest, MCPResponse, METHODS
from repro.agent.tools.base import ToolRegistry
from repro.errors import ToolNotFoundError

__all__ = ["MCPServer"]


class MCPServer:
    """In-process MCP endpoint over a ToolRegistry.

    Resources are named read callbacks (e.g. the dynamic dataflow
    schema); prompts are named template callbacks.  Both let MCP clients
    inspect agent context without bespoke APIs.
    """

    def __init__(
        self,
        registry: ToolRegistry,
        *,
        server_name: str = "provenance-agent",
        version: str = "0.9",
    ):
        self.registry = registry
        self.server_name = server_name
        self.version = version
        self._resources: dict[str, Callable[[], Any]] = {}
        self._prompts: dict[str, Callable[[dict[str, Any]], str]] = {}
        self.calls_served = 0

    # -- registration -----------------------------------------------------------
    def add_resource(self, name: str, reader: Callable[[], Any]) -> None:
        self._resources[name] = reader

    def add_prompt(self, name: str, template: Callable[[dict[str, Any]], str]) -> None:
        self._prompts[name] = template

    # -- dispatch -------------------------------------------------------------------
    def handle(self, request: MCPRequest) -> MCPResponse:
        self.calls_served += 1
        method = request.method
        try:
            if method == "initialize":
                return self._ok(
                    request,
                    {
                        "server": self.server_name,
                        "version": self.version,
                        "capabilities": {"tools": True, "prompts": True, "resources": True},
                        "methods": list(METHODS),
                    },
                )
            if method == "tools/list":
                return self._ok(request, {"tools": self.registry.describe()})
            if method == "tools/call":
                name = request.params.get("name", "")
                arguments = request.params.get("arguments", {}) or {}
                try:
                    tool = self.registry.get(str(name))
                except ToolNotFoundError as exc:
                    return self._err(request, MCPError.METHOD_NOT_FOUND, str(exc))
                result = tool.invoke(**arguments)
                return self._ok(
                    request,
                    {
                        "ok": result.ok,
                        "summary": result.summary,
                        "code": result.code,
                        "error": result.error,
                        "data": _jsonable(result.data),
                    },
                )
            if method == "prompts/list":
                return self._ok(request, {"prompts": sorted(self._prompts)})
            if method == "prompts/get":
                name = str(request.params.get("name", ""))
                if name not in self._prompts:
                    return self._err(
                        request, MCPError.INVALID_PARAMS, f"unknown prompt {name!r}"
                    )
                args = request.params.get("arguments", {}) or {}
                return self._ok(request, {"prompt": self._prompts[name](args)})
            if method == "resources/list":
                return self._ok(request, {"resources": sorted(self._resources)})
            if method == "resources/read":
                name = str(request.params.get("name", ""))
                if name not in self._resources:
                    return self._err(
                        request, MCPError.INVALID_PARAMS, f"unknown resource {name!r}"
                    )
                return self._ok(request, {"contents": _jsonable(self._resources[name]())})
            return self._err(
                request, MCPError.METHOD_NOT_FOUND, f"unknown method {method!r}"
            )
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return self._err(request, MCPError.INTERNAL, repr(exc))

    def handle_json(self, request_json: str) -> str:
        return self.handle(MCPRequest.from_json(request_json)).to_json()

    # -- helpers ------------------------------------------------------------------------
    @staticmethod
    def _ok(request: MCPRequest, result: Any) -> MCPResponse:
        return MCPResponse(request_id=request.request_id, result=result)

    @staticmethod
    def _err(request: MCPRequest, code: int, message: str) -> MCPResponse:
        return MCPResponse(
            request_id=request.request_id, error=MCPError(code, message)
        )


def _jsonable(value: Any) -> Any:
    from repro.dataframe import DataFrame

    if isinstance(value, DataFrame):
        return value.to_dicts()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "__dict__") and not isinstance(value, (str, int, float)):
        try:
            from dataclasses import asdict, is_dataclass

            if is_dataclass(value):
                return asdict(value)
        except Exception:  # noqa: BLE001; provlint: disable=exception-contract - close() is best-effort
            pass
    return value
