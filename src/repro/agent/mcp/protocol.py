"""MCP wire types: JSON-RPC 2.0-shaped request/response envelopes."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MCPRequest", "MCPResponse", "MCPError", "METHODS"]

#: methods the server understands (subset of the MCP surface)
METHODS = (
    "initialize",
    "tools/list",
    "tools/call",
    "prompts/list",
    "prompts/get",
    "resources/list",
    "resources/read",
)


@dataclass(frozen=True)
class MCPRequest:
    method: str
    params: dict[str, Any] = field(default_factory=dict)
    request_id: int = 0
    jsonrpc: str = "2.0"

    def to_json(self) -> str:
        return json.dumps(
            {
                "jsonrpc": self.jsonrpc,
                "id": self.request_id,
                "method": self.method,
                "params": self.params,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "MCPRequest":
        doc = json.loads(text)
        return cls(
            method=doc["method"],
            params=doc.get("params", {}),
            request_id=doc.get("id", 0),
            jsonrpc=doc.get("jsonrpc", "2.0"),
        )


@dataclass(frozen=True)
class MCPError:
    code: int
    message: str

    METHOD_NOT_FOUND = -32601
    INVALID_PARAMS = -32602
    INTERNAL = -32603


@dataclass(frozen=True)
class MCPResponse:
    request_id: int
    result: Any = None
    error: MCPError | None = None
    jsonrpc: str = "2.0"

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> str:
        doc: dict[str, Any] = {"jsonrpc": self.jsonrpc, "id": self.request_id}
        if self.error is not None:
            doc["error"] = {"code": self.error.code, "message": self.error.message}
        else:
            doc["result"] = self.result
        return json.dumps(doc, sort_keys=True, default=str)

    @classmethod
    def from_json(cls, text: str) -> "MCPResponse":
        doc = json.loads(text)
        error = None
        if "error" in doc:
            error = MCPError(doc["error"]["code"], doc["error"]["message"])
        return cls(
            request_id=doc.get("id", 0),
            result=doc.get("result"),
            error=error,
        )
