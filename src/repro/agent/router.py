"""Tool Router (paper §4.2).

"User-issued natural language queries are handled by a Tool Router,
which combines rule-based logic and LLM calls to determine the
appropriate handling strategy" — greetings need no querying; guideline
statements update the session context; plot requests go to the plotting
tool; everything else routes to the in-memory (monitoring) or database
(historical) query tool.
"""

from __future__ import annotations

import enum
import re

from repro.agent.nl_tokens import TASK_ID_TOKEN_RE

__all__ = ["Intent", "ToolRouter"]


class Intent(str, enum.Enum):
    GREETING = "greeting"
    ADD_GUIDELINE = "add_guideline"
    VISUALIZATION = "visualization"
    SQL_QUERY = "sql_query"
    LINEAGE_QUERY = "lineage_query"
    HISTORICAL_QUERY = "historical_query"
    MONITORING_QUERY = "monitoring_query"


# a message that *is* a SELECT statement skips classification entirely:
# it is already a query, checked before every NL rule so vocabulary
# overlap ("select ... where status = 'FAILED' ... upstream") cannot
# reroute it to an LLM tool
_SQL_RE = re.compile(r"^\s*select\b", re.IGNORECASE)
_GREETING_RE = re.compile(
    r"^\s*(hi|hello|hey|good (morning|afternoon|evening)|thanks|thank you|bye)\b[\s!.,]*$",
    re.IGNORECASE,
)
_GUIDELINE_RE = re.compile(
    r"\b(use the field|from now on|always use|prefer the field|treat\b.*\bas\b|"
    r"remember that|when i say)\b",
    re.IGNORECASE,
)
_PLOT_RE = re.compile(
    r"\b(plot|chart|graph|bar graph|histogram|visuali[sz]e|draw)\b", re.IGNORECASE
)
_HISTORICAL_RE = re.compile(
    r"\b(historical|history|past runs?|previous (runs?|campaigns?)|archive|"
    r"all time|offline|database)\b",
    re.IGNORECASE,
)
# traversal vocabulary (taxonomy scope "Graph Traversal"); checked after
# visualization ("plot the lineage of ..." still renders a chart) and
# after historical (database/past-run phrasing keeps its pre-lineage
# route, so post-hoc agents are unaffected).  Whole-graph questions
# route unconditionally; task-anchored vocabulary ("affected",
# "depends on", ...) only routes when the text actually names an id —
# id-less phrasings like "which tasks were affected by the failure?"
# keep their LLM-answered monitoring route.
_LINEAGE_GLOBAL_RE = re.compile(
    r"\b(critical path|causal (chain|path)|root tasks?|leaf tasks?|"
    r"dependency (path|chain))\b",
    re.IGNORECASE,
)
_LINEAGE_RE = re.compile(
    r"\b(upstream|downstream|lineage|ancestors?|descendants?|"
    r"depends? on|impact|affected)\b",
    re.IGNORECASE,
)


class ToolRouter:
    """Rule-first intent classification with optional LLM assist."""

    def __init__(self, llm_classify=None):
        # llm_classify: optional callable(text) -> Intent-name string, used
        # when the rules are inconclusive (the paper combines both).
        self._llm_classify = llm_classify

    def classify(self, text: str) -> Intent:
        if text and _SQL_RE.match(text):
            return Intent.SQL_QUERY
        if not text or _GREETING_RE.match(text):
            return Intent.GREETING
        if _GUIDELINE_RE.search(text):
            return Intent.ADD_GUIDELINE
        if _PLOT_RE.search(text):
            return Intent.VISUALIZATION
        if _HISTORICAL_RE.search(text):
            return Intent.HISTORICAL_QUERY
        if _LINEAGE_GLOBAL_RE.search(text) or (
            _LINEAGE_RE.search(text) and TASK_ID_TOKEN_RE.search(text)
        ):
            return Intent.LINEAGE_QUERY
        if self._llm_classify is not None:
            try:
                name = str(self._llm_classify(text)).strip().lower()
                for intent in Intent:
                    if intent.value == name:
                        return intent
            except Exception:  # noqa: BLE001; provlint: disable=exception-contract - fall back to rules
                pass
        return Intent.MONITORING_QUERY
