"""Query guidelines: static domain-agnostic rules + user-defined additions.

"Guidelines ... steer the LLM when generating structured queries ...
users can provide new domain-specific guidelines interactively through
natural language (e.g. 'use the field lr to filter learning rates'),
which ... override any other conflicting guideline stated earlier, are
stored in the agent's overall context for the current session, and
automatically incorporated into future prompts" (paper §4.2).

The static set below is the one "iteratively refined during early
development with the synthetic workflow" — which is why it names the
synthetic workflow's field conventions explicitly (the paper's Figure 8
shows Baseline+FS+Guidelines reaching 0.92 *without* the schema section
for exactly this reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Guideline", "GuidelineStore", "STATIC_GUIDELINES"]


@dataclass(frozen=True)
class Guideline:
    key: str
    text: str
    user_defined: bool = False


STATIC_GUIDELINES: tuple[Guideline, ...] = (
    Guideline(
        "time-ranges",
        "When filtering time ranges, use the field started_at (epoch seconds).",
    ),
    Guideline(
        "recent-sort",
        "For the most recent task, sort by started_at descending "
        "(ascending=False) and take head(1).",
    ),
    Guideline(
        "derived-duration",
        "Task durations are precomputed in the derived field duration "
        "(seconds); do not subtract ended_at and started_at yourself.",
    ),
    Guideline(
        "status-values",
        "Status values are uppercase: SUBMITTED, RUNNING, FINISHED, FAILED.",
    ),
    Guideline(
        "activity-filter",
        "Filter workflow steps by activity_id; task_id identifies a single "
        "execution and workflow_id one workflow run.",
    ),
    Guideline(
        "telemetry-end",
        "CPU and memory telemetry live at telemetry_at_end.cpu.percent and "
        "telemetry_at_end.mem.percent on a 0-100 percent scale; use the "
        "_at_end fields unless the user asks about task start.",
    ),
    Guideline(
        "counting",
        "To count rows wrap the query in len(...); pick the aggregation the "
        "user names (mean for average, sum for total).",
    ),
    Guideline(
        "group-by",
        "Group with df.groupby('<key>')['<column>'].<agg>() for per-key "
        "questions (per activity, by host, for each bond).",
    ),
    Guideline(
        "dataflow-naming",
        "Application inputs live under used.* and outputs under generated.*; "
        "the synthetic math workflow produces generated.value and consumes "
        "used.x.",
    ),
    Guideline(
        "top-n",
        "When the user asks for top or bottom N, sort by the metric and use "
        "head(N); descending (ascending=False) for 'highest'.",
    ),
    Guideline(
        "host-field",
        "Compute-node placement lives in hostname (e.g. node-0, "
        "frontier00084); compare it with equality.",
    ),
)


class GuidelineStore:
    """Ordered guideline collection; user additions override earlier ones."""

    def __init__(self, static: tuple[Guideline, ...] = STATIC_GUIDELINES):
        self._static = list(static)
        self._user: list[Guideline] = []

    def add_user_guideline(self, text: str, key: str | None = None) -> Guideline:
        if key is None:
            key = f"user-{len(self._user) + 1}"
        g = Guideline(key, text.strip(), True)
        self._user.append(g)
        return g

    def all(self) -> list[Guideline]:
        # user guidelines last: the prompt tells the LLM later rules win
        return list(self._static) + list(self._user)

    @property
    def user_defined(self) -> list[Guideline]:
        return list(self._user)

    def render(self) -> str:
        lines = [f"- ({g.key}) {g.text}" for g in self.all()]
        if self._user:
            lines.append(
                "- (precedence) User-defined guidelines above override any "
                "conflicting earlier guideline."
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._static) + len(self._user)
