"""Per-session conversation state for the agent serving layer.

The reference architecture (paper §5.3, Fig. 4) puts the agent behind a
service boundary that many interactive users query concurrently.  What
actually differs between those users is small: their conversation
history, their prompt configuration, their session guidelines, and the
identity their turns are recorded under.  :class:`AgentSession` holds
exactly that — everything else (tools, router, LLM server, context
manager, lineage, MCP) is shared infrastructure owned by
:class:`~repro.agent.service.AgentService`.

Sessions are cheap: creating one allocates a guideline store and a
recorder identity, nothing else.  A session's turns execute strictly in
submission order (the service guarantees per-session FIFO), so the
mutable state here is only ever touched by one turn at a time.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.agent.guidelines import GuidelineStore
from repro.agent.prompts import PromptConfig
from repro.agent.recorder import AgentProvenanceRecorder
from repro.agent.router import Intent
from repro.dataframe import DataFrame

__all__ = ["AgentReply", "AgentSession"]


@dataclass
class AgentReply:
    """Everything the GUI would show for one turn."""

    text: str
    intent: Intent
    ok: bool = True
    code: str | None = None
    table: DataFrame | None = None
    chart: str | None = None
    error: str | None = None
    details: dict[str, Any] = field(default_factory=dict)


class AgentSession:
    """One user's conversation state behind the agent gateway.

    Holds only what cannot be shared: history, prompt configuration,
    session guidelines, and the provenance identity turns are recorded
    under.  The serving queue fields (``_pending`` / ``_draining``) are
    owned by the service and implement per-session FIFO ordering.
    """

    def __init__(
        self,
        session_id: str,
        *,
        recorder: AgentProvenanceRecorder,
        prompt_config: PromptConfig,
        model: str,
        guidelines: GuidelineStore | None = None,
    ):
        self.session_id = session_id
        self.recorder = recorder
        self.prompt_config = prompt_config
        self.model = model
        #: session guidelines (static set + this user's additions); NOT
        #: shared across sessions — one user's "use the field lr ..."
        #: must never steer another user's prompts
        self.guidelines = guidelines if guidelines is not None else GuidelineStore()
        #: every reply, in turn order (the facade's ``agent.turns``)
        self.turns: list[AgentReply] = []
        #: (user message, reply) pairs, in turn order
        self.history: list[tuple[str, AgentReply]] = []

        # -- serving queue (owned by AgentService) ---------------------------
        self._pending: deque[tuple[str, Future]] = deque()
        self._draining = False
        self._queue_lock = threading.Lock()
        self._drainer_thread: int | None = None

    # -- convenience ----------------------------------------------------------
    @property
    def turn_count(self) -> int:
        return len(self.turns)

    def guidelines_text(self) -> str:
        return self.guidelines.render()

    def add_user_guideline(self, text: str) -> None:
        self.guidelines.add_user_guideline(text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AgentSession({self.session_id!r}, turns={len(self.turns)}, "
            f"model={self.model!r})"
        )
