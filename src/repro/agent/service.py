"""AgentService: the multi-session agent gateway (paper §5.3, Fig. 4).

The paper's reference architecture serves *many* interactive users from
one agent deployment, and PROV-AGENT extends the same stack to fleets
of agents over a shared provenance substrate.  This module is that
service boundary in code:

* **shared infrastructure** — one tool registry, router,
  :class:`~repro.llm.service.LLMServer`, context manager, lineage
  index, MCP server, and versioned
  :class:`~repro.query.QueryCache` serve every session; all of them are
  thread-safe and none holds per-user state;
* **per-session state** — each :class:`~repro.agent.session.AgentSession`
  holds only its conversation history, prompt configuration, session
  guidelines, and recorder identity;
* **the turn pipeline** — :meth:`AgentService._execute_turn` is a
  stateless function of (shared infra, session, message): route the
  intent, invoke the tool with the session's context passed as per-call
  arguments, record the tool execution and LLM interaction as
  provenance under the session's identity, and assemble the
  :class:`~repro.agent.session.AgentReply`.

Concurrency model: :meth:`submit` enqueues a turn and returns a future;
a worker pool drains each session's queue with **per-session FIFO
ordering** (one turn of a session at a time, sessions freely
interleaved).  :meth:`chat` is the blocking form — the calling thread
helps drain its session's queue, so single-user callers (the
:class:`~repro.agent.agent.ProvenanceAgent` facade) never touch the
pool.  Turn throughput therefore scales with workers until the shared
LLM endpoint saturates, which
``benchmarks/bench_agent_serving.py`` measures.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.agent.context_manager import ContextManager
from repro.agent.guidelines import GuidelineStore
from repro.agent.monitor import ContextMonitor
from repro.agent.nl_tokens import extract_ids, looks_id_shaped
from repro.agent.prompts import PromptConfig
from repro.agent.recorder import AgentProvenanceRecorder
from repro.agent.router import Intent, ToolRouter
from repro.agent.session import AgentReply, AgentSession
from repro.agent.tools.anomaly import AnomalyDetectorTool
from repro.agent.tools.base import Tool, ToolRegistry, ToolResult
from repro.agent.tools.db_query import DatabaseQueryTool
from repro.agent.tools.graph_query import GraphQueryTool
from repro.agent.tools.in_memory_query import FULL_CONTEXT, InMemoryQueryTool
from repro.agent.tools.plotting import PlottingTool
from repro.agent.tools.sql_query import SqlQueryTool
from repro.agent.tools.summarize import SummaryTool, summarize
from repro.agent.mcp.server import MCPServer
from repro.capture.context import CaptureContext
from repro.dataframe import DataFrame
from repro.lineage import LineageIndex, LineageService
from repro.llm.service import LLMServer
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI
from repro.query.cache import QueryCache

__all__ = ["AgentService"]

#: default worker-pool width for :meth:`AgentService.submit`
DEFAULT_MAX_WORKERS = 8


class AgentService:
    """Gateway serving many concurrent chat sessions over shared infra."""

    def __init__(
        self,
        capture_context: CaptureContext,
        *,
        llm: LLMServer | None = None,
        model: str = "gpt-4",
        query_api: QueryAPI | None = None,
        lineage: LineageIndex | None = None,
        keeper: "ProvenanceKeeper | None" = None,
        prompt_config: PromptConfig = FULL_CONTEXT,
        agent_id: str = "provenance-agent",
        max_workers: int = DEFAULT_MAX_WORKERS,
        query_cache: QueryCache | None = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.capture_context = capture_context
        #: optional keeper whose ingest stats the MCP surface exposes;
        #: its lineage index is reused when no explicit one is given
        self.keeper = keeper
        # explicit None check: a fresh LLMServer with zero recorded
        # interactions can compare falsy, and must not be replaced
        self.llm = llm if llm is not None else LLMServer()
        self.model = model
        self.prompt_config = prompt_config
        self.agent_id = agent_id
        self.max_workers = max_workers
        self.context_manager = ContextManager(capture_context.broker).start()
        self.router = ToolRouter()
        self.registry = ToolRegistry()
        #: shared versioned result cache fronting the historical store
        # explicit None check: an empty cache has len() == 0 and is falsy
        self.query_cache = (
            query_cache
            if query_cache is not None
            else (query_api.cache if query_api is not None else QueryCache())
        )

        self.query_tool = InMemoryQueryTool(
            self.context_manager, self.llm, model=model, prompt_config=prompt_config
        )
        self.registry.register(self.query_tool)
        self.plot_tool = PlottingTool(self.query_tool)
        self.registry.register(self.plot_tool)
        self.anomaly_tool = AnomalyDetectorTool(
            self.context_manager, capture_context.broker
        )
        self.registry.register(self.anomaly_tool)
        self.registry.register(SummaryTool())
        if query_api is not None:
            self.db_tool: DatabaseQueryTool | None = DatabaseQueryTool(
                query_api, self.context_manager, self.llm, model=model,
                prompt_config=prompt_config, cache=self.query_cache,
            )
            self.registry.register(self.db_tool)
            # SQL arrives pre-written (no LLM, no prompt context), so the
            # tool needs only the store and the shared cache
            self.sql_tool: SqlQueryTool | None = SqlQueryTool(
                query_api, cache=self.query_cache
            )
            self.registry.register(self.sql_tool)
        else:
            self.db_tool = None
            self.sql_tool = None

        # live lineage: use the caller's index (e.g. one a keeper already
        # feeds) or run our own broker-fed service, replaying retained
        # history so lineage questions work on campaigns that ran before
        # the agent attached
        if lineage is None and keeper is not None:
            lineage = keeper.lineage_index
        if lineage is not None:
            self.lineage = lineage
            self.lineage_service: LineageService | None = None
        else:
            self.lineage_service = LineageService(capture_context.broker).start(
                replay=True
            )
            self.lineage = self.lineage_service.index
        self.graph_tool = GraphQueryTool(self.lineage)
        self.registry.register(self.graph_tool)

        self.monitor = ContextMonitor(self.context_manager)
        self.mcp = MCPServer(self.registry, server_name=agent_id)
        self.mcp.add_resource(
            "dataflow-schema", self.context_manager.schema_payload
        )
        self.mcp.add_resource("example-values", self.context_manager.values_payload)
        self.mcp.add_resource("lineage-stats", self._lineage_stats)
        self.mcp.add_resource("serving-stats", self.stats)
        if query_api is not None:
            # shares QueryAPI.counts, the same indexed tally the
            # monitoring surface uses for status breakdowns
            self.mcp.add_resource(
                "db-status-counts", lambda: query_api.counts("status")
            )
        self.mcp.add_resource(
            "guidelines",
            lambda: [g.text for g in self.context_manager.guidelines.all()],
        )

        self.sessions: dict[str, AgentSession] = {}
        self._sessions_lock = threading.Lock()
        self._session_counter = itertools.count(1)
        self._stats_lock = threading.Lock()
        self._turns_completed = 0
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False
        self._close_hooks: list[Callable[[], None]] = []

    # -- session management ------------------------------------------------------
    def create_session(
        self,
        session_id: str | None = None,
        *,
        prompt_config: PromptConfig | None = None,
        model: str | None = None,
        agent_id: str | None = None,
        workflow_id: str | None = None,
        guidelines: GuidelineStore | None = None,
    ) -> AgentSession:
        """Register a new conversation and return its session handle.

        Each session records provenance under its own identity
        (``<service agent_id>/<session_id>`` by default), so the stored
        tool executions and LLM interactions of different users stay
        attributable (§4.2).
        """
        if self._closed:
            raise RuntimeError("AgentService is closed")
        with self._sessions_lock:
            if session_id is None:
                session_id = f"session-{next(self._session_counter)}"
            if session_id in self.sessions:
                raise ValueError(f"session {session_id!r} already exists")
            return self._create_session_locked(
                session_id,
                prompt_config=prompt_config,
                model=model,
                agent_id=agent_id,
                workflow_id=workflow_id,
                guidelines=guidelines,
            )

    def _create_session_locked(
        self,
        session_id: str,
        *,
        prompt_config: PromptConfig | None = None,
        model: str | None = None,
        agent_id: str | None = None,
        workflow_id: str | None = None,
        guidelines: GuidelineStore | None = None,
    ) -> AgentSession:
        recorder = AgentProvenanceRecorder(
            self.capture_context,
            agent_id=(
                agent_id
                if agent_id is not None
                else f"{self.agent_id}/{session_id}"
            ),
            workflow_id=(
                workflow_id
                if workflow_id is not None
                else f"agent-session/{session_id}"
            ),
        )
        session = AgentSession(
            session_id,
            recorder=recorder,
            prompt_config=prompt_config or self.prompt_config,
            model=model or self.model,
            guidelines=guidelines,
        )
        self.sessions[session_id] = session
        return session

    def session(self, session_id: str) -> AgentSession:
        with self._sessions_lock:
            try:
                return self.sessions[session_id]
            except KeyError:
                raise KeyError(
                    f"unknown session {session_id!r}; create_session() first"
                ) from None

    def get_or_create_session(self, session_id: str) -> AgentSession:
        # atomic check-and-create: concurrent first requests for the
        # same user must both get the one session, not a ValueError
        with self._sessions_lock:
            existing = self.sessions.get(session_id)
            if existing is not None:
                return existing
            return self._create_session_locked(session_id)

    # -- serving -----------------------------------------------------------------
    def chat(self, session_id: str, message: str) -> AgentReply:
        """Execute one turn for ``session_id`` and block for the reply.

        The calling thread helps drain the session's queue, so this
        needs no pool for single-user use; concurrent callers on
        different sessions execute in parallel, while turns of one
        session keep strict submission order.
        """
        session = self.session(session_id)
        if session._drainer_thread == threading.get_ident():
            # re-entrant turn (a tool asking the agent mid-turn): run
            # inline — queueing would deadlock against ourselves
            return self._execute_turn(session, message)
        future = self._enqueue(session, message)
        self._drain(session)
        return future.result()

    def submit(self, session_id: str, message: str) -> "Future[AgentReply]":
        """Queue one turn for ``session_id``; resolves to its reply.

        Turns queued to the same session execute FIFO, one at a time;
        turns of different sessions run concurrently on the worker
        pool (bounded by ``max_workers``).
        """
        session = self.session(session_id)
        pool = self._get_pool()  # raises once closed
        future = self._enqueue(session, message)
        try:
            pool.submit(self._drain, session)
        except RuntimeError:
            # close() won the race: withdraw the turn so no future dangles
            with session._queue_lock:
                try:
                    session._pending.remove((message, future))
                except ValueError:
                    pass  # an active drainer already claimed it
            raise
        return future

    def _enqueue(self, session: AgentSession, message: str) -> "Future[AgentReply]":
        if self._closed:
            raise RuntimeError("AgentService is closed")
        future: "Future[AgentReply]" = Future()
        with session._queue_lock:
            session._pending.append((message, future))
        return future

    def _drain(self, session: AgentSession) -> None:
        """Serve ``session``'s queue until empty; one drainer at a time.

        The ``_draining`` flag is the per-session mutual exclusion: the
        thread that flips it owns the queue until it observes empty
        under the lock, so turns can never interleave within a session,
        and a queue check after the last pop cannot lose a wakeup.
        """
        ident = threading.get_ident()
        with session._queue_lock:
            if session._draining or not session._pending:
                return
            session._draining = True
            session._drainer_thread = ident
        try:
            while True:
                with session._queue_lock:
                    if not session._pending:
                        # release ownership in the same critical section
                        # as the emptiness check (no lost wakeups), and
                        # clear the drainer id with it — a later drainer
                        # may own the session the moment we release
                        session._draining = False
                        session._drainer_thread = None
                        return
                    message, future = session._pending.popleft()
                if not future.set_running_or_notify_cancel():
                    continue
                try:
                    reply = self._execute_turn(session, message)
                except BaseException as exc:  # noqa: BLE001 - future owns it
                    future.set_exception(exc)
                else:
                    future.set_result(reply)
        except BaseException:  # pragma: no cover - interpreter shutdown paths
            # never leave the session wedged with _draining stuck True
            with session._queue_lock:
                if session._drainer_thread == ident:
                    session._draining = False
                    session._drainer_thread = None
            raise

    def _get_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            # checked under the pool lock so a submit racing close()
            # cannot recreate (and leak) a pool after shutdown
            if self._closed:
                raise RuntimeError("AgentService is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="agent-turn"
                )
            return self._pool

    def add_close_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` at the *start* of :meth:`close`, before new work
        is rejected.

        Transports register their drain/stop here: a draining server's
        in-flight requests may still call :meth:`chat`, which must find
        the service open.  Hooks must be idempotent (both gateway
        transports' ``stop`` methods are); re-registering the same bound
        method is a no-op.
        """
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("AgentService is closed")
            if hook not in self._close_hooks:
                self._close_hooks.append(hook)

    def close(self) -> None:
        """Stop serving: drain transports and in-flight turns, then
        detach from the broker.

        Close is graceful and idempotent: first the registered close
        hooks run (transports drain — their in-flight requests finish
        against a still-open service, new ones are shed with 503), then
        turns accepted before close (their futures are out) complete —
        the pool finishes every drain already submitted to it, then a
        final inline sweep serves any queue whose pool drain lost the
        race with shutdown — and only then do the broker subscriptions
        detach.  New work is rejected from the moment the closed flag
        flips.  A second ``close()`` finds nothing to do and returns
        immediately.
        """
        with self._pool_lock:
            hooks, self._close_hooks = list(self._close_hooks), []
        for hook in hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001; provlint: disable=exception-contract - a transport's failure to
                pass  # drain must not stop the service from closing
        with self._pool_lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            # waits for every drain submitted before the flag flipped,
            # i.e. all pool-queued turns execute to completion
            pool.shutdown(wait=True)
        if already:
            return
        # sweep: a submit() that enqueued its turn but lost the
        # pool.submit race withdraws it and raises -- unless an active
        # drainer claimed it first; any turn still queued here is one
        # the service accepted, so serve it rather than strand a future
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        for session in sessions:
            self._drain(session)
        self.context_manager.stop()
        if self.lineage_service is not None:
            self.lineage_service.stop()

    def __enter__(self) -> "AgentService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- bring your own tool -----------------------------------------------------
    def register_tool(self, tool: Tool) -> None:
        self.registry.register(tool)

    # -- MCP resources -----------------------------------------------------------
    def _lineage_stats(self) -> dict[str, Any]:
        """Live lineage stats, with keeper ingest and LLM serving accounting."""
        stats: dict[str, Any] = self.lineage.stats()
        if self.keeper is not None:
            stats["ingest"] = self.keeper.stats()
        stats["llm"] = self.llm.stats()
        return stats

    def stats(self) -> dict[str, Any]:
        """Serving snapshot: sessions, turns, LLM load, cache hit rates."""
        with self._sessions_lock:
            n_sessions = len(self.sessions)
            queued = sum(len(s._pending) for s in self.sessions.values())
        with self._stats_lock:
            turns = self._turns_completed
        return {
            "sessions": n_sessions,
            "turns_completed": turns,
            "turns_queued": queued,
            "max_workers": self.max_workers,
            "llm": self.llm.stats(),
            "query_cache": self.query_cache.stats(),
        }

    # -- the turn pipeline -------------------------------------------------------
    def _execute_turn(self, session: AgentSession, message: str) -> AgentReply:
        """One chat turn: route -> invoke -> record -> reply.

        Stateless over shared infrastructure: everything session-scoped
        (prompt config, guidelines, model, recorder identity) is passed
        down as arguments, so any worker thread can execute any
        session's next turn.
        """
        intent = self.router.classify(message)
        started = self.capture_context.clock.now()

        if intent == Intent.GREETING:
            reply = AgentReply(
                text=(
                    "Hello! I am the provenance agent. Ask me about running "
                    "or completed workflow tasks, their data, telemetry, or "
                    "where they ran."
                ),
                intent=intent,
            )
        elif intent == Intent.ADD_GUIDELINE:
            session.add_user_guideline(message)
            reply = AgentReply(
                text=(
                    "Understood — I stored that as a session guideline and "
                    "will apply it to future queries (it overrides any "
                    "conflicting earlier guideline)."
                ),
                intent=intent,
            )
        elif intent == Intent.VISUALIZATION:
            reply = self._tool_turn(session, self.plot_tool, message, intent)
        elif intent == Intent.LINEAGE_QUERY:
            reply = self._tool_turn(session, self.graph_tool, message, intent)
            if not reply.ok and not any(
                looks_id_shaped(t) for t in extract_ids(message)
            ):
                # traversal vocabulary around quoted free text (activity
                # names, guideline fragments) — not a real task id; the
                # LLM-backed monitoring tool answered these before the
                # lineage intent existed, so hand the question back to it
                intent = Intent.MONITORING_QUERY
                reply = self._tool_turn(session, self.query_tool, message, intent)
        elif intent == Intent.SQL_QUERY and self.sql_tool is not None:
            reply = self._tool_turn(session, self.sql_tool, message, intent)
        elif intent == Intent.HISTORICAL_QUERY and self.db_tool is not None:
            reply = self._tool_turn(session, self.db_tool, message, intent)
        else:
            if intent == Intent.SQL_QUERY:
                # no historical store attached: the monitoring tool answers
                intent = Intent.MONITORING_QUERY
            reply = self._tool_turn(session, self.query_tool, message, intent)

        ended = self.capture_context.clock.now()
        tool_name = {
            Intent.GREETING: "greeting",
            Intent.ADD_GUIDELINE: "add_guideline",
            Intent.VISUALIZATION: self.plot_tool.name,
            Intent.LINEAGE_QUERY: self.graph_tool.name,
            Intent.SQL_QUERY: getattr(self.sql_tool, "name", "sql"),
            Intent.HISTORICAL_QUERY: getattr(self.db_tool, "name", "db"),
            Intent.MONITORING_QUERY: self.query_tool.name,
        }[intent]
        tool_task_id = session.recorder.record_tool_execution(
            tool_name,
            {"message": message},
            {"ok": reply.ok, "summary": reply.text[:200]},
            started_at=started,
            ended_at=ended,
            failed=not reply.ok,
        )
        response = reply.details.get("llm_response")
        if response is not None:
            session.recorder.record_llm_interaction(
                response.model,
                message,
                response.text,
                started_at=started,
                ended_at=started + response.latency_s,
                informed_by=tool_task_id,
                prompt_tokens=response.prompt_tokens,
                output_tokens=response.output_tokens,
            )
        self.capture_context.flush()
        session.turns.append(reply)
        session.history.append((message, reply))
        with self._stats_lock:
            self._turns_completed += 1
        return reply

    # -- internals -----------------------------------------------------------------------
    def _tool_turn(
        self, session: AgentSession, tool: Tool, message: str, intent: Intent
    ) -> AgentReply:
        kwargs: dict[str, Any] = {"question": message}
        if tool.uses_llm:
            # the session's context travels per-call; the tool instance
            # stays stateless and shared
            kwargs["prompt_config"] = session.prompt_config
            kwargs["guidelines_text"] = session.guidelines_text()
            kwargs["model"] = session.model
        result: ToolResult = tool.invoke(**kwargs)
        if not result.ok:
            return AgentReply(
                text=(
                    f"I could not answer that: {result.summary}. "
                    f"The generated query was shown below so you can correct "
                    f"it or add a guideline."
                ),
                intent=intent,
                ok=False,
                code=result.code,
                error=result.error,
                details=dict(result.details),
            )
        chart = None
        table = None
        data = result.data
        if intent == Intent.VISUALIZATION:
            chart = data if isinstance(data, str) else None
            text = f"Here is the chart you asked for ({result.summary})."
        elif intent == Intent.LINEAGE_QUERY:
            # the graph tool's summary already names the traversal shape
            # ("4 task(s) upstream of ..."), which beats a generic row dump
            table = data if isinstance(data, DataFrame) else None
            # provlint: disable=falsy-or-default - an empty summary means "compute one"
            text = (result.summary or summarize(data, message)).rstrip(".") + "."
            text = text[0].upper() + text[1:]
        else:
            table = data if isinstance(data, DataFrame) else None
            text = summarize(data, message)
        return AgentReply(
            text=text,
            intent=intent,
            code=result.code,
            table=table,
            chart=chart,
            details=dict(result.details),
        )
