"""The Dynamic Dataflow Schema (paper §4.1-§4.2).

"Rather than submitting raw provenance records directly to the LLM
service, the system automatically maintains a schema that summarizes how
data flow between tasks, what parameters and outputs are captured, and
how workflows evolve over time."

The schema is inferred incrementally from live messages — no upfront
user definition — and stays *compact*: its size depends on workflow
complexity (number and diversity of activities and their fields), never
on the number of tasks or the volume of provenance.  That invariance is
the paper's key scalability argument and is benchmarked directly
(``benchmarks/bench_ablation_schema.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.dataframe import flatten_record
from repro.provenance.messages import COMMON_FIELDS

__all__ = ["DynamicDataflowSchema", "FieldInfo"]

_MAX_EXAMPLES = 8


@dataclass
class FieldInfo:
    """What the schema knows about one dataflow field."""

    name: str
    inferred_type: str = "unknown"
    examples: list[Any] = field(default_factory=list)
    activities: set[str] = field(default_factory=set)
    occurrences: int = 0

    def observe(self, value: Any, activity: str) -> None:
        self.occurrences += 1
        self.activities.add(activity)
        t = _type_name(value)
        if self.inferred_type == "unknown":
            self.inferred_type = t
        elif self.inferred_type != t:
            self.inferred_type = _promote(self.inferred_type, t)
        if (
            len(self.examples) < _MAX_EXAMPLES
            and _is_example_worthy(value)
            and value not in self.examples
        ):
            self.examples.append(value)


class DynamicDataflowSchema:
    """Incrementally inferred schema over streaming task provenance."""

    def __init__(self) -> None:
        self._fields: dict[str, FieldInfo] = {}
        self._activities: set[str] = set()
        self._value_examples: dict[str, list[Any]] = {}
        self.messages_seen = 0

    # -- ingestion --------------------------------------------------------------
    def update(self, message: Mapping[str, Any]) -> None:
        """Fold one task message into the schema."""
        self.messages_seen += 1
        activity = str(message.get("activity_id", ""))
        if activity:
            self._activities.add(activity)
            self._observe_value("activity_id", activity)
        for section in ("used", "generated"):
            payload = message.get(section) or {}
            if not isinstance(payload, Mapping):
                continue
            flat = flatten_record({section: payload})
            for name, value in flat.items():
                if name.split(".", 1)[-1].startswith("_"):
                    continue  # engine-internal fields like used._upstream
                info = self._fields.get(name)
                if info is None:
                    info = self._fields[name] = FieldInfo(name)
                info.observe(value, activity)
                self._observe_value(name, value)
        # common-field value examples that help disambiguation
        for key in ("status", "hostname"):
            if message.get(key):
                self._observe_value(key, message[key])
        for key in ("telemetry_at_end", "telemetry_at_start"):
            tele = message.get(key)
            if isinstance(tele, Mapping):
                for name, value in flatten_record({key: tele}).items():
                    self._observe_value(name, value)

    def _observe_value(self, name: str, value: Any) -> None:
        if not _is_example_worthy(value):
            return
        bucket = self._value_examples.setdefault(name, [])
        if len(bucket) < _MAX_EXAMPLES and value not in bucket:
            bucket.append(value)

    # -- introspection ---------------------------------------------------------------
    @property
    def activities(self) -> tuple[str, ...]:
        return tuple(sorted(self._activities))

    @property
    def dataflow_fields(self) -> tuple[str, ...]:
        return tuple(sorted(self._fields))

    def field(self, name: str) -> FieldInfo | None:
        return self._fields.get(name)

    def all_known_fields(self) -> set[str]:
        """Common fields + inferred dataflow fields (for validation)."""
        return set(COMMON_FIELDS) | set(self._fields)

    def complexity(self) -> int:
        """Workflow complexity: number of distinct activity/field pairs."""
        return sum(len(info.activities) for info in self._fields.values())

    # -- prompt payloads ----------------------------------------------------------------
    def to_prompt_payload(self, *, include_descriptions: bool = True) -> dict[str, Any]:
        """The JSON object embedded in the prompt's schema section."""
        fields: dict[str, Any] = {}
        for name, meta in COMMON_FIELDS.items():
            entry: dict[str, Any] = {"type": meta["type"]}
            if include_descriptions:
                entry["description"] = meta["description"]
            fields[name] = entry
        for name, info in sorted(self._fields.items()):
            entry = {"type": info.inferred_type}
            if include_descriptions:
                entry["description"] = (
                    f"Application dataflow field captured from "
                    f"{', '.join(sorted(info.activities)) or 'tasks'}."
                )
                entry["activities"] = sorted(info.activities)
            fields[name] = entry
        return {"fields": fields, "activities": sorted(self._activities)}

    def values_payload(self) -> dict[str, list[Any]]:
        """The JSON object for the example-domain-values section."""
        return {
            name: list(examples)
            for name, examples in sorted(self._value_examples.items())
            if examples
        }


def _type_name(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, (list, tuple)):
        return "array"
    if value is None:
        return "unknown"
    return type(value).__name__


def _promote(a: str, b: str) -> str:
    if {a, b} == {"int", "float"}:
        return "float"
    if "unknown" in (a, b):
        return a if b == "unknown" else b
    if a != b:
        return "mixed"
    return a


def _is_example_worthy(value: Any) -> bool:
    if isinstance(value, (bool,)):
        return False
    if isinstance(value, (int, float, str)):
        return not (isinstance(value, str) and len(value) > 60)
    return False
