"""Context Manager: the agent's live view of streaming provenance.

Subscribes to the streaming hub and maintains (paper §4.2):

* the **in-memory context** — a bounded buffer of recent task messages,
  exposed as the flattened DataFrame the generated queries run against;
* the **dynamic dataflow schema** — updated on every message;
* the **guidelines** store (static + user-defined).

The buffer is bounded (monitoring recent/active runs); the schema is
not — it is already volume-independent by construction.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Mapping

from repro.agent.guidelines import GuidelineStore
from repro.agent.schema import DynamicDataflowSchema
from repro.dataframe import DataFrame
from repro.messaging.broker import Broker, Subscription
from repro.messaging.message import Envelope
from repro.provenance.messages import TaskProvenanceMessage

__all__ = ["ContextManager"]


class ContextManager:
    """Maintains the agent's in-memory structures from the live stream."""

    def __init__(
        self,
        broker: Broker,
        *,
        buffer_size: int = 10_000,
        pattern: str = "provenance.#",
        record_types: tuple[str, ...] = ("task",),
    ):
        self.broker = broker
        self.schema = DynamicDataflowSchema()
        self.guidelines = GuidelineStore()
        self._buffer: deque[dict[str, Any]] = deque(maxlen=buffer_size)
        self._pattern = pattern
        self._record_types = record_types
        self._subscription: Subscription | None = None
        self._lock = threading.RLock()
        self._frame_cache: DataFrame | None = None
        self.messages_received = 0

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "ContextManager":
        if self._subscription is None:
            self._subscription = self.broker.subscribe(
                self._pattern, self._on_message
            )
        return self

    def stop(self) -> None:
        if self._subscription is not None:
            self.broker.unsubscribe(self._subscription)
            self._subscription = None

    # -- ingestion ----------------------------------------------------------------
    def _on_message(self, envelope: Envelope) -> None:
        self.ingest(envelope.payload)

    def ingest(self, payload: Mapping[str, Any]) -> None:
        if payload.get("type") not in self._record_types:
            return
        msg = TaskProvenanceMessage.from_dict(payload)
        flat = msg.flatten()
        with self._lock:
            self.messages_received += 1
            self._buffer.append(flat)
            self.schema.update(msg.to_dict())
            self._frame_cache = None

    # -- views ------------------------------------------------------------------------
    def to_frame(self) -> DataFrame:
        """The in-memory context as a flattened DataFrame (cached)."""
        with self._lock:
            if self._frame_cache is None:
                self._frame_cache = DataFrame.from_records(list(self._buffer))
            return self._frame_cache

    def recent(self, n: int = 10) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._buffer)[-n:]

    @property
    def buffer_count(self) -> int:
        with self._lock:
            return len(self._buffer)

    def known_fields(self) -> set[str]:
        return self.schema.all_known_fields()

    # -- prompt material ------------------------------------------------------------------
    def schema_payload(self, include_descriptions: bool = True) -> dict[str, Any]:
        return self.schema.to_prompt_payload(
            include_descriptions=include_descriptions
        )

    def values_payload(self) -> dict[str, Any]:
        return self.schema.values_payload()

    def guidelines_text(self) -> str:
        return self.guidelines.render()

    def add_user_guideline(self, text: str) -> None:
        self.guidelines.add_user_guideline(text)
