"""Context Manager: the agent's live view of streaming provenance.

Subscribes to the streaming hub and maintains (paper §4.2):

* the **in-memory context** — a bounded buffer of recent task messages,
  exposed as the flattened DataFrame the generated queries run against;
* the **dynamic dataflow schema** — updated on every message;
* the **guidelines** store (static + user-defined).

The buffer is bounded (monitoring recent/active runs); the schema is
not — it is already volume-independent by construction.

The frame view is maintained **incrementally**: messages that arrive
after a frame was built accumulate in a small pending list, and the
next :meth:`ContextManager.to_frame` appends just those rows to the
cached frame (numpy-level column concatenation when dtypes allow), so
steady-state monitoring queries cost O(new messages) instead of
rebuilding the whole buffer.  Only once the bounded deque starts
evicting does the cache fall back to a full rebuild.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Mapping

import numpy as np

from repro.agent.guidelines import GuidelineStore
from repro.agent.schema import DynamicDataflowSchema
from repro.dataframe import DataFrame
from repro.dataframe.column import Column
from repro.messaging.broker import Broker, Subscription
from repro.messaging.message import Envelope
from repro.provenance.messages import TaskProvenanceMessage

__all__ = ["ContextManager"]


def _append_frames(cached: DataFrame, delta: DataFrame) -> DataFrame:
    """Row-append ``delta`` to ``cached``, matching a full rebuild exactly.

    Columns present on both sides with the *same* dtype concatenate at
    the numpy storage level (null encodings agree, and dtype inference
    is stable under concatenation of two same-dtype value sets).  Any
    column missing on one side, or with differing dtypes, rebuilds from
    Python values so the inferred dtype is identical to what
    ``DataFrame.from_records`` over the combined rows would choose.
    """
    n_cached, n_delta = len(cached), len(delta)
    if n_cached == 0:
        return delta
    if n_delta == 0:
        return cached
    cols: dict[str, Column] = {}
    names = list(cached.columns)
    names += [c for c in delta.columns if c not in cached]
    for name in names:
        a = cached.column(name) if name in cached else None
        b = delta.column(name) if name in delta else None
        if a is not None and b is not None and a.dtype == b.dtype:
            cols[name] = Column._from_storage(
                name, np.concatenate([a.values, b.values]), a.dtype
            )
        else:
            vals = (a.to_list() if a is not None else [None] * n_cached) + (
                b.to_list() if b is not None else [None] * n_delta
            )
            cols[name] = Column(name, vals)
    return DataFrame._from_columns(cols, n_cached + n_delta)


class ContextManager:
    """Maintains the agent's in-memory structures from the live stream."""

    def __init__(
        self,
        broker: Broker,
        *,
        buffer_size: int = 10_000,
        pattern: str = "provenance.#",
        record_types: tuple[str, ...] = ("task",),
    ):
        self.broker = broker
        self.schema = DynamicDataflowSchema()
        self.guidelines = GuidelineStore()
        self._buffer: deque[dict[str, Any]] = deque(maxlen=buffer_size)
        self._pattern = pattern
        self._record_types = record_types
        self._subscription: Subscription | None = None
        self._lock = threading.RLock()
        self._frame_cache: DataFrame | None = None
        #: flat records ingested since the cached frame was built; the
        #: next to_frame() appends exactly these (bounded: once the
        #: deque evicts, the cache is marked stale and this stays empty)
        self._frame_pending: list[dict[str, Any]] = []
        self._frame_stale = False
        self.messages_received = 0

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "ContextManager":
        if self._subscription is None:
            self._subscription = self.broker.subscribe(
                self._pattern, self._on_message
            )
        return self

    def stop(self) -> None:
        if self._subscription is not None:
            self.broker.unsubscribe(self._subscription)
            self._subscription = None

    # -- ingestion ----------------------------------------------------------------
    def _on_message(self, envelope: Envelope) -> None:
        self.ingest(envelope.payload)

    def ingest(self, payload: Mapping[str, Any]) -> None:
        if payload.get("type") not in self._record_types:
            return
        msg = TaskProvenanceMessage.from_dict(payload)
        flat = msg.flatten()
        with self._lock:
            self.messages_received += 1
            evicting = len(self._buffer) == self._buffer.maxlen
            self._buffer.append(flat)
            self.schema.update(msg.to_dict())
            if evicting:
                # rows fell off the front: the cached frame can no
                # longer be extended, only rebuilt
                self._frame_stale = True
                self._frame_pending.clear()
            elif self._frame_cache is not None and not self._frame_stale:
                self._frame_pending.append(flat)

    # -- views ------------------------------------------------------------------------
    def to_frame(self) -> DataFrame:
        """The in-memory context as a flattened DataFrame.

        Cached and maintained incrementally: new messages since the
        last call are appended to the cached frame (O(new messages) of
        Python work); a full rebuild happens only on the first call and
        after buffer eviction.
        """
        with self._lock:
            if self._frame_cache is None or self._frame_stale:
                self._frame_cache = DataFrame.from_records(list(self._buffer))
                self._frame_stale = False
                self._frame_pending.clear()
            elif self._frame_pending:
                delta = DataFrame.from_records(self._frame_pending)
                self._frame_cache = _append_frames(self._frame_cache, delta)
                self._frame_pending.clear()
            return self._frame_cache

    def recent(self, n: int = 10) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._buffer)[-n:]

    @property
    def buffer_count(self) -> int:
        with self._lock:
            return len(self._buffer)

    def known_fields(self) -> set[str]:
        return self.schema.all_known_fields()

    # -- prompt material ------------------------------------------------------------------
    def schema_payload(self, include_descriptions: bool = True) -> dict[str, Any]:
        return self.schema.to_prompt_payload(
            include_descriptions=include_descriptions
        )

    def values_payload(self) -> dict[str, Any]:
        return self.schema.values_payload()

    def guidelines_text(self) -> str:
        return self.guidelines.render()

    def add_user_guideline(self, text: str) -> None:
        self.guidelines.add_user_guideline(text)
