"""In-memory context query tool: the agent's main monitoring path.

NL question -> full-context prompt -> LLM -> query code -> parse ->
execute on the Context Manager's live frame.  The generated code and
any runtime error are part of the result, mirroring the paper's GUI
that "displays the code generated and executed on the in-memory
DataFrame, including any runtime errors".

The tool instance is **shared infrastructure**: one instance serves
every session behind :class:`~repro.agent.service.AgentService`, so a
turn passes its session's context — ``prompt_config``,
``guidelines_text``, ``model`` — as per-call overrides instead of the
tool holding per-user state.  The LLM response that produced the
answer rides along in ``ToolResult.details["llm_response"]`` so the
caller can record the interaction without reaching into tool state
(the legacy ``last_response`` attribute remains for single-session
compatibility but is unreliable under concurrency).
"""

from __future__ import annotations

from typing import Any

from repro.agent.context_manager import ContextManager
from repro.agent.prompts import PromptConfig, cached_builder
from repro.agent.tools.base import Tool, ToolResult
from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.llm.service import ChatRequest, LLMServer
from repro.query import execute_query, parse_query
from repro.query.engine import describe_result

__all__ = ["InMemoryQueryTool", "FULL_CONTEXT"]

#: the production agent always runs with the full Table-2 context
FULL_CONTEXT = PromptConfig(
    few_shot=True, schema=True, values=True, guidelines=True
).with_baseline()


class InMemoryQueryTool(Tool):
    name = "in_memory_context_query"
    description = (
        "Translate a natural-language question into a DataFrame query and "
        "run it against the live in-memory provenance buffer."
    )
    uses_llm = True

    def __init__(
        self,
        context_manager: ContextManager,
        llm: LLMServer,
        *,
        model: str = "gpt-4",
        prompt_config: PromptConfig = FULL_CONTEXT,
        max_retries: int = 2,
    ):
        self.context_manager = context_manager
        self.llm = llm
        self.model = model
        self.builder = cached_builder(prompt_config)
        self.max_retries = max_retries
        self.last_response = None

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"question": {"type": "string"}},
            "required": ["question"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        question = str(kwargs.get("question", "")).strip()
        if not question:
            return ToolResult(ok=False, summary="empty question", error="no question")

        cm = self.context_manager
        prompt_config = kwargs.get("prompt_config")
        builder = (
            self.builder if prompt_config is None else cached_builder(prompt_config)
        )
        guidelines_text = kwargs.get("guidelines_text")
        if guidelines_text is None:
            guidelines_text = cm.guidelines_text()
        model = kwargs.get("model") or self.model
        prompt = builder.build(
            question,
            schema_payload=cm.schema_payload(),
            values_payload=cm.values_payload(),
            guidelines_text=guidelines_text,
        )
        frame = cm.to_frame()

        # Degenerate-result auto-retry: a projected column that comes back
        # entirely null almost always means the model bound a sibling field
        # (used.* vs generated.*); re-asking usually self-corrects.  This is
        # the lightweight precursor of the paper's envisioned "auto-fixer"
        # agent (§5.4).
        last_error: ToolResult | None = None
        for attempt in range(self.max_retries + 1):
            response = self.llm.complete(
                ChatRequest(
                    model=model, prompt=prompt, query_id=question, rep=attempt
                )
            )
            self.last_response = response
            code = response.text.strip()
            try:
                pipeline = parse_query(code)
            except QuerySyntaxError as exc:
                last_error = ToolResult(
                    ok=False,
                    summary="the model did not return a valid query",
                    code=code,
                    error=str(exc),
                    details={
                        "latency_s": response.latency_s,
                        "attempts": attempt + 1,
                        "llm_response": response,
                    },
                )
                continue
            try:
                result = execute_query(pipeline, frame)
            except QueryExecutionError as exc:
                last_error = ToolResult(
                    ok=False,
                    summary="the generated query failed at runtime",
                    code=code,
                    error=str(exc),
                    details={
                        "latency_s": response.latency_s,
                        "attempts": attempt + 1,
                        "llm_response": response,
                    },
                )
                continue
            if _degenerate(result) and attempt < self.max_retries:
                continue
            return ToolResult(
                ok=True,
                summary=_describe(result),
                data=result,
                code=code,
                details={
                    "latency_s": response.latency_s,
                    "prompt_tokens": response.prompt_tokens,
                    "output_tokens": response.output_tokens,
                    "attempts": attempt + 1,
                    "llm_response": response,
                },
            )
        assert last_error is not None
        return last_error


def _degenerate(result: Any) -> bool:
    """A non-empty frame with some column entirely null (misbind symptom)."""
    from repro.dataframe import DataFrame

    if isinstance(result, DataFrame) and len(result) > 0:
        for name in result.columns:
            col = result.column(name)
            if all(v is None for v in col.to_list()):
                return True
    return False


# shared with the database tool and the gateway's pipeline/sql dialects
_describe = describe_result
