"""Summary tool: turn a query result into a short textual answer.

The paper's GUI responds "with tables, plots, or summaries"; this tool
produces the summary line — deterministic templating over the result
shape, optionally enriched with light domain phrasing (e.g. "singlet
state", "neutral charge" for multiplicity/charge results, which the
paper highlights in §5.3 Q6).
"""

from __future__ import annotations

from typing import Any

from repro.agent.tools.base import Tool, ToolResult
from repro.dataframe import DataFrame

__all__ = ["SummaryTool"]

_MULTIPLICITY_NAMES = {1: "singlet state", 2: "doublet state", 3: "triplet state"}


class SummaryTool(Tool):
    name = "summarize_result"
    description = "Produce a one-paragraph textual summary of a query result."
    uses_llm = False

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"result": {}, "question": {"type": "string"}},
            "required": ["result"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        result = kwargs.get("result")
        question = str(kwargs.get("question", ""))
        text = summarize(result, question)
        return ToolResult(ok=True, summary=text, data=text)


def summarize(result: Any, question: str = "") -> str:
    if result is None:
        return "No result."
    if isinstance(result, (int, float)):
        return f"The answer is {_fmt(result)}."
    if isinstance(result, list):
        if not result:
            return "No matching values."
        rendered = ", ".join(str(v) for v in result[:8])
        more = "" if len(result) <= 8 else f" (and {len(result) - 8} more)"
        return f"Distinct values: {rendered}{more}."
    if isinstance(result, DataFrame):
        if result.empty:
            return "The query matched no tasks."
        if result.shape == (1, 1):
            only = result.column(result.columns[0])[0]
            return f"The answer is {_fmt(only)}."
        if len(result) == 1:
            row = result.row(0)
            parts = [f"{k} = {_fmt(v)}" for k, v in row.items()]
            text = "; ".join(parts)
            return _enrich(f"One matching task: {text}.", row)
        return (
            f"{len(result)} rows across columns "
            f"{', '.join(result.columns)}; first row: "
            + "; ".join(f"{k} = {_fmt(v)}" for k, v in result.row(0).items())
            + "."
        )
    return str(result)


def _enrich(text: str, row: dict[str, Any]) -> str:
    """Add chemical phrasing the paper's Q6 praises, when applicable."""
    extras: list[str] = []
    for key, value in row.items():
        if key.endswith("multiplicity") and isinstance(value, (int, float)):
            name = _MULTIPLICITY_NAMES.get(int(value))
            if name:
                extras.append(f"a multiplicity of {int(value)} indicates a {name}")
        if key.endswith("charge") and isinstance(value, (int, float)):
            if int(value) == 0:
                extras.append("the molecule carries a neutral charge")
    if extras:
        return text + " Note: " + "; ".join(extras) + "."
    return text


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)
