"""Anomaly Detector tool (paper §4.2) — no LLM involved.

Inspects the in-memory buffer and flags tasks whose telemetry or
numeric dataflow values are statistical outliers (robust z-score via
median/MAD, falling back to mean/std for tiny samples).  Detected
anomalies are tagged and republished to the streaming hub on the
``provenance.anomaly`` topic so downstream services can react, and the
tag makes abnormal tasks easy to query later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.agent.context_manager import ContextManager
from repro.agent.tools.base import Tool, ToolResult
from repro.messaging.broker import Broker
from repro.provenance.keeper import ANOMALY_TOPIC

__all__ = ["AnomalyDetectorTool", "Anomaly"]


@dataclass(frozen=True)
class Anomaly:
    task_id: str
    field: str
    value: float
    zscore: float
    direction: str  # "high" | "low"


class AnomalyDetectorTool(Tool):
    name = "anomaly_detector"
    description = (
        "Scan recent task telemetry and numeric dataflow values for "
        "statistical outliers; tag and republish anomalous tasks."
    )
    uses_llm = False

    def __init__(
        self,
        context_manager: ContextManager,
        broker: Broker,
        *,
        z_threshold: float = 3.5,
        min_samples: int = 8,
    ):
        self.context_manager = context_manager
        self.broker = broker
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self.detected: list[Anomaly] = []

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {
                "fields": {"type": "array", "items": {"type": "string"}},
            },
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        requested = kwargs.get("fields")
        frame = self.context_manager.to_frame()
        if frame.empty:
            return ToolResult(ok=True, summary="no tasks buffered", data=[])
        fields = requested or self._candidate_fields(frame)
        anomalies: list[Anomaly] = []
        for fname in fields:
            if fname not in frame:
                continue
            anomalies.extend(self._scan_field(frame, fname))
        for anomaly in anomalies:
            self.broker.publish(
                ANOMALY_TOPIC,
                {
                    "task_id": anomaly.task_id,
                    "anomaly": {
                        "field": anomaly.field,
                        "value": anomaly.value,
                        "zscore": round(anomaly.zscore, 3),
                        "direction": anomaly.direction,
                    },
                    "type": "task",
                },
                anomaly="statistical-outlier",
            )
        self.detected.extend(anomalies)
        return ToolResult(
            ok=True,
            summary=f"{len(anomalies)} anomalous value(s) across "
            f"{len(list(fields))} field(s)",
            data=anomalies,
        )

    # -- internals ---------------------------------------------------------------
    @staticmethod
    def _candidate_fields(frame) -> list[str]:
        out = []
        for name in frame.columns:
            if name.startswith(("telemetry_at_", "used.", "generated.")) or name == "duration":
                col = frame.column(name)
                if col.dtype in ("float64", "int64"):
                    out.append(name)
        return out

    def _scan_field(self, frame, fname: str) -> list[Anomaly]:
        col = frame.column(fname)
        values = col.to_numpy().astype(np.float64)
        mask = ~np.isnan(values)
        if mask.sum() < self.min_samples:
            return []
        valid = values[mask]
        med = float(np.median(valid))
        mad = float(np.median(np.abs(valid - med)))
        if mad > 1e-12:
            z = 0.6745 * (values - med) / mad
        else:
            std = float(valid.std())
            if std < 1e-12:
                return []
            z = (values - med) / std
        out: list[Anomaly] = []
        task_ids = frame.column("task_id") if "task_id" in frame else None
        for i in np.nonzero(mask & (np.abs(z) > self.z_threshold))[0]:
            out.append(
                Anomaly(
                    task_id=str(task_ids[int(i)]) if task_ids is not None else str(i),
                    field=fname,
                    value=float(values[i]),
                    zscore=float(z[i]),
                    direction="high" if z[i] > 0 else "low",
                )
            )
        return out
