"""Post-hoc database query tool (offline/historical questions).

Same NL -> code -> execute pipeline as the in-memory tool, but the
frame comes from the persistent provenance database through the Query
API, so questions can span completed campaigns rather than the live
buffer.

Targeted questions stay fast at volume: the leading filters of the
generated pipeline are translated into a Mongo-style prefilter
(:func:`repro.query.pushdown.pipeline_prefilter`) and answered by the
storage backend's indexes — and, on a sharded store, routed to the
single shard a ``workflow_id`` equality names — so the DataFrame is
built only from candidate documents instead of the whole store.  If executing over the reduced
frame fails (e.g. a column that only exists on excluded documents), the
tool transparently retries against the unfiltered frame, so pushdown
never changes observable behaviour.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.agent.context_manager import ContextManager
from repro.agent.prompts import PromptBuilder, PromptConfig
from repro.agent.tools.base import Tool, ToolResult
from repro.agent.tools.in_memory_query import FULL_CONTEXT, _describe
from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.llm.service import ChatRequest, LLMServer
from repro.provenance.query_api import QueryAPI
from repro.query import execute_query, parse_query
from repro.query.pushdown import merge_filters, pipeline_prefilter

__all__ = ["DatabaseQueryTool"]


class DatabaseQueryTool(Tool):
    name = "provenance_db_query"
    description = (
        "Translate a natural-language question into a query over the "
        "persistent provenance database (historical, post-hoc analysis)."
    )
    uses_llm = True

    def __init__(
        self,
        query_api: QueryAPI,
        context_manager: ContextManager,
        llm: LLMServer,
        *,
        model: str = "gpt-4",
        prompt_config: PromptConfig = FULL_CONTEXT,
        base_filter: Mapping[str, Any] | None = None,
        pushdown: bool = True,
    ):
        self.query_api = query_api
        self.context_manager = context_manager
        self.llm = llm
        self.model = model
        self.builder = PromptBuilder(prompt_config)
        self.base_filter = dict(base_filter or {"type": "task"})
        self.pushdown = pushdown

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"question": {"type": "string"}},
            "required": ["question"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        question = str(kwargs.get("question", "")).strip()
        if not question:
            return ToolResult(ok=False, summary="empty question", error="no question")
        cm = self.context_manager
        prompt = self.builder.build(
            question,
            schema_payload=cm.schema_payload(),
            values_payload=cm.values_payload(),
            guidelines_text=cm.guidelines_text(),
        )
        response = self.llm.complete(
            ChatRequest(model=self.model, prompt=prompt, query_id=question)
        )
        code = response.text.strip()
        try:
            pipeline = parse_query(code)
        except QuerySyntaxError as exc:
            return ToolResult(
                ok=False,
                summary="the model did not return a valid query",
                code=code,
                error=str(exc),
            )
        prefilter = pipeline_prefilter(pipeline) if self.pushdown else {}
        frame = self.query_api.to_frame(merge_filters(self.base_filter, prefilter))
        try:
            try:
                result = execute_query(pipeline, frame)
            except QueryExecutionError:
                if not prefilter:
                    raise
                # the reduced frame may lack columns that only appear on
                # excluded documents; retry over the full document set so
                # pushdown never changes observable behaviour
                frame = self.query_api.to_frame(self.base_filter)
                result = execute_query(pipeline, frame)
        except QueryExecutionError as exc:
            return ToolResult(
                ok=False,
                summary="the generated query failed against the database",
                code=code,
                error=str(exc),
            )
        return ToolResult(
            ok=True, summary=_describe(result), data=result, code=code
        )
