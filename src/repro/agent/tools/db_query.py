"""Post-hoc database query tool (offline/historical questions).

Same NL -> code -> execute pipeline as the in-memory tool, but the
frame comes from the persistent provenance database through the Query
API, so questions can span completed campaigns rather than the live
buffer.

Targeted questions stay fast at volume: the leading filters of the
generated pipeline are translated into a Mongo-style prefilter
(:func:`repro.query.pushdown.pipeline_prefilter`) and answered by the
storage backend's indexes — and, on a sharded store, routed to the
single shard a ``workflow_id`` equality names — so the DataFrame is
built only from candidate documents instead of the whole store.  If executing over the reduced
frame fails (e.g. a column that only exists on excluded documents), the
tool transparently retries against the unfiltered frame, so pushdown
never changes observable behaviour.

Repeated questions stay fast at traffic: a versioned
:class:`~repro.query.QueryCache` (shared with the Query API) memoises
the executed result keyed on ``(parsed query IR, base filter, store
version)``.  Keying on the *IR* — not the question text — means every
phrasing that parses to the same pipeline shares one entry across all
sessions, and the store-version component invalidates exactly when new
provenance arrives.  ``details["cache"]`` reports hit/miss per call.

Like the in-memory tool, the instance is shared across sessions: turns
pass ``prompt_config`` / ``guidelines_text`` / ``model`` as per-call
overrides, and the LLM response rides in
``details["llm_response"]``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.agent.context_manager import ContextManager
from repro.agent.prompts import PromptConfig, cached_builder
from repro.agent.tools.base import Tool, ToolResult
from repro.agent.tools.in_memory_query import FULL_CONTEXT
from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.llm.service import ChatRequest, LLMServer
from repro.provenance.query_api import QueryAPI
from repro.query import parse_query
from repro.query.cache import QueryCache, canonical_filter_key
from repro.query.engine import run_cached_pipeline

__all__ = ["DatabaseQueryTool"]


class DatabaseQueryTool(Tool):
    name = "provenance_db_query"
    description = (
        "Translate a natural-language question into a query over the "
        "persistent provenance database (historical, post-hoc analysis)."
    )
    uses_llm = True

    def __init__(
        self,
        query_api: QueryAPI,
        context_manager: ContextManager,
        llm: LLMServer,
        *,
        model: str = "gpt-4",
        prompt_config: PromptConfig = FULL_CONTEXT,
        base_filter: Mapping[str, Any] | None = None,
        pushdown: bool = True,
        cache: QueryCache | None = None,
    ):
        self.query_api = query_api
        self.context_manager = context_manager
        self.llm = llm
        self.model = model
        self.builder = cached_builder(prompt_config)
        self.base_filter = dict(base_filter or {"type": "task"})
        self.pushdown = pushdown
        #: result cache; defaults to the Query API's own, so tool and
        #: facade share one hit accounting per store
        self.cache = cache if cache is not None else query_api.cache
        self._base_filter_key = canonical_filter_key(self.base_filter)

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"question": {"type": "string"}},
            "required": ["question"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        question = str(kwargs.get("question", "")).strip()
        if not question:
            return ToolResult(ok=False, summary="empty question", error="no question")
        cm = self.context_manager
        guidelines_text = kwargs.get("guidelines_text")
        if guidelines_text is None:
            guidelines_text = cm.guidelines_text()
        model = kwargs.get("model") or self.model
        prompt_config = kwargs.get("prompt_config")
        builder = (
            self.builder if prompt_config is None else cached_builder(prompt_config)
        )
        prompt = builder.build(
            question,
            schema_payload=cm.schema_payload(),
            values_payload=cm.values_payload(),
            guidelines_text=guidelines_text,
        )
        response = self.llm.complete(
            ChatRequest(model=model, prompt=prompt, query_id=question)
        )
        code = response.text.strip()
        try:
            pipeline = parse_query(code)
        except QuerySyntaxError as exc:
            return ToolResult(
                ok=False,
                summary="the model did not return a valid query",
                code=code,
                error=str(exc),
                details={"llm_response": response},
            )
        try:
            run = run_cached_pipeline(
                self.query_api,
                pipeline,
                base_filter=self.base_filter,
                base_filter_key=self._base_filter_key,
                cache=self.cache,
                pushdown=self.pushdown,
            )
        except QueryExecutionError as exc:
            return ToolResult(
                ok=False,
                summary="the generated query failed against the database",
                code=code,
                error=str(exc),
                details={"llm_response": response},
            )
        details: dict[str, Any] = {
            "cache": run.cache_state,
            "llm_response": response,
        }
        if run.pushdown is not None:
            details["pushdown"] = run.pushdown
        return ToolResult(
            ok=True,
            summary=run.summary,
            data=run.result,
            code=code,
            details=details,
        )
