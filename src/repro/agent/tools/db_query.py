"""Post-hoc database query tool (offline/historical questions).

Same NL -> code -> execute pipeline as the in-memory tool, but the
frame comes from the persistent provenance database through the Query
API, so questions can span completed campaigns rather than the live
buffer.

Targeted questions stay fast at volume: the leading filters of the
generated pipeline are translated into a Mongo-style prefilter
(:func:`repro.query.pushdown.pipeline_prefilter`) and answered by the
storage backend's indexes — and, on a sharded store, routed to the
single shard a ``workflow_id`` equality names — so the DataFrame is
built only from candidate documents instead of the whole store.  If executing over the reduced
frame fails (e.g. a column that only exists on excluded documents), the
tool transparently retries against the unfiltered frame, so pushdown
never changes observable behaviour.

Repeated questions stay fast at traffic: a versioned
:class:`~repro.query.QueryCache` (shared with the Query API) memoises
the executed result keyed on ``(parsed query IR, base filter, store
version)``.  Keying on the *IR* — not the question text — means every
phrasing that parses to the same pipeline shares one entry across all
sessions, and the store-version component invalidates exactly when new
provenance arrives.  ``details["cache"]`` reports hit/miss per call.

Like the in-memory tool, the instance is shared across sessions: turns
pass ``prompt_config`` / ``guidelines_text`` / ``model`` as per-call
overrides, and the LLM response rides in
``details["llm_response"]``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.agent.context_manager import ContextManager
from repro.agent.prompts import PromptConfig, cached_builder
from repro.agent.tools.base import Tool, ToolResult
from repro.agent.tools.in_memory_query import FULL_CONTEXT, _describe
from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.llm.service import ChatRequest, LLMServer
from repro.provenance.query_api import QueryAPI, store_version
from repro.query import execute_query, parse_query
from repro.query.cache import MISS, QueryCache, canonical_filter_key
from repro.query.pushdown import merge_filters, pipeline_prefilter

__all__ = ["DatabaseQueryTool"]


class DatabaseQueryTool(Tool):
    name = "provenance_db_query"
    description = (
        "Translate a natural-language question into a query over the "
        "persistent provenance database (historical, post-hoc analysis)."
    )
    uses_llm = True

    def __init__(
        self,
        query_api: QueryAPI,
        context_manager: ContextManager,
        llm: LLMServer,
        *,
        model: str = "gpt-4",
        prompt_config: PromptConfig = FULL_CONTEXT,
        base_filter: Mapping[str, Any] | None = None,
        pushdown: bool = True,
        cache: QueryCache | None = None,
    ):
        self.query_api = query_api
        self.context_manager = context_manager
        self.llm = llm
        self.model = model
        self.builder = cached_builder(prompt_config)
        self.base_filter = dict(base_filter or {"type": "task"})
        self.pushdown = pushdown
        #: result cache; defaults to the Query API's own, so tool and
        #: facade share one hit accounting per store
        self.cache = cache if cache is not None else query_api.cache
        self._base_filter_key = canonical_filter_key(self.base_filter)

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"question": {"type": "string"}},
            "required": ["question"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        question = str(kwargs.get("question", "")).strip()
        if not question:
            return ToolResult(ok=False, summary="empty question", error="no question")
        cm = self.context_manager
        guidelines_text = kwargs.get("guidelines_text")
        if guidelines_text is None:
            guidelines_text = cm.guidelines_text()
        model = kwargs.get("model") or self.model
        prompt_config = kwargs.get("prompt_config")
        builder = (
            self.builder if prompt_config is None else cached_builder(prompt_config)
        )
        prompt = builder.build(
            question,
            schema_payload=cm.schema_payload(),
            values_payload=cm.values_payload(),
            guidelines_text=guidelines_text,
        )
        response = self.llm.complete(
            ChatRequest(model=model, prompt=prompt, query_id=question)
        )
        code = response.text.strip()
        try:
            pipeline = parse_query(code)
        except QuerySyntaxError as exc:
            return ToolResult(
                ok=False,
                summary="the model did not return a valid query",
                code=code,
                error=str(exc),
                details={"llm_response": response},
            )
        # version read BEFORE any store read: a write racing this turn
        # strands the entry under a stamp that never matches again
        version = store_version(self.query_api.database)
        key = None
        if version is not None and self._base_filter_key is not None:
            key = ("db_query", self._base_filter_key, pipeline)
            try:
                hash(key)
            except TypeError:
                # the IR is frozen but its literals come from model
                # output and may be unhashable (list comparisons);
                # such queries bypass the cache instead of failing
                key = None
        if key is not None:
            cached = self.cache.get(key, version)
            if cached is not MISS:
                summary, result = cached
                return ToolResult(
                    ok=True,
                    summary=summary,
                    data=list(result) if isinstance(result, list) else result,
                    code=code,
                    details={"cache": "hit", "llm_response": response},
                )
        prefilter = pipeline_prefilter(pipeline) if self.pushdown else {}
        frame = self.query_api.to_frame(merge_filters(self.base_filter, prefilter))
        try:
            try:
                result = execute_query(pipeline, frame)
            except QueryExecutionError:
                if not prefilter:
                    raise
                # the reduced frame may lack columns that only appear on
                # excluded documents; retry over the full document set so
                # pushdown never changes observable behaviour
                frame = self.query_api.to_frame(self.base_filter)
                result = execute_query(pipeline, frame)
        except QueryExecutionError as exc:
            return ToolResult(
                ok=False,
                summary="the generated query failed against the database",
                code=code,
                error=str(exc),
                details={"llm_response": response},
            )
        summary = _describe(result)
        if key is not None:
            # copy list results so a caller mutating its answer cannot
            # poison later hits (frames/scalars are immutable)
            stored = list(result) if isinstance(result, list) else result
            self.cache.put(key, version, (summary, stored))
        return ToolResult(
            ok=True,
            summary=summary,
            data=result,
            code=code,
            details={"cache": "miss", "llm_response": response},
        )
