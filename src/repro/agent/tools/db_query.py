"""Post-hoc database query tool (offline/historical questions).

Same NL -> code -> execute pipeline as the in-memory tool, but the
frame comes from the persistent provenance database through the Query
API, so questions can span completed campaigns rather than the live
buffer.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.agent.context_manager import ContextManager
from repro.agent.prompts import PromptBuilder, PromptConfig
from repro.agent.tools.base import Tool, ToolResult
from repro.agent.tools.in_memory_query import FULL_CONTEXT, _describe
from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.llm.service import ChatRequest, LLMServer
from repro.provenance.query_api import QueryAPI
from repro.query import execute_query, parse_query

__all__ = ["DatabaseQueryTool"]


class DatabaseQueryTool(Tool):
    name = "provenance_db_query"
    description = (
        "Translate a natural-language question into a query over the "
        "persistent provenance database (historical, post-hoc analysis)."
    )
    uses_llm = True

    def __init__(
        self,
        query_api: QueryAPI,
        context_manager: ContextManager,
        llm: LLMServer,
        *,
        model: str = "gpt-4",
        prompt_config: PromptConfig = FULL_CONTEXT,
        base_filter: Mapping[str, Any] | None = None,
    ):
        self.query_api = query_api
        self.context_manager = context_manager
        self.llm = llm
        self.model = model
        self.builder = PromptBuilder(prompt_config)
        self.base_filter = dict(base_filter or {"type": "task"})

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"question": {"type": "string"}},
            "required": ["question"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        question = str(kwargs.get("question", "")).strip()
        if not question:
            return ToolResult(ok=False, summary="empty question", error="no question")
        cm = self.context_manager
        prompt = self.builder.build(
            question,
            schema_payload=cm.schema_payload(),
            values_payload=cm.values_payload(),
            guidelines_text=cm.guidelines_text(),
        )
        response = self.llm.complete(
            ChatRequest(model=self.model, prompt=prompt, query_id=question)
        )
        code = response.text.strip()
        try:
            pipeline = parse_query(code)
        except QuerySyntaxError as exc:
            return ToolResult(
                ok=False,
                summary="the model did not return a valid query",
                code=code,
                error=str(exc),
            )
        frame = self.query_api.to_frame(self.base_filter)
        try:
            result = execute_query(pipeline, frame)
        except QueryExecutionError as exc:
            return ToolResult(
                ok=False,
                summary="the generated query failed against the database",
                code=code,
                error=str(exc),
            )
        return ToolResult(
            ok=True, summary=_describe(result), data=result, code=code
        )
