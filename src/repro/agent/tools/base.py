"""Tool abstraction + registry ("Bring Your Own Tool", paper §4.2).

Tools expose a name, a human description, and an ``invoke`` method
taking keyword arguments and returning a :class:`ToolResult`.  The
registry dispatches by name and is what the MCP server publishes; new
tools plug in without touching core components.  Not every tool needs
LLM interaction (the anomaly detector is pure statistics).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ToolNotFoundError

__all__ = ["Tool", "ToolResult", "ToolRegistry"]


@dataclass
class ToolResult:
    """Uniform tool output envelope."""

    ok: bool
    summary: str
    data: Any = None
    code: str | None = None  # generated query code, when applicable
    error: str | None = None
    details: dict[str, Any] = field(default_factory=dict)


class Tool(ABC):
    """Base class for agent tools."""

    name: str = "tool"
    description: str = ""
    uses_llm: bool = False

    @abstractmethod
    def invoke(self, **kwargs: Any) -> ToolResult:
        ...

    def input_schema(self) -> dict[str, Any]:
        """JSON-schema-flavoured argument description (MCP tools/list)."""
        return {"type": "object", "properties": {}}


class ToolRegistry:
    """Name -> tool mapping with registration order preserved."""

    def __init__(self) -> None:
        self._tools: dict[str, Tool] = {}

    def register(self, tool: Tool) -> Tool:
        self._tools[tool.name] = tool
        return tool

    def get(self, name: str) -> Tool:
        try:
            return self._tools[name]
        except KeyError:
            raise ToolNotFoundError(
                f"no tool {name!r}; available: {', '.join(self._tools) or '(none)'}"
            ) from None

    def names(self) -> list[str]:
        return list(self._tools)

    def describe(self) -> list[dict[str, Any]]:
        return [
            {
                "name": t.name,
                "description": t.description,
                "uses_llm": t.uses_llm,
                "input_schema": t.input_schema(),
            }
            for t in self._tools.values()
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def __len__(self) -> int:
        return len(self._tools)
