"""MCP-style tools: the agent's executable capabilities (Fig. 4 right)."""

from repro.agent.tools.base import Tool, ToolRegistry, ToolResult
from repro.agent.tools.in_memory_query import InMemoryQueryTool
from repro.agent.tools.db_query import DatabaseQueryTool
from repro.agent.tools.graph_query import GraphQueryTool
from repro.agent.tools.anomaly import AnomalyDetectorTool
from repro.agent.tools.plotting import PlottingTool
from repro.agent.tools.summarize import SummaryTool

__all__ = [
    "Tool",
    "ToolRegistry",
    "ToolResult",
    "InMemoryQueryTool",
    "DatabaseQueryTool",
    "GraphQueryTool",
    "AnomalyDetectorTool",
    "PlottingTool",
    "SummaryTool",
]
