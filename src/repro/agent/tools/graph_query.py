"""Graph traversal tool over the live lineage index (``graph_query``).

The paper's taxonomy separates *targeted* lookups from *graph
traversal* queries ("multi-step dependencies or causal chains", §2.1)
and §5.4 names traversal an open challenge for the interactive path.
This tool closes that gap: it answers lineage questions from the
incrementally-maintained :class:`repro.lineage.LineageIndex`, so the
cost is proportional to the answer, not to the store.

Invocation is dual-mode, like MCP tools in general:

* **structured** — ``invoke(operation="upstream", task_id=..., depth=2)``
  for callers (LLM tool-use, scripts) that already know what they want;
* **natural language** — ``invoke(question="what led to task '...'?")``
  routed from chat; a deterministic parser extracts the operation,
  task ids (quoted, or bare id-shaped tokens), and an optional hop
  limit.  No LLM round trip is needed: traversal questions name their
  operation far more reliably than tabular ones do.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.agent.nl_tokens import extract_ids
from repro.agent.tools.base import Tool, ToolResult
from repro.dataframe import DataFrame
from repro.errors import ProvenanceError
from repro.lineage.index import LineageIndex

__all__ = ["GraphQueryTool", "OPERATIONS"]

#: Structured operations the tool accepts (also the MCP enum).
OPERATIONS = (
    "upstream",
    "downstream",
    "parents",
    "children",
    "causal_chain",
    "roots",
    "leaves",
    "critical_path",
    "impact_size",
)

_DEPTH_RE = re.compile(r"\b(?:within|up to|at most|max(?:imum)?)\s+(\d+)\s+(?:hop|level|step|generation)s?\b", re.I)

#: operation detection, first match wins (most specific phrasing first)
_OP_PATTERNS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("critical_path", re.compile(r"\b(critical path|longest (chain|path))\b", re.I)),
    ("causal_chain", re.compile(r"\b(causal chain|path|chain|route|connection|how .*(reach|lead))\b", re.I)),
    # downstream-direction words only: "how many ... depend on" is an
    # upstream question and must fall through to the upstream pattern
    ("impact_size", re.compile(r"\bhow many\b.*\b(downstream|descendant|affect|impact|influenc)", re.I)),
    # "which/how many tasks depend on X" names the dependee: the asker
    # wants X's dependents (downstream), not X's ancestors
    ("downstream", re.compile(r"\b(which|what|how many)\s+(tasks?|ones?)\s+depends?\s+on\b", re.I)),
    ("roots", re.compile(r"\b(roots?|entry tasks?|source tasks?|no (parents?|upstream))\b", re.I)),
    ("leaves", re.compile(r"\b(leaves|leaf|sinks?|terminal tasks?|final tasks?)\b", re.I)),
    ("parents", re.compile(r"\b(direct|immediate)\s+(parents?|predecessors?|upstream)\b", re.I)),
    ("children", re.compile(r"\b(direct|immediate)\s+(children|successors?|downstream)\b", re.I)),
    ("upstream", re.compile(r"\b(upstream|ancestor|lineage|led to|depends? on|derived from|came from|caused)\b", re.I)),
    ("downstream", re.compile(r"\b(downstream|descendant|impact|affected|influenced|consumed)\b", re.I)),
)


class GraphQueryTool(Tool):
    name = "provenance_graph_query"
    description = (
        "Traverse the live task-lineage graph: upstream/downstream sets, "
        "causal chains between tasks, roots/leaves, per-workflow critical "
        "path, and impact-set sizes. Answers from an incrementally "
        "maintained index (no per-question graph rebuild)."
    )
    uses_llm = False

    def __init__(self, index: LineageIndex):
        self.index = index

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {
                "question": {
                    "type": "string",
                    "description": "Natural-language lineage question.",
                },
                "operation": {"type": "string", "enum": list(OPERATIONS)},
                "task_id": {"type": "string"},
                "target": {
                    "type": "string",
                    "description": "Destination task for causal_chain.",
                },
                "depth": {
                    "type": "integer",
                    "description": "Hop limit for upstream/downstream.",
                },
                "workflow_id": {
                    "type": "string",
                    "description": "Restrict critical_path to one workflow.",
                },
            },
        }

    # -- invocation ---------------------------------------------------------------
    def invoke(self, **kwargs: Any) -> ToolResult:
        operation = kwargs.get("operation")
        task_id = kwargs.get("task_id")
        target = kwargs.get("target")
        depth = kwargs.get("depth")
        workflow_id = kwargs.get("workflow_id")
        question = str(kwargs.get("question", "")).strip()

        if operation is None and question:
            operation, parsed = self._parse(question)
            task_id = task_id or parsed.get("task_id")
            target = target or parsed.get("target")
            depth = depth if depth is not None else parsed.get("depth")
            workflow_id = workflow_id or parsed.get("workflow_id")
        if operation is None:
            return ToolResult(
                ok=False,
                summary="could not determine a graph operation",
                error=(
                    "pass operation= explicitly or phrase the question with "
                    "upstream/downstream/path/roots/leaves/critical path"
                ),
            )
        if operation not in OPERATIONS:
            return ToolResult(
                ok=False,
                summary=f"unknown graph operation {operation!r}",
                error=f"expected one of {', '.join(OPERATIONS)}",
            )
        try:
            return self._run(operation, task_id, target, depth, workflow_id)
        except ProvenanceError as exc:
            return ToolResult(
                ok=False, summary="graph query failed", error=str(exc)
            )

    def _run(
        self,
        operation: str,
        task_id: str | None,
        target: str | None,
        depth: int | None,
        workflow_id: str | None,
    ) -> ToolResult:
        idx = self.index
        details: dict[str, Any] = {"operation": operation}
        if operation in ("upstream", "downstream", "parents", "children", "impact_size"):
            if not task_id:
                return ToolResult(
                    ok=False,
                    summary=f"{operation} needs a task id",
                    error="no task id found in the question",
                )
            details["task_id"] = task_id
        if operation == "upstream":
            ids = sorted(idx.upstream(task_id, max_depth=depth))
            details["depth"] = depth
            return self._task_set(ids, f"upstream of {task_id}", details)
        if operation == "downstream":
            ids = sorted(idx.downstream(task_id, max_depth=depth))
            details["depth"] = depth
            return self._task_set(ids, f"downstream of {task_id}", details)
        if operation == "parents":
            return self._task_set(
                idx.parents(task_id), f"direct parents of {task_id}", details
            )
        if operation == "children":
            return self._task_set(
                idx.children(task_id), f"direct children of {task_id}", details
            )
        if operation == "impact_size":
            n = len(idx.downstream(task_id))
            return ToolResult(
                ok=True,
                summary=f"task {task_id} influenced {n} downstream task(s)",
                data=n,
                details=details,
            )
        if operation == "causal_chain":
            if not task_id or not target:
                return ToolResult(
                    ok=False,
                    summary="causal_chain needs two task ids",
                    error="name both the source and the target task",
                )
            details.update(source=task_id, target=target)
            chain = idx.causal_chain(task_id, target)
            if chain is None:
                return ToolResult(
                    ok=True,
                    summary=f"no dependency path from {task_id} to {target}",
                    data=DataFrame.from_records([]),
                    details=details,
                )
            return self._chain(chain, details)
        if operation == "roots":
            return self._task_set(idx.roots(), "root tasks (no upstream)", details)
        if operation == "leaves":
            return self._task_set(idx.leaves(), "leaf tasks (no downstream)", details)
        # critical_path
        details["workflow_id"] = workflow_id
        return self._chain(idx.critical_path(workflow_id=workflow_id), details)

    # -- NL parsing ---------------------------------------------------------------
    def _parse(self, question: str) -> tuple[str | None, dict[str, Any]]:
        parsed: dict[str, Any] = {}
        ids = extract_ids(question)
        depth_m = _DEPTH_RE.search(question)
        if depth_m:
            parsed["depth"] = int(depth_m.group(1))

        operation = None
        for op, pattern in _OP_PATTERNS:
            if pattern.search(question):
                operation = op
                break
        # workflow id: an id the index knows as a workflow, or — for an
        # explicitly workflow-scoped critical path — the named id even if
        # unknown (an empty path is honest; the whole graph is not)
        workflows = set(self.index.workflows())
        wf_ids = [i for i in ids if i in workflows]
        if (
            not wf_ids
            and ids
            and operation == "critical_path"
            and re.search(r"\bworkflow\b", question, re.I)
        ):
            wf_ids = [ids[0]]
        if wf_ids:
            parsed["workflow_id"] = wf_ids[0]
        # keep unknown ids: a typo'd task must surface as "unknown task",
        # never be dropped and answered as a different question
        task_ids = [i for i in ids if i != parsed.get("workflow_id")]
        if task_ids:
            parsed["task_id"] = task_ids[0]
            if len(task_ids) > 1:
                parsed["target"] = task_ids[1]
        if operation == "causal_chain" and len(task_ids) == 1:
            # "path" phrasing naming a single task makes no chain; answer
            # its lineage instead
            operation = "upstream"
        return operation, parsed

    # -- rendering ----------------------------------------------------------------
    def _task_set(
        self, ids: list[str], what: str, details: dict[str, Any]
    ) -> ToolResult:
        details["count"] = len(ids)
        return ToolResult(
            ok=True,
            summary=f"{len(ids)} task(s) {what}",
            data=self._frame(ids),
            details=details,
        )

    def _chain(self, chain: list[str], details: dict[str, Any]) -> ToolResult:
        details["length"] = len(chain)
        return ToolResult(
            ok=True,
            summary=f"chain of {len(chain)} task(s)",
            data=self._frame(chain, positions=True),
            details=details,
        )

    def _frame(self, ids: list[str], *, positions: bool = False) -> DataFrame:
        rows = []
        for i, tid in enumerate(ids):
            meta = self.index.node(tid) if tid in self.index else {}
            row: dict[str, Any] = {"position": i} if positions else {}
            row.update(
                task_id=tid,
                activity_id=meta.get("activity_id"),
                workflow_id=meta.get("workflow_id"),
                status=meta.get("status"),
            )
            rows.append(row)
        return DataFrame.from_records(rows)
