"""SQL query tool: typed SELECT statements over the historical store.

The agent's other query tools translate natural language into the
pipeline IR via an LLM.  This tool takes the *same* IR from the other
direction: a user (or an upstream agent) hands it a SQL SELECT, the
:mod:`repro.sql` front end compiles it, and execution rides the exact
machinery the database tool uses — shared
:func:`~repro.query.engine.run_cached_pipeline`, the same pushdown and
shard routing, and the same versioned :class:`~repro.query.QueryCache`.
Because cache keys are the compiled IR (never the SQL text), a SQL
question and an equivalent natural-language question answered by the
database tool share one cache entry.

No LLM is involved (``uses_llm = False``): compile failures are
deterministic, positioned diagnostics (``details["diagnostic"]`` has
line/column and a caret snippet), never a model retry.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.agent.tools.base import Tool, ToolResult
from repro.errors import QueryExecutionError
from repro.provenance.query_api import QueryAPI
from repro.query import render_query
from repro.query.cache import QueryCache, canonical_filter_key
from repro.query.engine import run_cached_pipeline
from repro.sql import SqlError, compile_sql

__all__ = ["SqlQueryTool"]


class SqlQueryTool(Tool):
    name = "provenance_sql_query"
    description = (
        "Run a SQL SELECT statement against the persistent provenance "
        "database (compiled to the same query IR as the other dialects)."
    )
    uses_llm = False

    def __init__(
        self,
        query_api: QueryAPI,
        *,
        base_filter: Mapping[str, Any] | None = None,
        pushdown: bool = True,
        cache: QueryCache | None = None,
    ):
        self.query_api = query_api
        self.base_filter = dict(base_filter) if base_filter is not None else {
            "type": "task"
        }
        self.pushdown = pushdown
        #: result cache; defaults to the Query API's own, so SQL and NL
        #: questions over one store share hits
        self.cache = cache if cache is not None else query_api.cache
        self._base_filter_key = canonical_filter_key(self.base_filter)

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"sql": {"type": "string"}},
            "required": ["sql"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        # router turns arrive as question=<message>; direct/MCP calls say sql=
        sql = str(kwargs.get("sql") or kwargs.get("question") or "").strip()
        if not sql:
            return ToolResult(
                ok=False, summary="empty statement", error="no sql statement"
            )
        try:
            pipeline = compile_sql(sql)
        except SqlError as exc:
            return ToolResult(
                ok=False,
                summary="the SQL statement did not compile",
                code=sql,
                error=str(exc),
                details={"diagnostic": exc.diagnostic(), "dialect": "sql"},
            )
        code = render_query(pipeline)
        try:
            run = run_cached_pipeline(
                self.query_api,
                pipeline,
                base_filter=self.base_filter,
                base_filter_key=self._base_filter_key,
                cache=self.cache,
                pushdown=self.pushdown,
            )
        except QueryExecutionError as exc:
            return ToolResult(
                ok=False,
                summary="the compiled query failed against the database",
                code=code,
                error=str(exc),
                details={"sql": sql, "dialect": "sql"},
            )
        return ToolResult(
            ok=True,
            summary=run.summary,
            data=run.result,
            code=code,
            details={"cache": run.cache_state, "sql": sql, "dialect": "sql"},
        )
