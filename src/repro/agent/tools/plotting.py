"""Plotting tool: NL plot requests -> query -> ASCII chart.

The paper's agent answers "Plot a bar graph displaying the bond
dissociation enthalpy for each bond label" with a rendered figure; in a
terminal library the rendering backend is
:mod:`repro.viz.ascii`.  The tool reuses the in-memory query tool for
the data-retrieval half, then renders the first categorical column
against the first numeric column of the result.
"""

from __future__ import annotations

from typing import Any

from repro.agent.tools.base import Tool, ToolResult
from repro.agent.tools.in_memory_query import InMemoryQueryTool
from repro.dataframe import DataFrame
from repro.viz.ascii import bar_chart

__all__ = ["PlottingTool"]


class PlottingTool(Tool):
    name = "plot"
    description = (
        "Answer a visualization request: generate the data query, run it, "
        "and render a bar chart of the result."
    )
    uses_llm = True

    def __init__(self, query_tool: InMemoryQueryTool):
        self.query_tool = query_tool

    def input_schema(self) -> dict[str, Any]:
        return {
            "type": "object",
            "properties": {"question": {"type": "string"}},
            "required": ["question"],
        }

    def invoke(self, **kwargs: Any) -> ToolResult:
        question = str(kwargs.get("question", ""))
        # per-session context (prompt_config / guidelines_text / model)
        # flows through to the data-retrieval tool untouched
        session_kwargs = {
            k: kwargs[k]
            for k in ("prompt_config", "guidelines_text", "model")
            if k in kwargs
        }
        # pass the question as phrased (known phrasings resolve directly);
        # retry with the plot language stripped if the first pass fails
        inner = self.query_tool.invoke(question=question, **session_kwargs)
        if not inner.ok:
            inner = self.query_tool.invoke(
                question=_strip_plot_language(question), **session_kwargs
            )
        if not inner.ok:
            return ToolResult(
                ok=False,
                summary="could not retrieve data for the plot",
                code=inner.code,
                error=inner.error,
                details=_carry_llm(inner),
            )
        result = inner.data
        if not isinstance(result, DataFrame) or result.empty:
            return ToolResult(
                ok=False,
                summary="query did not return plottable rows",
                code=inner.code,
                error="need a non-empty tabular result",
                details=_carry_llm(inner),
            )
        label_col, value_col = _pick_axes(result)
        if label_col is None or value_col is None:
            return ToolResult(
                ok=False,
                summary="result has no categorical/numeric column pair",
                code=inner.code,
                error="cannot infer plot axes",
                details=_carry_llm(inner),
            )
        chart = bar_chart(
            labels=[str(v) for v in result.column(label_col).to_list()],
            values=[float(v or 0.0) for v in result.column(value_col).to_list()],
            title=f"{value_col} by {label_col}",
        )
        return ToolResult(
            ok=True,
            summary=f"bar chart of {value_col} by {label_col}",
            data=chart,
            code=inner.code,
            details=dict(
                _carry_llm(inner), label_column=label_col, value_column=value_col
            ),
        )


def _carry_llm(inner: ToolResult) -> dict[str, Any]:
    """Propagate the data tool's LLM response for provenance recording."""
    response = inner.details.get("llm_response")
    return {"llm_response": response} if response is not None else {}


def _strip_plot_language(question: str) -> str:
    import re

    text = re.sub(
        r"\b(please\s+)?(plot|draw|chart|graph|visuali[sz]e)\b[^,]*?\b(of|displaying|showing|for)\b",
        "show",
        question,
        flags=re.IGNORECASE,
    )
    return text


def _pick_axes(frame: DataFrame) -> tuple[str | None, str | None]:
    label_col = None
    value_col = None
    for name in frame.columns:
        dtype = frame.column(name).dtype
        if dtype == "object" and label_col is None:
            label_col = name
        elif dtype in ("float64", "int64") and value_col is None:
            if not name.endswith("_at"):
                value_col = name
    return label_col, value_col
