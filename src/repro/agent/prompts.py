"""Prompt templates and the prompt builder (paper §5.2, Table 2).

A :class:`PromptConfig` switches each contextual component on or off;
:class:`PromptBuilder` assembles the final prompt from the agent's live
context structures.  The section bodies below are the evaluation's
*actual measured artifacts*: Figure 8's token counts come from counting
tokens of exactly these strings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.llm import prompt_format as pf

__all__ = ["PromptConfig", "PromptBuilder", "FEW_SHOT_EXAMPLES", "cached_builder"]


@dataclass(frozen=True)
class PromptConfig:
    """Which contextual components the prompt includes (Table 2 axes)."""

    role: bool = False
    job: bool = False
    df_description: bool = False
    output_format: bool = False
    few_shot: bool = False
    schema: bool = False
    schema_descriptions: bool = True
    values: bool = False
    guidelines: bool = False

    @property
    def label(self) -> str:
        if not any(
            (self.role, self.job, self.df_description, self.output_format)
        ):
            return "Nothing"
        parts = ["Baseline"]
        if self.few_shot:
            parts.append("FS")
        if self.schema:
            parts.append("Schema")
        if self.values:
            parts.append("Values")
        if self.guidelines:
            parts.append("Guidelines")
        if len(parts) == 5:
            return "Full"
        return "+".join(parts)

    def with_baseline(self) -> "PromptConfig":
        return replace(
            self, role=True, job=True, df_description=True, output_format=True
        )


_ROLE = (
    "You are a workflow provenance specialist embedded in a scientific "
    "computing facility. You understand W3C PROV concepts (entities, "
    "activities, agents), distributed workflow execution across the "
    "Edge-Cloud-HPC continuum, and runtime monitoring of tasks."
)

_JOB = (
    "Your job is to interpret the user's natural language question about "
    "live workflow provenance and translate it into a single structured "
    "query over the in-memory task buffer. Do not answer from memory; "
    "always produce a query that retrieves the evidence."
)

_DF_DESCRIPTION = (
    "The buffer is a DataFrame named df. Each row represents one task "
    "execution. Columns are flattened with dot notation: common fields "
    "(task_id, campaign_id, workflow_id, activity_id, status, hostname, "
    "started_at, ended_at, duration, type) plus application dataflow "
    "fields under used.* and generated.* and telemetry under "
    "telemetry_at_start.* / telemetry_at_end.*."
)

_OUTPUT_FORMAT = (
    "Return exactly one line of executable pandas-style code operating on "
    "df: filters df[...], sort_values, head/tail, groupby(...)[...].agg(), "
    "column aggregations like df['col'].mean(), or len(df[...]) for "
    "counts. No explanations, no markdown fences, no SQL, no prose."
)

FEW_SHOT_EXAMPLES: tuple[tuple[str, str], ...] = (
    (
        "How many tasks have finished?",
        "len(df[df['status'] == 'FINISHED'])",
    ),
    (
        "Show the five most recent tasks.",
        "df.sort_values('started_at', ascending=False).head(5)",
    ),
    (
        "Which tasks ran on host node-0?",
        "df[df['hostname'] == 'node-0'][['task_id', 'activity_id']]",
    ),
    (
        "Average duration per activity.",
        "df.groupby('activity_id')['duration'].mean()",
    ),
)


class PromptBuilder:
    """Assembles prompts from the agent's context per a PromptConfig."""

    def __init__(self, config: PromptConfig):
        self.config = config

    def build(
        self,
        user_query: str,
        *,
        schema_payload: Mapping[str, Any] | None = None,
        values_payload: Mapping[str, Any] | None = None,
        guidelines_text: str = "",
    ) -> str:
        cfg = self.config
        parts: list[str] = []
        if cfg.role:
            parts.append(pf.render_section(pf.SECTION_ROLE, _ROLE))
        if cfg.job:
            parts.append(pf.render_section(pf.SECTION_JOB, _JOB))
        if cfg.df_description:
            parts.append(
                pf.render_section(pf.SECTION_DF_DESCRIPTION, _DF_DESCRIPTION)
            )
        if cfg.output_format:
            parts.append(pf.render_section(pf.SECTION_OUTPUT_FORMAT, _OUTPUT_FORMAT))
        if cfg.few_shot:
            examples = "\n".join(
                f"NL: {nl}\nCode: {code}" for nl, code in FEW_SHOT_EXAMPLES
            )
            parts.append(pf.render_section(pf.SECTION_EXAMPLES, examples))
        if cfg.schema and schema_payload is not None:
            parts.append(pf.render_json_section(pf.SECTION_SCHEMA, schema_payload))
        if cfg.values and values_payload is not None:
            parts.append(pf.render_json_section(pf.SECTION_VALUES, values_payload))
        if cfg.guidelines and guidelines_text:
            parts.append(pf.render_section(pf.SECTION_GUIDELINES, guidelines_text))
        parts.append(pf.render_section(pf.SECTION_USER_QUERY, user_query))
        return "\n".join(parts)


#: process-wide builder cache; PromptBuilder is stateless (it holds only
#: its frozen config), so instances are safely shared across sessions,
#: tools, and threads.  Writes race benignly: two threads may build the
#: same config once each, one wins the slot.
_BUILDER_CACHE: dict[PromptConfig, PromptBuilder] = {}


def cached_builder(config: PromptConfig) -> PromptBuilder:
    """A shared :class:`PromptBuilder` for ``config`` (per-turn hot path)."""
    builder = _BUILDER_CACHE.get(config)
    if builder is None:
        builder = _BUILDER_CACHE[config] = PromptBuilder(config)
    return builder
