"""Provenance of the agent itself (paper §4.2).

"All tool invocations are recorded as workflow tasks, which are
subclasses of W3C prov:Activity, with arguments stored as prov:used and
results as prov:generated.  Each LLM interaction is also stored
following the same schema ... linked with the LLM interaction via
prov:wasInformedBy.  The agent itself is registered as a prov:Agent."
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.capture.context import CaptureContext
from repro.provenance.messages import TaskProvenanceMessage, TaskStatus

__all__ = ["AgentProvenanceRecorder"]


class AgentProvenanceRecorder:
    """Emits tool_execution / llm_interaction records to the hub."""

    def __init__(
        self,
        context: CaptureContext,
        *,
        agent_id: str = "provenance-agent",
        workflow_id: str = "agent-session",
    ):
        self.context = context
        self.agent_id = agent_id
        self.workflow_id = workflow_id

    def record_tool_execution(
        self,
        tool_name: str,
        arguments: Mapping[str, Any],
        result_summary: Mapping[str, Any],
        *,
        started_at: float,
        ended_at: float,
        failed: bool = False,
    ) -> str:
        task_id = self.context.next_task_id(started_at)
        msg = TaskProvenanceMessage(
            task_id=task_id,
            campaign_id=self.context.campaign_id,
            workflow_id=self.workflow_id,
            activity_id=tool_name,
            used=dict(arguments),
            generated=dict(result_summary),
            started_at=started_at,
            ended_at=ended_at,
            hostname=self.context.hostname,
            status=TaskStatus.FAILED.value if failed else TaskStatus.FINISHED.value,
            type="tool_execution",
            agent_id=self.agent_id,
        )
        self.context.emit(msg)
        return task_id

    def record_llm_interaction(
        self,
        model: str,
        prompt: str,
        response_text: str,
        *,
        started_at: float,
        ended_at: float,
        informed_by: str | None = None,
        prompt_tokens: int = 0,
        output_tokens: int = 0,
    ) -> str:
        task_id = self.context.next_task_id(started_at)
        msg = TaskProvenanceMessage(
            task_id=task_id,
            campaign_id=self.context.campaign_id,
            workflow_id=self.workflow_id,
            activity_id="llm_interaction",
            used={
                "model": model,
                "prompt": prompt[:2000],
                "prompt_tokens": prompt_tokens,
            },
            generated={
                "response": response_text[:2000],
                "output_tokens": output_tokens,
            },
            started_at=started_at,
            ended_at=ended_at,
            hostname=self.context.hostname,
            status=TaskStatus.FINISHED.value,
            type="llm_interaction",
            agent_id=self.agent_id,
            informed_by=informed_by,
        )
        self.context.emit(msg)
        return task_id
