"""Provenance capture: instrumentation hooks and observability adapters.

The reference architecture captures provenance two ways (paper §2.3):

1. **Direct code instrumentation** — the :func:`flow_task` decorator and
   :class:`WorkflowRun` context manager stamp task messages around
   ordinary Python functions ("lightweight hooks such as Python
   decorators"), buffering them and streaming in bulk to the hub.
2. **Non-intrusive observability adapters** — pollers that watch external
   state (filesystem, SQLite, an MLflow-style run log, workflow-engine
   events) and emit the same message schema without touching application
   code.
"""

from repro.capture.context import CaptureContext, WorkflowRun
from repro.capture.instrumentation import flow_task
from repro.capture.adapters.base import ObservabilityAdapter
from repro.capture.adapters.filesystem import FileSystemAdapter
from repro.capture.adapters.sqlite import SQLiteAdapter
from repro.capture.adapters.mlflow_like import MLFlowLikeAdapter

__all__ = [
    "CaptureContext",
    "WorkflowRun",
    "flow_task",
    "ObservabilityAdapter",
    "FileSystemAdapter",
    "SQLiteAdapter",
    "MLFlowLikeAdapter",
]
