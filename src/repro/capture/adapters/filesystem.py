"""Filesystem observability adapter.

Watches a directory tree; each new or modified file since the previous
poll becomes a provenance message describing the file (path, size,
mtime).  This is the "File System" adapter from the paper's Figure 2 —
useful for workflows that communicate through files (DFT input/output
decks, checkpoints) without any instrumentation.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.capture.adapters.base import ObservabilityAdapter
from repro.capture.context import CaptureContext

__all__ = ["FileSystemAdapter"]


class FileSystemAdapter(ObservabilityAdapter):
    activity_prefix = "fs"

    def __init__(
        self,
        root: str | Path,
        context: CaptureContext | None = None,
        *,
        suffixes: tuple[str, ...] | None = None,
    ):
        super().__init__(context)
        self.root = Path(root)
        self.suffixes = suffixes
        self._seen: dict[str, float] = {}

    def source_description(self) -> str:
        return f"filesystem:{self.root}"

    def observe(self) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        if not self.root.exists():
            return out
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fname in sorted(filenames):
                path = Path(dirpath) / fname
                if self.suffixes and path.suffix not in self.suffixes:
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                key = str(path)
                mtime = stat.st_mtime
                previous = self._seen.get(key)
                if previous is not None and previous >= mtime:
                    continue
                self._seen[key] = mtime
                out.append(
                    {
                        "_activity": "file_created" if previous is None else "file_modified",
                        "path": key,
                        "size_bytes": stat.st_size,
                        "mtime": mtime,
                    }
                )
        return out
