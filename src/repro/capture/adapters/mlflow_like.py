"""MLflow-style run-log observability adapter.

Many ML workflows append JSON lines describing runs (params + metrics)
to a tracking log.  This adapter tails such a file — each new line
becomes a provenance message with params in ``used``-style fields and
metrics in ``generated``.  It stands in for the paper's MLflow adapter
with the same observe-don't-instrument contract.

Expected line shape::

    {"run_id": "...", "params": {"lr": 0.01}, "metrics": {"loss": 0.3}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.capture.adapters.base import ObservabilityAdapter
from repro.capture.context import CaptureContext

__all__ = ["MLFlowLikeAdapter"]


class MLFlowLikeAdapter(ObservabilityAdapter):
    activity_prefix = "mlflow"

    def __init__(self, log_path: str | Path, context: CaptureContext | None = None):
        super().__init__(context)
        self.log_path = Path(log_path)
        self._offset = 0
        self.malformed_lines = 0

    def source_description(self) -> str:
        return f"mlflow-log:{self.log_path}"

    def observe(self) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        if not self.log_path.exists():
            return out
        with open(self.log_path, encoding="utf-8") as f:
            f.seek(self._offset)
            for line in f:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    doc = json.loads(stripped)
                except json.JSONDecodeError:
                    self.malformed_lines += 1
                    continue
                obs: dict[str, Any] = {"_activity": "run_logged"}
                obs["run_id"] = doc.get("run_id", "unknown")
                for key, value in (doc.get("params") or {}).items():
                    obs[f"param.{key}"] = value
                for key, value in (doc.get("metrics") or {}).items():
                    obs[f"metric.{key}"] = value
                out.append(obs)
            self._offset = f.tell()
        return out
