"""SQLite observability adapter.

Watches one table of a SQLite database; each row with a rowid beyond the
last-seen watermark becomes a provenance message whose ``generated``
carries the row's columns.  Mirrors the paper's SQLite adapter: many
simulation codes log results into a local SQLite file that can be
observed without touching the application.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Any

from repro.capture.adapters.base import ObservabilityAdapter
from repro.capture.context import CaptureContext

__all__ = ["SQLiteAdapter"]


class SQLiteAdapter(ObservabilityAdapter):
    activity_prefix = "sqlite"

    def __init__(
        self,
        db_path: str | Path,
        table: str,
        context: CaptureContext | None = None,
    ):
        super().__init__(context)
        self.db_path = str(db_path)
        if not table.replace("_", "").isalnum():
            raise ValueError(f"suspicious table name {table!r}")
        self.table = table
        self._last_rowid = 0

    def source_description(self) -> str:
        return f"sqlite:{self.db_path}:{self.table}"

    def observe(self) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        if not Path(self.db_path).exists():
            return out
        con = sqlite3.connect(self.db_path)
        try:
            con.row_factory = sqlite3.Row
            cursor = con.execute(
                f"SELECT rowid AS _rowid_, * FROM {self.table} "  # noqa: S608 - name validated
                "WHERE rowid > ? ORDER BY rowid",
                (self._last_rowid,),
            )
            for row in cursor:
                doc = dict(row)
                rowid = doc.pop("_rowid_")
                self._last_rowid = max(self._last_rowid, rowid)
                doc["_activity"] = "row_inserted"
                doc["rowid"] = rowid
                out.append(doc)
        except sqlite3.Error:
            return []
        finally:
            con.close()
        return out
