"""Non-intrusive observability adapters (paper §2.3, Fig. 2 left column)."""

from repro.capture.adapters.base import ObservabilityAdapter
from repro.capture.adapters.filesystem import FileSystemAdapter
from repro.capture.adapters.sqlite import SQLiteAdapter
from repro.capture.adapters.mlflow_like import MLFlowLikeAdapter

__all__ = [
    "ObservabilityAdapter",
    "FileSystemAdapter",
    "SQLiteAdapter",
    "MLFlowLikeAdapter",
]
