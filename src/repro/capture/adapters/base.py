"""Base class for observability adapters.

Adapters passively monitor an external data source — no application code
changes — and translate observed changes into the common task-provenance
message schema.  They are *poll-based*: each :meth:`poll` emits messages
for everything new since the previous poll, which keeps them trivially
usable from tests, cron-style loops, or a monitor thread.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.capture.context import CaptureContext
from repro.provenance.messages import TaskProvenanceMessage, TaskStatus

__all__ = ["ObservabilityAdapter"]


class ObservabilityAdapter(ABC):
    """Polls an external source and emits task provenance messages."""

    #: activity prefix for emitted messages, e.g. ``"fs_observe"``.
    activity_prefix: str = "observe"

    def __init__(self, context: CaptureContext | None = None):
        self.context = context if context is not None else CaptureContext.default()
        self.emitted_count = 0

    @abstractmethod
    def observe(self) -> list[dict[str, Any]]:
        """Return raw observations new since the last call.

        Each observation is a dict with at least ``_activity`` (suffix for
        the activity id) plus arbitrary dataflow fields for ``generated``.
        The underscore prefix keeps the meta key from colliding with real
        observed fields (e.g. a SQLite column called ``name``).
        """

    def poll(self) -> int:
        """Observe, convert, emit; returns number of messages published."""
        observations = self.observe()
        for obs in observations:
            name = str(obs.pop("_activity", "event"))
            now = self.context.clock.now()
            msg = TaskProvenanceMessage(
                task_id=self.context.next_task_id(now),
                campaign_id=self.context.campaign_id,
                workflow_id=self.context.workflow_id or "observed",  # provlint: disable=falsy-or-default - empty workflow id means unset
                activity_id=f"{self.activity_prefix}_{name}",
                used={"source": self.source_description()},
                generated={k: v for k, v in obs.items()},
                started_at=now,
                ended_at=now,
                hostname=self.context.hostname,
                status=TaskStatus.FINISHED.value,
            )
            self.context.emit(msg)
            self.emitted_count += 1
        if observations:
            self.context.flush()
        return len(observations)

    @abstractmethod
    def source_description(self) -> str:
        """Human-readable description of the monitored source."""
