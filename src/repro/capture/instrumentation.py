"""``@flow_task``: decorator-based task provenance capture.

The decorator mirrors Flowcept's instrumentation hook: it binds call
arguments to the function signature into ``used``, executes the
function, maps its return value into ``generated``, stamps timestamps,
hostname and telemetry snapshots, and buffers the message.  Failures are
captured (status=FAILED, error recorded) and re-raised — capture must
never swallow application errors.

Conventions for ``generated``:

* a ``dict`` return is stored as-is (each key becomes a dataflow field);
* any other return value is stored under ``{"result": value}``;
* ``None`` produces an empty ``generated``.

Reserved keyword arguments (consumed, not forwarded):

* ``_upstream`` — list of upstream task ids (control-flow edge, recorded
  into ``used._upstream``);
* ``_hostname`` — the simulated/actual node executing the task;
* ``_ctx`` — an explicit :class:`CaptureContext`.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, TypeVar

from repro.capture.context import CaptureContext
from repro.provenance.messages import TaskProvenanceMessage, TaskStatus

__all__ = ["flow_task"]

F = TypeVar("F", bound=Callable[..., Any])

#: Values too large to inline into provenance get summarised.
_MAX_REPR = 512


def _capture_value(value: Any) -> Any:
    """Keep JSON-friendly values; summarise anything bulky or exotic."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _capture_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        if len(value) <= 16:
            return [_capture_value(v) for v in value]
        return {
            "_summary": f"sequence of {len(value)} items",
            "_head": [_capture_value(v) for v in value[:4]],
        }
    text = repr(value)
    return text if len(text) <= _MAX_REPR else text[:_MAX_REPR] + "…"


def flow_task(
    activity_id: str | None = None,
    *,
    context: CaptureContext | None = None,
) -> Callable[[F], F]:
    """Decorate a function so each call emits a task provenance message.

    >>> @flow_task()
    ... def square(x):
    ...     return {"y": x * x}
    """

    def decorate(fn: F) -> F:
        act_id = activity_id or fn.__name__
        try:
            signature = inspect.signature(fn)
        except (TypeError, ValueError):
            signature = None

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            ctx = kwargs.pop("_ctx", None) or context or CaptureContext.default()
            upstream = kwargs.pop("_upstream", None)
            hostname = kwargs.pop("_hostname", None) or ctx.hostname

            used: dict[str, Any] = {}
            if signature is not None:
                try:
                    bound = signature.bind(*args, **kwargs)
                    bound.apply_defaults()
                    used = {
                        k: _capture_value(v) for k, v in bound.arguments.items()
                    }
                except TypeError:
                    used = {"_args": _capture_value(list(args)), **{
                        k: _capture_value(v) for k, v in kwargs.items()
                    }}
            if upstream:
                used["_upstream"] = list(upstream)

            sampler = ctx.sampler(hostname)
            started_at = ctx.clock.now()
            task_id = ctx.next_task_id(started_at)
            tele_start = sampler.sample().to_dict()

            msg = TaskProvenanceMessage(
                task_id=task_id,
                campaign_id=ctx.campaign_id,
                workflow_id=ctx.workflow_id or "adhoc",  # provlint: disable=falsy-or-default - empty workflow id means unset
                activity_id=act_id,
                used=used,
                started_at=started_at,
                hostname=hostname,
                telemetry_at_start=tele_start,
                status=TaskStatus.RUNNING.value,
            )
            try:
                result = fn(*args, **kwargs)
            except Exception as exc:
                msg.ended_at = ctx.clock.now()
                msg.status = TaskStatus.FAILED.value
                msg.generated = {"error": _capture_value(repr(exc))}
                msg.telemetry_at_end = sampler.sample().to_dict()
                ctx.emit(msg)
                raise
            msg.ended_at = ctx.clock.now()
            msg.status = TaskStatus.FINISHED.value
            if isinstance(result, dict):
                msg.generated = {k: _capture_value(v) for k, v in result.items()}
            elif result is not None:
                msg.generated = {"result": _capture_value(result)}
            msg.telemetry_at_end = sampler.sample().to_dict()
            ctx.emit(msg)
            return result

        wrapper.activity_id = act_id  # type: ignore[attr-defined]
        wrapper.__wrapped__ = fn
        return wrapper  # type: ignore[return-value]

    return decorate
