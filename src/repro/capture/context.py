"""Capture context: wiring between instrumented code and the streaming hub.

A :class:`CaptureContext` owns the broker connection, the message buffer
(with its flush strategy), the clock, telemetry samplers per host, and
the identifiers of the current campaign/workflow.  It is passed to the
``@flow_task`` decorator explicitly or installed as the process-wide
default — instrumented science code then needs zero plumbing.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.messaging.broker import Broker, InProcessBroker
from repro.messaging.buffer import FlushStrategy, MessageBuffer, SizeFlush
from repro.provenance.keeper import TASK_TOPIC
from repro.provenance.messages import TaskProvenanceMessage, TaskStatus
from repro.telemetry import TelemetrySampler
from repro.utils.clock import Clock, VirtualClock
from repro.utils.ids import new_campaign_id, new_task_id, new_workflow_id

__all__ = ["CaptureContext", "WorkflowRun"]

_default_context: "CaptureContext | None" = None
_default_lock = threading.Lock()


class CaptureContext:
    """Shared capture state for one application process."""

    def __init__(
        self,
        broker: Broker | None = None,
        *,
        clock: Clock | None = None,
        campaign_id: str | None = None,
        hostname: str = "localhost",
        flush_strategy: FlushStrategy | None = None,
        seed: Any = None,
    ):
        # explicit None checks: an injected clock at time zero or an
        # empty broker can compare falsy and must not be replaced
        self.clock = clock if clock is not None else VirtualClock()
        self.broker = (
            broker if broker is not None else InProcessBroker(clock=self.clock)
        )
        self.campaign_id = campaign_id or (
            new_campaign_id(seed) if seed is not None else new_campaign_id()
        )
        self.hostname = hostname
        self.buffer = MessageBuffer(
            self.broker,
            TASK_TOPIC,
            strategy=(
                flush_strategy if flush_strategy is not None else SizeFlush(16)
            ),
            clock=self.clock,
        )
        self._samplers: dict[str, TelemetrySampler] = {}
        # per-thread workflow scope: concurrent WorkflowRuns on different
        # threads must not see each other's ids (tasks are attributed to
        # the workflow entered on *their* thread)
        self._workflow_scopes = threading.local()
        self._task_counter = itertools.count()
        self._lock = threading.RLock()

    # -- default-context management ------------------------------------------------
    def install_as_default(self) -> "CaptureContext":
        global _default_context
        with _default_lock:
            _default_context = self
        return self

    @staticmethod
    def default() -> "CaptureContext":
        global _default_context
        with _default_lock:
            if _default_context is None:
                _default_context = CaptureContext()
            return _default_context

    @staticmethod
    def reset_default() -> None:
        global _default_context
        with _default_lock:
            _default_context = None

    # -- workflow scope -----------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._workflow_scopes, "stack", None)
        if stack is None:
            stack = self._workflow_scopes.stack = []
        return stack

    @property
    def workflow_id(self) -> str | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def push_workflow(self, workflow_id: str) -> None:
        self._stack().append(workflow_id)

    def pop_workflow(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    # -- task emission ----------------------------------------------------------------
    def sampler(self, hostname: str | None = None) -> TelemetrySampler:
        host = hostname or self.hostname
        with self._lock:
            if host not in self._samplers:
                self._samplers[host] = TelemetrySampler(host)
            return self._samplers[host]

    def next_task_id(self, started_at: float) -> str:
        return new_task_id(started_at, next(self._task_counter))

    def emit(self, message: TaskProvenanceMessage) -> None:
        """Validate and buffer one message (asynchronous bulk streaming)."""
        message.validate()
        self.buffer.append(message.to_dict())

    def flush(self) -> None:
        self.buffer.flush()


class WorkflowRun:
    """Context manager bounding one workflow execution.

    Publishes a ``type="workflow"`` record at entry (RUNNING) and exit
    (FINISHED/FAILED) and scopes every ``@flow_task`` call inside to the
    new ``workflow_id``.
    """

    def __init__(
        self,
        name: str,
        context: CaptureContext | None = None,
        *,
        workflow_id: str | None = None,
    ):
        self.name = name
        self.context = context if context is not None else CaptureContext.default()
        self.workflow_id = (
            workflow_id if workflow_id is not None else new_workflow_id()
        )
        self.started_at: float | None = None

    def __enter__(self) -> "WorkflowRun":
        self.started_at = self.context.clock.now()
        self.context.push_workflow(self.workflow_id)
        self._emit(TaskStatus.RUNNING.value, ended_at=None)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        status = TaskStatus.FAILED.value if exc_type else TaskStatus.FINISHED.value
        self._emit(status, ended_at=self.context.clock.now())
        self.context.pop_workflow()
        self.context.flush()

    def _emit(self, status: str, ended_at: float | None) -> None:
        msg = TaskProvenanceMessage(
            task_id=f"{self.workflow_id}/run",
            campaign_id=self.context.campaign_id,
            workflow_id=self.workflow_id,
            activity_id=self.name,
            started_at=self.started_at,
            ended_at=ended_at,
            hostname=self.context.hostname,
            status=status,
            type="workflow",
        )
        self.context.emit(msg)
