"""Live chemistry-workflow interaction (paper §5.3).

Reproduces the demonstration: run the BDE workflow for ethanol on the
simulated Frontier hosts, then issue the paper's ten natural-language
queries (Q1-Q10) to the provenance agent and grade each answer against
ground truth from the :class:`BDEReport`.

Paper outcomes to reproduce (GPT-4):

=====  ===============================================  ===========
Query  What it asks                                      Outcome
=====  ===============================================  ===========
Q1     highest dissociation free energy bond             correct
Q2     DFT functional used                               correct
Q3     lowest bond enthalpy                              correct*
Q4     atom count of "this molecule"                     correct*
Q5     atom count of the parent                          incorrect (81, not 9)
Q6     multiplicity/charge of parent                     correct (+enrichment)
Q7     bar chart of BDE per bond label                   correct
Q8     bar chart with averaged C-H values                incorrect
Q9     average BDE for labels containing 'C-H'           correct
Q10    multiplicity/charge of any fragment               correct
=====  ===============================================  ===========

(* = correct with caveats: Q3 has a unit/bond-id omission; Q4 is
ambiguous across parent+fragments.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agent.agent import ProvenanceAgent
from repro.api.client import GatewayClient
from repro.api.schemas import ChatReply
from repro.capture.context import CaptureContext
from repro.llm.generation import QueryTraits
from repro.llm.intents import register_intent
from repro.llm.service import LLMServer
from repro.query import parse_query
from repro.workflows.chemistry import BDEReport, run_bde_workflow

__all__ = ["DemoQuery", "DemoOutcome", "CHEMISTRY_QUERIES", "run_live_demo"]


@dataclass(frozen=True)
class DemoQuery:
    qid: str
    nl: str
    gold_code: str
    paper_outcome: str  # "correct" | "correct_with_caveat" | "incorrect"
    traits: QueryTraits = QueryTraits()
    notes: str = ""


CHEMISTRY_QUERIES: tuple[DemoQuery, ...] = (
    DemoQuery(
        "Q1",
        "Which bond has the highest dissociation free energy?",
        "df.sort_values('generated.bd_free_energy', ascending=False).head(1)"
        "[['generated.bond_id', 'generated.bd_free_energy']]",
        "correct",
        notes="agent inferred kcal/mol and picked the right energy column",
    ),
    DemoQuery(
        "Q2",
        "What functional was used for the calculations?",
        "df['used.functional'].unique()",
        "correct",
        notes="summary perfect; paper notes the tabular view repeats values",
    ),
    DemoQuery(
        "Q3",
        "What is the lowest energy bond enthalpy?",
        "df['generated.bd_enthalpy'].min()",
        "correct_with_caveat",
        notes="value right; paper notes a unit slip (kJ/mol) and missing bond id",
    ),
    DemoQuery(
        "Q4",
        "What is the number of atoms in this molecule?",
        "df[df['activity_id'] == 'run_dft'][['task_id', 'used.n_atoms']]",
        "correct_with_caveat",
        notes="all molecules listed; association with labels is ambiguous",
    ),
    DemoQuery(
        "Q5",
        "What is the number of atoms in the parent molecule?",
        "df[(df['activity_id'] == 'run_dft') & "
        "(df['used.molecule_name'] == 'parent')][['used.n_atoms']]",
        "incorrect",
        traits=QueryTraits(traps=("entity_scoping",), workload="OLTP"),
        notes="paper: agent summed all molecules -> 81 instead of 9",
    ),
    DemoQuery(
        "Q6",
        "What are the multiplicity and charge of the parent?",
        "df[(df['activity_id'] == 'run_dft') & "
        "(df['used.molecule_name'] == 'parent')]"
        "[['used.multiplicity', 'used.charge']]",
        "correct",
        notes="enriched with 'singlet state' / 'neutral charge' phrasing",
    ),
    DemoQuery(
        "Q7",
        "Plot a bar graph displaying the bond dissociation enthalpy for "
        "each bond label.",
        "df[df['activity_id'] == 'run_individual_bde']"
        "[['generated.bond_id', 'generated.bd_enthalpy']]",
        "correct",
    ),
    DemoQuery(
        "Q8",
        "For this molecule, please plot a bar graph displaying the bond "
        "dissociation enthalpy with averaged C-H values.",
        # the *intended* chart needs string-prefix grouping, which the
        # query language (like the paper's plot logic) cannot express;
        # the agent falls back to the per-label chart -> incorrect
        "df[df['activity_id'] == 'run_individual_bde']"
        "[['generated.bond_id', 'generated.bd_enthalpy']]",
        "incorrect",
        traits=QueryTraits(traps=("plot_grouping",), workload="OLAP"),
        notes="paper: failed to average C-H bars before plotting",
    ),
    DemoQuery(
        "Q9",
        "What is the average bond dissociation enthalpy for the bond "
        "labels that contain 'C-H'?",
        "df[df['generated.bond_id'].str.contains('C-H')]"
        "['generated.bd_enthalpy'].mean()",
        "correct",
    ),
    DemoQuery(
        "Q10",
        "What is the multiplicity and charge of any fragment?",
        "df[(df['activity_id'] == 'run_dft') & "
        "(df['used.multiplicity'] == 2)]"
        "[['used.multiplicity', 'used.charge']].head(1)",
        "correct",
        notes="unlike Q6, the summary omits the key chemical terms",
    ),
)


@dataclass
class DemoOutcome:
    qid: str
    nl: str
    reply: ChatReply
    correct: bool
    paper_outcome: str
    matches_paper: bool
    detail: str = ""


@dataclass
class DemoReport:
    report: BDEReport
    outcomes: list[DemoOutcome] = field(default_factory=list)

    def accuracy(self) -> float:
        """Fraction fully or partially correct (paper: 'over 80%')."""
        return sum(1 for o in self.outcomes if o.correct) / len(self.outcomes)

    def paper_agreement(self) -> float:
        return sum(1 for o in self.outcomes if o.matches_paper) / len(self.outcomes)


def register_demo_intents() -> None:
    for dq in CHEMISTRY_QUERIES:
        register_intent(dq.nl, parse_query(dq.gold_code), traits=dq.traits)


def run_live_demo(
    *,
    model: str = "gpt-4",
    smiles: str = "CCO",
    n_conformers: int = 2,
) -> DemoReport:
    """Run the workflow + agent conversation; grade every answer.

    The conversation rides the versioned gateway API — the same
    schema-typed surface remote users hit over HTTP — through an
    in-process :class:`~repro.api.client.GatewayClient`, so graded
    replies are exactly what the paper's GUI would receive on the wire.
    """
    register_demo_intents()
    ctx = CaptureContext(hostname="frontier00084.frontier.olcf.ornl.gov")
    agent = ProvenanceAgent(ctx, llm=LLMServer(), model=model)
    client = GatewayClient(agent.gateway)
    bde = run_bde_workflow(smiles, ctx, n_conformers=n_conformers)
    demo = DemoReport(report=bde)

    for dq in CHEMISTRY_QUERIES:
        reply = client.chat("default", dq.nl)
        correct, detail = _grade(dq, reply, bde)
        expected_correct = dq.paper_outcome != "incorrect"
        demo.outcomes.append(
            DemoOutcome(
                qid=dq.qid,
                nl=dq.nl,
                reply=reply,
                correct=correct,
                paper_outcome=dq.paper_outcome,
                matches_paper=(correct == expected_correct),
                detail=detail,
            )
        )
    return demo


# ---------------------------------------------------------------------------
# grading against BDE ground truth
# ---------------------------------------------------------------------------


def _grade(dq: DemoQuery, reply: ChatReply, bde: BDEReport) -> tuple[bool, str]:
    if not reply.ok:
        return False, f"agent failed: {reply.error}"
    text = reply.text
    table = reply.table

    if dq.qid == "Q1":
        want = bde.highest_free_energy_bond().bond_id
        return _mentions(reply, want), f"expected bond {want}"
    if dq.qid == "Q2":
        return _mentions(reply, bde.functional), f"expected {bde.functional}"
    if dq.qid == "Q3":
        want = min(b.bd_enthalpy for b in bde.bonds)
        return _mentions_number(reply, want, tol=0.5), f"expected {want:.2f}"
    if dq.qid == "Q4":
        ok = _mentions_number(reply, bde.parent_n_atoms, tol=0.0) or (
            table is not None and len(table.rows) >= 1
        )
        return ok, "expected atom counts listed"
    if dq.qid == "Q5":
        want = bde.parent_n_atoms  # 9 — the famous failure returns 81
        return _mentions_number(reply, want, tol=0.0), f"expected {want}"
    if dq.qid == "Q6":
        return (
            _mentions_number(reply, bde.parent_multiplicity, tol=0.0)
            and _mentions_number(reply, bde.parent_charge, tol=0.0)
        ), "expected multiplicity 1, charge 0"
    if dq.qid == "Q7":
        ok = reply.chart is not None and all(
            b.bond_id in reply.chart for b in bde.bonds
        )
        return ok, "expected a bar per bond label"
    if dq.qid == "Q8":
        # correct only if C-H bars were averaged into one bar
        if reply.chart is None:
            return False, "no chart"
        ch_bars = reply.chart.count("C-H")
        return ch_bars == 1, f"expected a single averaged C-H bar, saw {ch_bars}"
    if dq.qid == "Q9":
        want = bde.mean_bde_for("C-H")
        return _mentions_number(reply, want, tol=0.5), f"expected {want:.2f}"
    if dq.qid == "Q10":
        frag_mult = bde.bonds[0].fragment_multiplicity
        return _mentions_number(reply, frag_mult, tol=0.0), "expected multiplicity 2"
    return False, "unknown query"


def _mentions(reply: ChatReply, needle: str) -> bool:
    if needle in reply.text:
        return True
    if reply.table is not None:
        for row in reply.table.to_dicts():
            if any(needle == str(v) or needle in str(v) for v in row.values()):
                return True
    return False


def _mentions_number(reply: ChatReply, value: float, tol: float) -> bool:
    import re

    candidates: list[float] = []
    for source in [reply.text] + (
        [" ".join(str(v) for r in reply.table.to_dicts() for v in r.values())]
        if reply.table is not None
        else []
    ):
        for m in re.finditer(r"-?\d+(?:\.\d+)?", source):
            try:
                candidates.append(float(m.group()))
            except ValueError:
                continue
    return any(abs(c - value) <= tol + 1e-9 for c in candidates)
