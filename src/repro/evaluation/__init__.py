"""Evaluation methodology (paper §3 + §5.2).

The six stages of Figure 3 map onto these modules:

1. **Query Set** — :mod:`query_set` builds the 20-query golden dataset
   with class labels from the Figure-1 taxonomy (:mod:`taxonomy`) and
   human-curated gold DataFrame queries (Table 1 distribution);
2. **Prompt engineering** + **RAG strategies** — the Table-2 cumulative
   configurations in :mod:`configs` (assembled by the agent's prompt
   builder);
3. **LLM output** — queries as code, produced by :mod:`repro.llm`;
4. **Evaluation** — :mod:`judges` scores generated queries against gold
   with rule-based scoring and two simulated LLM-as-a-judge models
   (GPT, Claude) with distinct leniency/self-preference profiles;
5. **Experimental runs** — :mod:`runner` sweeps models x configs x
   queries x repetitions (median of 3, temperature 0);
6. **Refine** — :mod:`reporting` aggregates results into every figure
   and table of §5.2.
"""

from repro.evaluation.taxonomy import DataType, QueryClass, TraversalOp, Workload
from repro.evaluation.query_set import EvalQuery, build_query_set
from repro.evaluation.lineage_queries import (
    LineageEvalQuery,
    build_lineage_query_set,
    evaluate_lineage_tool,
)
from repro.evaluation.sql_variants import (
    SqlEvalQuery,
    build_sql_query_set,
    sql_variant,
)
from repro.evaluation.configs import CONFIGURATIONS, config_for
from repro.evaluation.judges import JudgeProfile, LLMJudge, RuleBasedScorer
from repro.evaluation.runner import EvaluationRecord, ExperimentRunner
from repro.evaluation.reporting import (
    fig6_judge_comparison,
    fig7_per_class,
    fig8_context_vs_tokens,
    fig9_datatype_impact,
    response_time_table,
    table1_distribution,
)

__all__ = [
    "DataType",
    "Workload",
    "QueryClass",
    "EvalQuery",
    "build_query_set",
    "TraversalOp",
    "LineageEvalQuery",
    "build_lineage_query_set",
    "evaluate_lineage_tool",
    "SqlEvalQuery",
    "build_sql_query_set",
    "sql_variant",
    "CONFIGURATIONS",
    "config_for",
    "LLMJudge",
    "JudgeProfile",
    "RuleBasedScorer",
    "ExperimentRunner",
    "EvaluationRecord",
    "table1_distribution",
    "fig6_judge_comparison",
    "fig7_per_class",
    "fig8_context_vs_tokens",
    "fig9_datatype_impact",
    "response_time_table",
]
