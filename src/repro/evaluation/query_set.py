"""The golden query set (paper §5.2, Table 1).

Twenty manually curated natural-language queries over the synthetic
workflow, each with: a class label (data types x workload, the Figure-1
leaves), a human-written gold DataFrame query, and *trap tags*
describing the ambiguities a model must navigate (which context
component resolves each trap is what the evaluation measures).

Distribution (Table 1) — data-type totals exceed 20 because queries can
span two types:

    =============  ====  ====  =====
    Data type      OLAP  OLTP  Total
    =============  ====  ====  =====
    Control Flow     4     3      7
    Dataflow         3     4      7
    Scheduling       3     5      8
    Telemetry        4     5      9
    =============  ====  ====  =====

Queries reference concrete task/workflow ids, so the set is built
against a live context (ids are sampled from the campaign's frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.dataframe import DataFrame
from repro.errors import QuerySetError
from repro.evaluation.taxonomy import DataType, QueryClass, Workload
from repro.llm.generation import QueryTraits
from repro.llm.intents import register_intent
from repro.query import parse_query
from repro.query.ast import Pipeline

__all__ = ["EvalQuery", "build_query_set", "QUERY_SET_SIZE"]

QUERY_SET_SIZE = 20


@dataclass(frozen=True)
class EvalQuery:
    """One golden query."""

    qid: str
    nl: str
    gold: Pipeline
    query_class: QueryClass
    traits: QueryTraits
    notes: str = ""

    @property
    def workload(self) -> Workload:
        return self.query_class.workload

    @property
    def data_types(self) -> tuple[DataType, ...]:
        return self.query_class.data_types


def _q(
    qid: str,
    nl: str,
    gold_code: str,
    data_types: tuple[DataType, ...],
    workload: Workload,
    traps: tuple[str, ...] = (),
    notes: str = "",
) -> EvalQuery:
    gold = parse_query(gold_code)
    query = EvalQuery(
        qid=qid,
        nl=nl,
        gold=gold,
        query_class=QueryClass(data_types=data_types, workload=workload),
        traits=QueryTraits(traps=traps, workload=workload.value),
        notes=notes,
    )
    register_intent(nl, gold)
    return query


def build_query_set(frame: DataFrame) -> list[EvalQuery]:
    """Instantiate the golden set against a live campaign frame.

    ``frame`` must contain at least one completed synthetic-workflow run
    (the ids referenced by targeted queries are sampled from it).
    """
    if frame.empty or "task_id" not in frame:
        raise QuerySetError("query set needs a non-empty task frame")
    tasks = frame.sort_values("started_at")
    t_ref = tasks.row(0)["task_id"]
    workflows = tasks.column("workflow_id").unique()
    w_ref = workflows[-1] if workflows else ""
    if not t_ref or not w_ref:
        raise QuerySetError("frame lacks task/workflow identifiers")

    cf, df_, sc, te = (
        DataType.CONTROL_FLOW,
        DataType.DATAFLOW,
        DataType.SCHEDULING,
        DataType.TELEMETRY,
    )
    oltp, olap = Workload.OLTP, Workload.OLAP

    queries = [
        # ------------------------------ OLTP ------------------------------
        _q(
            "q01",
            f"Which host ran task '{t_ref}'?",
            f"df[df['task_id'] == '{t_ref}'][['hostname']]",
            (sc,),
            oltp,
        ),
        _q(
            "q02",
            f"What was the CPU percent at the end of task '{t_ref}' and on "
            "which host did it run?",
            f"df[df['task_id'] == '{t_ref}']"
            "[['telemetry_at_end.cpu.percent', 'hostname']]",
            (te, sc),
            oltp,
        ),
        _q(
            "q03",
            "What is the status and host of the most recent task?",
            "df.sort_values('started_at', ascending=False).head(1)"
            "[['task_id', 'status', 'hostname']]",
            (cf, sc),
            oltp,
            traps=("recent_vs_first", "sort_field"),
        ),
        _q(
            "q04",
            f"What value did the power activity generate in workflow '{w_ref}'?",
            f"df[(df['workflow_id'] == '{w_ref}') & (df['activity_id'] == 'power')]"
            "[['generated.value']]",
            (df_,),
            oltp,
        ),
        _q(
            "q05",
            "Which tasks are still running, and on which hosts?",
            "df[df['status'] == 'RUNNING'][['task_id', 'hostname']]",
            (cf, sc),
            oltp,
            traps=("value_case",),
        ),
        _q(
            "q06",
            f"What input x did the first scale_and_shift task of workflow "
            f"'{w_ref}' use?",
            f"df[(df['workflow_id'] == '{w_ref}') & "
            "(df['activity_id'] == 'scale_and_shift')]"
            ".sort_values('started_at', ascending=True).head(1)[['used.x']]",
            (df_, cf),
            oltp,
            traps=("recent_vs_first",),
        ),
        _q(
            "q07",
            f"Show the output value and the memory percent at the end for "
            f"the log_and_shift task in workflow '{w_ref}'.",
            f"df[(df['workflow_id'] == '{w_ref}') & "
            "(df['activity_id'] == 'log_and_shift')]"
            "[['generated.value', 'telemetry_at_end.mem.percent']]",
            (df_, te),
            oltp,
        ),
        _q(
            "q08",
            "How many finished tasks ended with CPU above 80 percent?",
            "len(df[(df['status'] == 'FINISHED') & "
            "(df['telemetry_at_end.cpu.percent'] > 80)])",
            (te,),
            oltp,
            traps=("value_case", "value_scale"),
        ),
        _q(
            "q09",
            f"What value did average_results produce in workflow '{w_ref}' "
            "and what was its CPU at the end?",
            f"df[(df['workflow_id'] == '{w_ref}') & "
            "(df['activity_id'] == 'average_results')]"
            "[['generated.value', 'telemetry_at_end.cpu.percent']]",
            (df_, te),
            oltp,
            traps=("activity_value",),
        ),
        _q(
            "q10",
            "How many tasks ran on host node-2 with end CPU above 50?",
            "len(df[(df['hostname'] == 'node-2') & "
            "(df['telemetry_at_end.cpu.percent'] > 50)])",
            (sc, te),
            oltp,
            traps=("value_scale",),
        ),
        # ------------------------------ OLAP ------------------------------
        _q(
            "q11",
            "How many tasks were executed per activity?",
            "df.groupby('activity_id')['task_id'].count()",
            (cf,),
            olap,
            traps=("group_logic",),
        ),
        _q(
            "q12",
            "What is the average duration per activity?",
            "df.groupby('activity_id')['duration'].mean()",
            (cf, te),
            olap,
            traps=("group_logic", "derived_duration"),
        ),
        _q(
            "q13",
            "What is the average output value of the average_results "
            "activity across all workflows?",
            "df[df['activity_id'] == 'average_results']"
            "['generated.value'].mean()",
            (df_,),
            olap,
            traps=("agg_choice", "activity_value"),
        ),
        _q(
            "q14",
            "How many workflows produced an average_results value above 100?",
            "len(df[(df['activity_id'] == 'average_results') & "
            "(df['generated.value'] > 100)])",
            (df_, cf),
            olap,
            traps=("scope_filter", "graph_reasoning"),
            notes="workflow-level reasoning through task records",
        ),
        _q(
            "q15",
            "How many tasks ran on each host?",
            "df.groupby('hostname')['task_id'].count()",
            (sc,),
            olap,
            traps=("group_logic",),
        ),
        _q(
            "q16",
            "Which host had the highest average CPU at the end?",
            "df.groupby('hostname')['telemetry_at_end.cpu.percent'].mean()"
            ".sort_values('telemetry_at_end.cpu.percent', ascending=False)"
            ".head(1)",
            (sc, te),
            olap,
            traps=("group_logic", "sort_direction"),
        ),
        _q(
            "q17",
            "Show the top 3 longest-running tasks.",
            "df.sort_values('duration', ascending=False).head(3)"
            "[['task_id', 'activity_id', 'duration']]",
            (te,),
            olap,
            traps=("derived_duration", "sort_direction", "limit"),
        ),
        _q(
            "q18",
            "Give the breakdown of task counts by status.",
            "df.groupby('status')['task_id'].count()",
            (cf,),
            olap,
            traps=("group_logic",),
        ),
        _q(
            "q19",
            "What is the maximum value generated by the power activity "
            "across all workflows?",
            "df[df['activity_id'] == 'power']['generated.value'].max()",
            (df_,),
            olap,
            traps=("agg_choice",),
        ),
        _q(
            "q20",
            "What is the total busy time in seconds per host, sorted from "
            "busiest to least busy?",
            "df.groupby('hostname')['duration'].sum()"
            ".sort_values('duration', ascending=False)",
            (sc, te),
            olap,
            traps=("group_logic", "derived_duration", "sort_direction"),
        ),
    ]
    _validate(queries)
    return queries


def _validate(queries: list[EvalQuery]) -> None:
    """Assert the Table-1 distribution holds (guards against edits)."""
    if len(queries) != QUERY_SET_SIZE:
        raise QuerySetError(f"expected {QUERY_SET_SIZE} queries, got {len(queries)}")
    expected = {
        (DataType.CONTROL_FLOW, Workload.OLAP): 4,
        (DataType.CONTROL_FLOW, Workload.OLTP): 3,
        (DataType.DATAFLOW, Workload.OLAP): 3,
        (DataType.DATAFLOW, Workload.OLTP): 4,
        (DataType.SCHEDULING, Workload.OLAP): 3,
        (DataType.SCHEDULING, Workload.OLTP): 5,
        (DataType.TELEMETRY, Workload.OLAP): 4,
        (DataType.TELEMETRY, Workload.OLTP): 5,
    }
    counts: dict[tuple[DataType, Workload], int] = {k: 0 for k in expected}
    for query in queries:
        for dt in query.data_types:
            counts[(dt, query.workload)] += 1
    if counts != expected:
        raise QuerySetError(f"Table 1 distribution violated: {counts}")
    workloads = [q.workload for q in queries]
    if workloads.count(Workload.OLAP) != 10 or workloads.count(Workload.OLTP) != 10:
        raise QuerySetError("queries must split 10 OLAP / 10 OLTP")
