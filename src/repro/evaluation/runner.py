"""Experiment runner: models x configurations x queries x repetitions.

Each run builds the *actual prompt* for (configuration, query) from the
live context manager, sends it through the simulated LLM service, and
scores the generated code with both judges (plus the rule-based scorer
for reference).  Prompts are cached per (configuration, query) — they
are model-independent — and every repetition re-queries the model with
a different rep coordinate (temperature 0, slight variation), median-of-3
being taken downstream.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.agent.context_manager import ContextManager
from repro.agent.prompts import PromptBuilder
from repro.evaluation.configs import CONFIGURATIONS
from repro.evaluation.judges import JUDGES, LLMJudge, RuleBasedScorer
from repro.evaluation.query_set import EvalQuery
from repro.llm.profiles import MODEL_ORDER
from repro.llm.service import ChatRequest, LLMServer

__all__ = ["EvaluationRecord", "ExperimentRunner", "median_by"]


@dataclass(frozen=True)
class EvaluationRecord:
    """One (model, config, query, rep) outcome with all scores."""

    model: str
    config: str
    qid: str
    rep: int
    generated_code: str
    prompt_tokens: int
    output_tokens: int
    latency_s: float
    truncated: bool
    scores: dict[str, float]  # judge name -> score
    rule_score: float
    failures: tuple[str, ...]


@dataclass
class ExperimentRunner:
    """Drives the full §5.2 evaluation against a live context."""

    context_manager: ContextManager
    queries: Sequence[EvalQuery]
    llm: LLMServer = field(default_factory=LLMServer)
    judges: dict[str, LLMJudge] = field(
        default_factory=lambda: {name: LLMJudge(p) for name, p in JUDGES.items()}
    )
    n_reps: int = 3

    def __post_init__(self) -> None:
        self._prompt_cache: dict[tuple[str, str], str] = {}
        self._rule = RuleBasedScorer()

    # -- prompt assembly ---------------------------------------------------------
    def prompt_for(self, config_label: str, query: EvalQuery) -> str:
        key = (config_label, query.qid)
        if key not in self._prompt_cache:
            cm = self.context_manager
            builder = PromptBuilder(CONFIGURATIONS[config_label])
            self._prompt_cache[key] = builder.build(
                query.nl,
                schema_payload=cm.schema_payload(),
                values_payload=cm.values_payload(),
                guidelines_text=cm.guidelines_text(),
            )
        return self._prompt_cache[key]

    # -- execution --------------------------------------------------------------------
    def run(
        self,
        *,
        models: Iterable[str] = MODEL_ORDER,
        configs: Iterable[str] = ("Full",),
        queries: Iterable[EvalQuery] | None = None,
        n_reps: int | None = None,
    ) -> list[EvaluationRecord]:
        queries = list(queries if queries is not None else self.queries)
        reps = n_reps if n_reps is not None else self.n_reps
        frame = self.context_manager.to_frame()
        known = self.context_manager.known_fields()
        records: list[EvaluationRecord] = []
        for config_label in configs:
            for query in queries:
                prompt = self.prompt_for(config_label, query)
                for model in models:
                    for rep in range(reps):
                        response = self.llm.complete(
                            ChatRequest(
                                model=model,
                                prompt=prompt,
                                rep=rep,
                                query_id=f"{query.qid}:{config_label}",
                                traits=query.traits,
                            )
                        )
                        scores = {
                            name: judge.score(
                                query.gold,
                                response.text,
                                frame=frame,
                                known_fields=known,
                                model_under_test=model,
                                query_id=query.qid,
                                rep=rep,
                            )
                            for name, judge in self.judges.items()
                        }
                        records.append(
                            EvaluationRecord(
                                model=model,
                                config=config_label,
                                qid=query.qid,
                                rep=rep,
                                generated_code=response.text,
                                prompt_tokens=response.prompt_tokens,
                                output_tokens=response.output_tokens,
                                latency_s=response.latency_s,
                                truncated=response.truncated,
                                scores=scores,
                                rule_score=self._rule.score(
                                    query.gold,
                                    response.text,
                                    frame=frame,
                                    known_fields=known,
                                ),
                                failures=tuple(response.failures),
                            )
                        )
        return records


def median_by(
    records: Sequence[EvaluationRecord],
    *,
    judge: str,
    keys: tuple[str, ...] = ("model", "config", "qid"),
) -> dict[tuple, float]:
    """Median score over reps, grouped by the given record attributes."""
    buckets: dict[tuple, list[float]] = {}
    for r in records:
        key = tuple(getattr(r, k) for k in keys)
        buckets.setdefault(key, []).append(r.scores[judge])
    return {k: statistics.median(v) for k, v in buckets.items()}
