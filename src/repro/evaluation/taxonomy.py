"""Query-characteristics taxonomy (paper Figure 1).

The taxonomy's dimensions classify provenance queries; its leaves
(data type x workload, in this work's evaluation) are the class labels
of the golden query set.  The other dimensions — mode, consumer, scope,
provenance type — are carried for completeness and used by the agent's
routing (online vs offline) and by the graph tool (targeted vs
traversal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DataType(str, enum.Enum):
    CONTROL_FLOW = "Control Flow"
    DATAFLOW = "Dataflow"
    SCHEDULING = "Scheduling"
    TELEMETRY = "Telemetry"


class Workload(str, enum.Enum):
    OLAP = "OLAP"
    OLTP = "OLTP"


class QueryScope(str, enum.Enum):
    TARGETED = "Targeted"
    GRAPH_TRAVERSAL = "Graph Traversal"


class Mode(str, enum.Enum):
    ONLINE = "Online"
    OFFLINE = "Offline"


class ProvenanceType(str, enum.Enum):
    RETROSPECTIVE = "Retrospective"
    PROSPECTIVE = "Prospective"


class Consumer(str, enum.Enum):
    HUMAN = "Human"
    AI = "AI"


class TraversalOp(str, enum.Enum):
    """Graph-traversal operations (scope = Graph Traversal leaves).

    The paper's taxonomy names graph traversal as a query scope but the
    golden set only exercises targeted queries; the lineage subsystem's
    evaluation set (:mod:`repro.evaluation.lineage_queries`) classifies
    its questions by the traversal they require.
    """

    UPSTREAM = "Upstream"
    DOWNSTREAM = "Downstream"
    CAUSAL_CHAIN = "Causal Chain"
    ROOTS = "Roots"
    LEAVES = "Leaves"
    CRITICAL_PATH = "Critical Path"
    IMPACT_SIZE = "Impact Size"


@dataclass(frozen=True)
class QueryClass:
    """A taxonomy leaf: the label attached to each golden query."""

    data_types: tuple[DataType, ...]
    workload: Workload
    scope: QueryScope = QueryScope.TARGETED
    mode: Mode = Mode.ONLINE
    provenance_type: ProvenanceType = ProvenanceType.RETROSPECTIVE
    consumer: Consumer = Consumer.HUMAN

    def __post_init__(self) -> None:
        if not self.data_types:
            raise ValueError("a query class needs at least one data type")

    def label(self) -> str:
        types = "+".join(t.value for t in self.data_types)
        return f"{self.workload.value}/{types}"


ALL_DATA_TYPES = tuple(DataType)
ALL_WORKLOADS = tuple(Workload)
