"""Aggregation into the paper's tables and figures (§5.2).

Each function takes raw :class:`EvaluationRecord` lists and produces the
data behind one artefact:

* :func:`table1_distribution` — Table 1;
* :func:`fig6_judge_comparison` — Figure 6 (avg of per-query medians
  per model, per judge, Full configuration);
* :func:`fig7_per_class` — Figure 7 (per data type x workload x model
  x judge median-score distributions);
* :func:`fig8_context_vs_tokens` — Figure 8 (score vs prompt+output
  tokens across the six configurations, GPT model / GPT judge);
* :func:`fig9_datatype_impact` — Figure 9 (configuration impact per
  data type, GPT/GPT);
* :func:`response_time_table` — §5.2 "Response times" (mean of
  per-query median latencies per model and workload).
"""

from __future__ import annotations

import statistics
from typing import Sequence

from repro.evaluation.query_set import EvalQuery
from repro.evaluation.runner import EvaluationRecord, median_by
from repro.evaluation.taxonomy import DataType, Workload

__all__ = [
    "table1_distribution",
    "fig6_judge_comparison",
    "fig7_per_class",
    "fig8_context_vs_tokens",
    "fig9_datatype_impact",
    "response_time_table",
]


def table1_distribution(queries: Sequence[EvalQuery]) -> list[dict]:
    """Rows of Table 1: data type x workload counts."""
    rows = []
    for dt in DataType:
        olap = sum(
            1 for q in queries if dt in q.data_types and q.workload == Workload.OLAP
        )
        oltp = sum(
            1 for q in queries if dt in q.data_types and q.workload == Workload.OLTP
        )
        rows.append(
            {
                "data_type": dt.value,
                "olap": olap,
                "oltp": oltp,
                "total": olap + oltp,
            }
        )
    return rows


def fig6_judge_comparison(
    records: Sequence[EvaluationRecord], judges: Sequence[str]
) -> dict[str, dict[str, float]]:
    """{model: {judge: average of per-query median scores}} (Full config)."""
    out: dict[str, dict[str, float]] = {}
    models = sorted({r.model for r in records})
    for model in models:
        out[model] = {}
        for judge in judges:
            medians = median_by(
                [r for r in records if r.model == model], judge=judge
            )
            if medians:
                out[model][judge] = statistics.mean(medians.values())
    return out


def fig7_per_class(
    records: Sequence[EvaluationRecord],
    queries: Sequence[EvalQuery],
    judges: Sequence[str],
) -> dict[tuple[str, str, str, str], list[float]]:
    """{(judge, workload, model, data type): [per-query median scores]}."""
    q_by_id = {q.qid: q for q in queries}
    out: dict[tuple[str, str, str, str], list[float]] = {}
    for judge in judges:
        medians = median_by(records, judge=judge, keys=("model", "qid"))
        for (model, qid), score in medians.items():
            query = q_by_id[qid]
            for dt in query.data_types:
                key = (judge, query.workload.value, model, dt.value)
                out.setdefault(key, []).append(score)
    return out


def fig8_context_vs_tokens(
    records: Sequence[EvaluationRecord],
    *,
    judge: str,
    configs: Sequence[str],
) -> list[dict]:
    """Per-configuration rows: mean/stdev of per-query median scores and
    mean total token usage (input + output)."""
    rows = []
    for config in configs:
        subset = [r for r in records if r.config == config]
        if not subset:
            continue
        medians = median_by(subset, judge=judge, keys=("qid",))
        tokens = [r.prompt_tokens + r.output_tokens for r in subset]
        scores = list(medians.values())
        rows.append(
            {
                "config": config,
                "mean_score": statistics.mean(scores),
                "stdev_score": statistics.stdev(scores) if len(scores) > 1 else 0.0,
                "mean_tokens": statistics.mean(tokens),
            }
        )
    return rows


def fig9_datatype_impact(
    records: Sequence[EvaluationRecord],
    queries: Sequence[EvalQuery],
    *,
    judge: str,
    configs: Sequence[str],
) -> dict[str, dict[str, float]]:
    """{config: {data type: mean of per-query median scores}}."""
    q_by_id = {q.qid: q for q in queries}
    out: dict[str, dict[str, float]] = {}
    for config in configs:
        subset = [r for r in records if r.config == config]
        medians = median_by(subset, judge=judge, keys=("qid",))
        per_type: dict[str, list[float]] = {}
        for qid, score in ((k[0], v) for k, v in medians.items()):
            for dt in q_by_id[qid].data_types:
                per_type.setdefault(dt.value, []).append(score)
        out[config] = {
            dt: statistics.mean(scores) for dt, scores in per_type.items()
        }
    return out


def response_time_table(
    records: Sequence[EvaluationRecord],
    queries: Sequence[EvalQuery],
) -> list[dict]:
    """Mean of per-query median latencies per model and workload."""
    q_by_id = {q.qid: q for q in queries}
    rows = []
    models = sorted({r.model for r in records})
    for model in models:
        for workload in (Workload.OLTP, Workload.OLAP):
            lat: dict[str, list[float]] = {}
            for r in records:
                if r.model != model:
                    continue
                if q_by_id[r.qid].workload != workload:
                    continue
                lat.setdefault(r.qid, []).append(r.latency_s)
            if not lat:
                continue
            per_query_medians = [statistics.median(v) for v in lat.values()]
            rows.append(
                {
                    "model": model,
                    "workload": workload.value,
                    "mean_latency_s": statistics.mean(per_query_medians),
                    "max_latency_s": max(per_query_medians),
                }
            )
    return rows
