"""Prompt + RAG configurations (paper Table 2).

Cumulative context configurations, from zero-shot ("Nothing") to Full.
The evaluation sweeps these; the production agent runs Full.
"""

from __future__ import annotations

from repro.agent.prompts import PromptConfig

__all__ = ["CONFIGURATIONS", "config_for", "FIGURE8_ORDER"]

CONFIGURATIONS: dict[str, PromptConfig] = {
    "Nothing": PromptConfig(),
    "Baseline": PromptConfig().with_baseline(),
    "Baseline+FS": PromptConfig(few_shot=True).with_baseline(),
    "Baseline+FS+Schema": PromptConfig(few_shot=True, schema=True).with_baseline(),
    "Baseline+FS+Schema+Values": PromptConfig(
        few_shot=True, schema=True, values=True
    ).with_baseline(),
    "Baseline+FS+Guidelines": PromptConfig(
        few_shot=True, guidelines=True
    ).with_baseline(),
    "Full": PromptConfig(
        few_shot=True, schema=True, values=True, guidelines=True
    ).with_baseline(),
}

#: the six configurations Figure 8/9 sweep (zero-shot excluded: the paper
#: drops it "due to consistently poor scores across all models")
FIGURE8_ORDER = (
    "Baseline",
    "Baseline+FS",
    "Baseline+FS+Schema",
    "Baseline+FS+Schema+Values",
    "Baseline+FS+Guidelines",
    "Full",
)


def config_for(label: str) -> PromptConfig:
    try:
        return CONFIGURATIONS[label]
    except KeyError:
        raise KeyError(
            f"unknown configuration {label!r}; known: {', '.join(CONFIGURATIONS)}"
        ) from None
