"""SQL variants of the golden query set.

Every gold query in :mod:`repro.evaluation.query_set` is a pipeline-IR
value, and the SQL front end's renderer is a faithful inverse of its
compiler — so the golden set can be re-expressed as SQL *derived from
the gold IR itself*: ``compile_sql(render_sql(gold)) == gold`` by
construction, and any drift between the dialects shows up as a variant
that no longer compiles back to its gold pipeline.

The variants are graded against the same oracles as the NL set: the
compiled pipeline must equal the gold IR exactly, and executing both
against a campaign frame must produce equivalent results
(``tests/evaluation/test_sql_variants.py`` asserts both).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataframe import DataFrame
from repro.evaluation.query_set import EvalQuery, build_query_set
from repro.sql import render_sql

__all__ = ["SqlEvalQuery", "sql_variant", "build_sql_query_set"]


@dataclass(frozen=True)
class SqlEvalQuery:
    """One golden query re-expressed as SQL.

    ``base`` carries the original :class:`EvalQuery` — its gold IR is
    the oracle the SQL text must compile back to, and its class labels
    keep the Table-1 taxonomy attached to the SQL form.
    """

    qid: str
    sql: str
    base: EvalQuery


def sql_variant(query: EvalQuery) -> str:
    """The SQL spelling of one gold query, derived from its gold IR."""
    return render_sql(query.gold)


def build_sql_query_set(frame: DataFrame) -> list[SqlEvalQuery]:
    """SQL variants of all 20 golden queries against a live frame."""
    return [
        SqlEvalQuery(qid=q.qid, sql=sql_variant(q), base=q)
        for q in build_query_set(frame)
    ]
