"""Scoring: rule-based and simulated LLM-as-a-judge (paper §3, §5.2).

Both strategies share the analytical core in
:mod:`repro.query.compare`; they differ in how they map a structural/
functional diff to a 0-1 score:

* :class:`RuleBasedScorer` returns the rubric score directly —
  transparent and interpretable, exactly the trade-off the paper
  describes;
* :class:`LLMJudge` layers a judge personality on top: a leniency curve
  (GPT scores consistently higher than Claude, most visibly mid-range),
  a small self-preference ("each judge appears to slightly favor its
  own model" — despite the double-blind setup, judges recognise their
  own stylistic fingerprints), an extra hallucination penalty for the
  stricter judge, and seeded per-rep noise (temperature-0 LLMs still
  vary slightly).

The judge "has access to the same context as the provenance agent"
(paper §5.2): it executes both queries against the live frame and
rewards functional equivalence over syntactic similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataframe import DataFrame
from repro.errors import QuerySyntaxError
from repro.query import parse_query
from repro.query.compare import compare_queries
from repro.query.ast import Pipeline
from repro.utils.seeding import derive_rng

__all__ = ["JudgeProfile", "LLMJudge", "RuleBasedScorer", "JUDGES"]


@dataclass(frozen=True)
class JudgeProfile:
    """Scoring personality of one judge LLM."""

    name: str
    display_name: str
    #: own-model identifier for self-preference
    own_model: str
    #: mid-range leniency: score += kindness * score * (1 - score) * 2
    kindness: float
    #: flat shift applied to every verdict (strict judges are negative)
    strictness_offset: float
    #: additive bonus when judging the judge's own model
    self_preference: float
    #: extra penalty per hallucinated field (strict judges punish these)
    hallucination_penalty: float
    #: per-draw score noise (sigma)
    noise_sigma: float
    #: score assigned to unparseable output (syntax failures)
    syntax_floor: float


GPT_JUDGE = JudgeProfile(
    name="gpt-judge",
    display_name="GPT Score",
    own_model="gpt-4",
    kindness=0.20,
    strictness_offset=0.0,
    self_preference=0.010,
    hallucination_penalty=0.0,
    noise_sigma=0.015,
    syntax_floor=0.05,
)

CLAUDE_JUDGE = JudgeProfile(
    name="claude-judge",
    display_name="Claude Score",
    own_model="claude-opus-4",
    kindness=-0.08,
    strictness_offset=-0.055,
    self_preference=0.030,
    hallucination_penalty=0.05,
    noise_sigma=0.015,
    syntax_floor=0.02,
)

JUDGES: dict[str, JudgeProfile] = {
    "gpt-judge": GPT_JUDGE,
    "claude-judge": CLAUDE_JUDGE,
}


class RuleBasedScorer:
    """Transparent rubric scoring (no judge personality)."""

    def score(
        self,
        gold: Pipeline,
        generated_code: str,
        *,
        frame: DataFrame | None = None,
        known_fields: set[str] | None = None,
    ) -> float:
        try:
            generated = parse_query(generated_code)
        except QuerySyntaxError:
            return 0.0
        diff = compare_queries(
            gold, generated, frame=frame, known_fields=known_fields
        )
        return diff.rubric_score()


class LLMJudge:
    """A simulated judge LLM scoring generated queries against gold."""

    def __init__(self, profile: JudgeProfile):
        self.profile = profile

    @property
    def name(self) -> str:
        return self.profile.name

    def score(
        self,
        gold: Pipeline,
        generated_code: str,
        *,
        frame: DataFrame | None = None,
        known_fields: set[str] | None = None,
        model_under_test: str = "",
        query_id: str = "",
        rep: int = 0,
    ) -> float:
        p = self.profile
        rng = derive_rng("judge", p.name, model_under_test, query_id, rep)
        noise = float(rng.normal(0.0, p.noise_sigma))

        try:
            generated = parse_query(generated_code)
        except QuerySyntaxError:
            return _clip(p.syntax_floor + abs(noise))

        diff = compare_queries(
            gold, generated, frame=frame, known_fields=known_fields
        )
        score = diff.rubric_score()
        # leniency curve peaks mid-range: lenient judges upgrade partial
        # credit; strict ones downgrade it. Perfect/terrible scores move less.
        score += p.kindness * score * (1.0 - score) * 2.0
        score += p.strictness_offset
        if diff.hallucinated_fields:
            score -= p.hallucination_penalty * len(diff.hallucinated_fields)
        if model_under_test == p.own_model:
            score += p.self_preference
        return _clip(score + noise)


def _clip(x: float) -> float:
    return max(0.0, min(1.0, x))
