"""Lineage evaluation queries (graph-traversal scope).

The golden 20 (:mod:`repro.evaluation.query_set`) cover the *targeted*
scope of the Figure-1 taxonomy; this set covers the **Graph Traversal**
scope the paper names as an open challenge for the interactive path
(§5.4).  Each query is a natural-language lineage question with a
machine-checkable gold answer computed from a scan-built
:class:`ProvenanceGraph` oracle over the same documents — so the set
simultaneously evaluates the agent's ``graph_query`` tool *and* serves
as a live parity check between the incremental index and the
rebuild-from-scratch graph.

Like the golden set, questions reference concrete ids, so the set is
instantiated against a live campaign (via a :class:`QueryAPI`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import networkx as nx

from repro.agent.tools.base import Tool
from repro.dataframe import DataFrame
from repro.errors import QuerySetError
from repro.evaluation.taxonomy import (
    Consumer,
    DataType,
    QueryClass,
    QueryScope,
    TraversalOp,
    Workload,
)
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.query_api import QueryAPI

__all__ = [
    "LineageEvalQuery",
    "build_lineage_query_set",
    "evaluate_lineage_tool",
]


@dataclass(frozen=True)
class LineageEvalQuery:
    """One traversal question with its oracle answer."""

    qid: str
    nl: str
    op: TraversalOp
    query_class: QueryClass
    #: gold answer: set[str] for reachability ops, int for sizes/lengths
    expected: Any
    #: projects a graph_query ToolResult onto the ``expected`` shape
    project: Callable[[Any], Any]


def _ids(data: Any) -> set[str]:
    if isinstance(data, DataFrame) and not data.empty:
        return set(data.column("task_id").to_list())
    return set()


def _count(data: Any) -> int:
    if isinstance(data, int):
        return data
    if isinstance(data, DataFrame):
        return len(data)
    return -1


def build_lineage_query_set(query_api: QueryAPI) -> list[LineageEvalQuery]:
    """Instantiate traversal questions against a completed campaign."""
    oracle = ProvenanceGraph.from_database(query_api.database, {"type": "task"})
    if len(oracle) == 0:
        raise QuerySetError("lineage query set needs stored task provenance")
    # pick a task with real ancestry and one with real impact
    sink = max(oracle.graph.nodes, key=lambda n: len(oracle.upstream(n)))
    source = max(oracle.graph.nodes, key=lambda n: len(oracle.downstream(n)))
    if not oracle.upstream(sink) or not oracle.downstream(source):
        raise QuerySetError("campaign has no task dependencies to traverse")
    chain = oracle.causal_chain(source, sink)
    workflow = oracle.graph.nodes[sink].get("workflow_id")
    wf_nodes = [
        n
        for n, meta in oracle.graph.nodes(data=True)
        if meta.get("workflow_id") == workflow
    ]
    wf_critical = _critical_path_length(oracle, wf_nodes)

    cf, df_ = DataType.CONTROL_FLOW, DataType.DATAFLOW

    def qc(
        *data_types: DataType, workload: Workload = Workload.OLTP
    ) -> QueryClass:
        return QueryClass(
            data_types=data_types or (cf,),  # provlint: disable=falsy-or-default - varargs: the empty tuple IS "not given"
            workload=workload,
            scope=QueryScope.GRAPH_TRAVERSAL,
            consumer=Consumer.AI,
        )

    return [
        LineageEvalQuery(
            "lq01",
            f"What is the full upstream lineage of task '{sink}'?",
            TraversalOp.UPSTREAM,
            qc(cf, df_),
            oracle.upstream(sink),
            _ids,
        ),
        LineageEvalQuery(
            "lq02",
            f"Which tasks are downstream of '{source}'?",
            TraversalOp.DOWNSTREAM,
            qc(cf, df_),
            oracle.downstream(source),
            _ids,
        ),
        LineageEvalQuery(
            "lq03",
            f"Is there a causal chain from '{source}' to '{sink}'?",
            TraversalOp.CAUSAL_CHAIN,
            qc(cf),
            len(chain) if chain else 0,
            _count,
        ),
        LineageEvalQuery(
            "lq04",
            "Which tasks are root tasks with no upstream dependencies?",
            TraversalOp.ROOTS,
            qc(cf, workload=Workload.OLAP),
            set(oracle.roots()),
            _ids,
        ),
        LineageEvalQuery(
            "lq05",
            "List the leaf tasks nothing else depends on.",
            TraversalOp.LEAVES,
            qc(cf, workload=Workload.OLAP),
            set(oracle.leaves()),
            _ids,
        ),
        LineageEvalQuery(
            "lq06",
            f"Show the critical path of workflow '{workflow}'.",
            TraversalOp.CRITICAL_PATH,
            qc(cf, workload=Workload.OLAP),
            wf_critical,
            _count,
        ),
        LineageEvalQuery(
            "lq07",
            f"How many tasks were affected downstream of '{source}'?",
            TraversalOp.IMPACT_SIZE,
            qc(cf, df_, workload=Workload.OLAP),
            len(oracle.downstream(source)),
            _count,
        ),
    ]


def _critical_path_length(oracle: ProvenanceGraph, nodes: list[str]) -> int:
    """Longest dependent chain within a node subset of the oracle graph."""
    sub = oracle.graph.subgraph(nodes)
    return len(nx.dag_longest_path(sub)) if len(sub) else 0


def evaluate_lineage_tool(
    tool: Tool, queries: list[LineageEvalQuery]
) -> dict[str, Any]:
    """Run each question through ``graph_query``; score against the oracle.

    Returns ``{"n", "correct", "accuracy", "per_query": [...]}`` — the
    same shape the reporting layer aggregates for the golden set.
    """
    per_query: list[dict[str, Any]] = []
    correct = 0
    for q in queries:
        result = tool.invoke(question=q.nl)
        got = q.project(result.data) if result.ok else None
        ok = result.ok and got == q.expected
        correct += ok
        per_query.append(
            {
                "qid": q.qid,
                "op": q.op.value,
                "class": q.query_class.label(),
                "ok": ok,
                "expected": q.expected,
                "got": got,
            }
        )
    return {
        "n": len(queries),
        "correct": correct,
        "accuracy": correct / len(queries) if queries else 0.0,
        "per_query": per_query,
    }
