"""CPU/memory snapshot sampling with a deterministic synthetic fallback.

Real mode parses ``/proc/stat`` and ``/proc/meminfo`` (Linux).  Synthetic
mode draws from a seeded random walk per hostname: utilisation meanders
inside [2, 98] with occasional bursts, which gives the anomaly detector
something worth finding without psutil.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.utils.seeding import derive_rng

__all__ = ["TelemetrySnapshot", "TelemetrySampler"]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One point-in-time reading, shaped like Listing 1's telemetry blocks."""

    cpu_percent: float
    mem_percent: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "cpu": {"percent": round(self.cpu_percent, 1)},
            "mem": {"percent": round(self.mem_percent, 1)},
        }


class TelemetrySampler:
    """Samples telemetry; synthetic by default for reproducibility.

    Parameters
    ----------
    hostname:
        Seeds the synthetic stream (different nodes -> different loads).
    synthetic:
        When False, attempt ``/proc`` reads and fall back to synthetic
        values if they are unavailable.
    """

    def __init__(self, hostname: str = "localhost", *, synthetic: bool = True):
        self.hostname = hostname
        self.synthetic = synthetic
        self._rng = derive_rng("telemetry", hostname)
        self._cpu = float(self._rng.uniform(10, 40))
        self._mem = float(self._rng.uniform(20, 50))
        self._tick = 0

    def sample(self) -> TelemetrySnapshot:
        if not self.synthetic:
            real = self._read_proc()
            if real is not None:
                return real
        return self._synthetic_sample()

    # -- synthetic mode ----------------------------------------------------------
    def _synthetic_sample(self) -> TelemetrySnapshot:
        self._tick += 1
        # bounded random walk with occasional bursts
        self._cpu += float(self._rng.normal(0.0, 6.0))
        self._mem += float(self._rng.normal(0.0, 2.0))
        if self._rng.random() < 0.04:  # burst: a heavy task landed on the node
            self._cpu += float(self._rng.uniform(25, 50))
        self._cpu = min(98.0, max(2.0, self._cpu))
        self._mem = min(95.0, max(5.0, self._mem))
        return TelemetrySnapshot(self._cpu, self._mem)

    # -- /proc mode ------------------------------------------------------------------
    @staticmethod
    def _read_proc() -> TelemetrySnapshot | None:
        try:
            with open("/proc/stat") as f:
                fields = f.readline().split()[1:8]
            nums = [int(x) for x in fields]
            idle = nums[3] + nums[4]
            total = sum(nums)
            cpu = 100.0 * (1.0 - idle / total) if total else 0.0
            meminfo: dict[str, int] = {}
            with open("/proc/meminfo") as f:
                for line in f:
                    parts = line.split(":")
                    if len(parts) == 2:
                        meminfo[parts[0]] = int(parts[1].strip().split()[0])
            total_kb = meminfo.get("MemTotal", 0)
            avail_kb = meminfo.get("MemAvailable", total_kb)
            mem = 100.0 * (1.0 - avail_kb / total_kb) if total_kb else 0.0
            return TelemetrySnapshot(cpu, mem)
        except (OSError, ValueError, IndexError, ZeroDivisionError):
            return None

    @staticmethod
    def proc_available() -> bool:
        return os.path.exists("/proc/stat") and os.path.exists("/proc/meminfo")
