"""Telemetry sampling for task start/end snapshots.

Task provenance messages carry ``telemetry_at_start`` /
``telemetry_at_end`` blocks (paper Listing 1: CPU percentages).  The
sampler reads ``/proc`` when available and otherwise synthesises
plausible, seeded values so telemetry-dependent query classes remain
exercisable on any machine.
"""

from repro.telemetry.sampler import TelemetrySampler, TelemetrySnapshot

__all__ = ["TelemetrySampler", "TelemetrySnapshot"]
