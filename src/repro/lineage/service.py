"""Broker-fed live maintenance of a :class:`LineageIndex`.

Two wiring styles keep the index current:

* :class:`ProvenanceKeeper` accepts a ``lineage_index`` and folds every
  accepted message in during (batch) ingest — index and database then
  observe the *same* validated, normalised documents, which is what the
  parity guarantees rest on;
* :class:`LineageService` subscribes to the hub directly for
  deployments that want lineage without a keeper (e.g. a monitoring
  sidecar).  It applies the keeper's exact validation rules so both
  paths accept and reject identically, and double-feeding (keeper +
  service on one broker) is harmless because
  :meth:`LineageIndex.apply` is idempotent for unchanged documents.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.lineage.index import LineageIndex
from repro.messaging.broker import Broker, Subscription
from repro.messaging.message import Envelope
from repro.provenance.keeper import normalise_payload

__all__ = ["LineageService"]


class LineageService:
    """Subscribes to provenance topics and streams them into an index."""

    def __init__(
        self,
        broker: Broker,
        index: LineageIndex | None = None,
        *,
        pattern: str = "provenance.#",
    ):
        self.broker = broker
        # explicit None check: an empty index has len() == 0 and is falsy
        self.index = LineageIndex() if index is None else index
        self._pattern = pattern
        self._subscription: Subscription | None = None
        self._lock = threading.Lock()
        self.rejected_count = 0

    # -- lifecycle --------------------------------------------------------------
    def start(self, *, replay: bool = False) -> "LineageService":
        """Subscribe; with ``replay=True`` also catch up on retained history.

        Replay lets a late-started service (e.g. an agent attached to an
        already-running campaign) reconstruct the graph from the broker's
        log before live deliveries continue — re-delivered documents are
        idempotent, so overlap with live traffic is safe.
        """
        if self._subscription is None:
            self._subscription = self.broker.subscribe(
                self._pattern, self._on_message, batch_callback=self._on_batch
            )
            replayer = getattr(self.broker, "replay", None)
            if replay and replayer is not None:
                replayer(self._pattern, self._on_message)
        return self

    def stop(self) -> None:
        if self._subscription is not None:
            self.broker.unsubscribe(self._subscription)
            self._subscription = None

    def __enter__(self) -> "LineageService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- cold-start recovery -------------------------------------------------------
    def replay_store(self, store: Any) -> int:
        """Rebuild the index from a recovered storage backend's contents.

        The broker-log replay (``start(replay=True)``) only covers
        history the *broker* retained; after a restart on a durable
        store (:class:`repro.storage.DurableStore`), the authoritative
        history is the store itself.  Every stored document goes through
        the keeper's exact validation (:func:`normalise_payload`) so the
        index accepts precisely what ingest accepted — and application
        is idempotent, so overlap with live deliveries or a broker
        replay is harmless.  Returns the number of documents applied.
        """
        accepted: list[dict[str, Any]] = []
        rejected = 0
        for doc in store.all():
            normalised = self._normalise(doc)
            if normalised is None:
                rejected += 1
            else:
                accepted.append(normalised)
        if rejected:
            with self._lock:
                self.rejected_count += rejected
        if accepted:
            self.index.apply_many(accepted)
        return len(accepted)

    # -- ingestion ----------------------------------------------------------------
    def _normalise(self, payload: Mapping[str, Any]) -> dict[str, Any] | None:
        """Keeper-identical validation (shared helper); None for rejects."""
        msg, _reason = normalise_payload(payload)
        return None if msg is None else msg.to_dict()

    def _on_message(self, envelope: Envelope) -> None:
        doc = self._normalise(envelope.payload)
        if doc is None:
            with self._lock:
                self.rejected_count += 1
            return
        self.index.apply(doc)

    def _on_batch(self, envelopes: list[Envelope]) -> None:
        docs = []
        rejected = 0
        for env in envelopes:
            doc = self._normalise(env.payload)
            if doc is None:
                rejected += 1
            else:
                docs.append(doc)
        if rejected:
            with self._lock:
                self.rejected_count += rejected
        if docs:
            self.index.apply_many(docs)
