"""Live-maintained lineage over streaming provenance (graph traversal).

The interactive counterpart to :class:`repro.provenance.graph.ProvenanceGraph`:
the graph is maintained *incrementally* as messages arrive instead of
rebuilt from a full document scan per question.  See
``docs/architecture.md`` ("Lineage subsystem") and
``benchmarks/bench_lineage.py`` for the speedup/parity evidence.
"""

from repro.lineage.index import LineageIndex
from repro.lineage.service import LineageService

__all__ = ["LineageIndex", "LineageService"]
