"""Incrementally maintained task-lineage index.

:class:`ProvenanceGraph` answers traversal questions by scanning every
stored document and rebuilding a networkx graph per query — fine for a
post-mortem, an anti-pattern for the interactive path (§5.4): lineage
answers get slower as the store grows.  :class:`LineageIndex` maintains
the same graph *incrementally* as provenance messages stream in, so a
traversal costs O(answer), not O(store).

Edge semantics are identical to :class:`ProvenanceGraph` by
construction (the parity benchmark and hypothesis tests assert it):

* **control** edges follow ``used._upstream`` parent declarations, and
  only materialise once both endpoints have been observed (out-of-order
  arrivals park in a pending table until the parent shows up);
* **data** edges link a producer of a ``generated`` scalar to every
  consumer that ``used`` the same ``(name, value)`` pair, via the same
  :func:`repro.provenance.graph._value_key` identity (bools and trivial
  numbers never link; self-links are suppressed).

Documents arrive through the same lifecycle as the database: re-delivery
of a ``task_id`` merges exactly like
:meth:`ProvenanceDatabase.upsert` (non-``None`` fields win), the old
document's edge contributions are retracted, and the new ones applied —
so RUNNING -> FINISHED updates, repeated batches, and keeper +
standalone-service double-feeding all converge to the scan-built graph.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable, Mapping

from repro.errors import ProvenanceError
from repro.provenance.graph import UPSTREAM_FIELD, ProvenanceGraph, _value_key
from repro.storage.documents import merge_upsert_doc

__all__ = ["LineageIndex"]

_CONTROL = 0
_DATA = 1


def _merge_doc(
    old: Mapping[str, Any] | None, new: Mapping[str, Any]
) -> dict[str, Any]:
    """The database's upsert merge, with no prior document allowed."""
    if old is None:
        return dict(new)
    return merge_upsert_doc(old, new)


def _upstream_ids(doc: Mapping[str, Any]) -> tuple[str, ...]:
    upstream = (doc.get("used") or {}).get(UPSTREAM_FIELD) or []
    if isinstance(upstream, str):
        upstream = [upstream]
    # preserve declaration order, drop duplicates (one edge per parent)
    return tuple(dict.fromkeys(upstream))


def _producer_keys(doc: Mapping[str, Any]) -> frozenset:
    return frozenset(
        key
        for name, value in (doc.get("generated") or {}).items()
        if (key := _value_key(name, value)) is not None
    )


def _consumer_keys(doc: Mapping[str, Any]) -> frozenset:
    return frozenset(
        key
        for name, value in (doc.get("used") or {}).items()
        if name != UPSTREAM_FIELD
        and (key := _value_key(name, value)) is not None
    )


class LineageIndex:
    """Live adjacency store over streamed task provenance.

    All public methods are thread-safe; the broker delivers on publisher
    threads while the agent queries from its own.
    """

    def __init__(self, *, record_types: tuple[str, ...] | None = ("task",)) -> None:
        #: which record types participate in lineage.  Task records only
        #: by default: workflow/run and agent records would show up as
        #: isolated nodes and pollute roots/leaves.  ``None`` accepts
        #: everything; documents *without* a ``type`` field always pass
        #: (raw test fixtures), matching a scan over the same documents.
        self._record_types = record_types
        self._lock = threading.RLock()
        # task_id -> node metadata (insertion-ordered, like nx node order)
        self._nodes: dict[str, dict[str, Any]] = {}
        self._docs: dict[str, dict[str, Any]] = {}
        # adjacency: u -> v -> [control_count, data_count] (and mirrored)
        self._out: dict[str, dict[str, list[int]]] = {}
        self._in: dict[str, dict[str, list[int]]] = {}
        # dataflow matching tables
        self._producers: dict[Any, set[str]] = {}
        self._consumers: dict[Any, set[str]] = {}
        # per-task ledgers so re-upserts can retract precisely
        self._task_upstream: dict[str, tuple[str, ...]] = {}
        self._task_prod: dict[str, frozenset] = {}
        self._task_cons: dict[str, frozenset] = {}
        # control edges waiting for their parent: parent -> {child, ...}
        self._pending_control: dict[str, set[str]] = {}
        # workflow_id -> node count, so workflows() is O(workflows)
        # instead of an O(tasks) metadata scan per (NL-parsed) query
        self._wf_counts: dict[str, int] = {}
        self.applied_count = 0
        self.updated_count = 0

    # -- maintenance ------------------------------------------------------------
    def apply(self, doc: Mapping[str, Any]) -> bool:
        """Fold one provenance document in; True if the index changed."""
        with self._lock:
            return self._apply_locked(doc)

    def apply_many(self, docs: Iterable[Mapping[str, Any]]) -> int:
        """Fold a batch under one lock acquisition; returns change count."""
        with self._lock:
            return sum(1 for d in docs if self._apply_locked(d))

    def _apply_locked(self, doc: Mapping[str, Any]) -> bool:
        tid = doc.get("task_id")
        if not tid:
            return False
        rtype = doc.get("type")
        if (
            rtype is not None
            and self._record_types is not None
            and rtype not in self._record_types
        ):
            return False
        old = self._docs.get(tid)
        merged = _merge_doc(old, doc)
        if old is not None:
            if merged == old:
                return False  # idempotent re-delivery
            self._retract(tid)
            self.updated_count += 1
        self._docs[tid] = merged
        old_meta = self._nodes.get(tid)
        is_new = old_meta is None
        self._nodes[tid] = {
            "activity_id": merged.get("activity_id"),
            "workflow_id": merged.get("workflow_id"),
            "status": merged.get("status"),
        }
        new_wf = merged.get("workflow_id")
        old_wf = None if is_new else old_meta.get("workflow_id")
        if old_wf != new_wf:
            if old_wf:
                remaining = self._wf_counts[old_wf] - 1
                if remaining:
                    self._wf_counts[old_wf] = remaining
                else:
                    del self._wf_counts[old_wf]
            if new_wf:
                self._wf_counts[new_wf] = self._wf_counts.get(new_wf, 0) + 1
        if is_new:
            # the parent side of parked control edges just arrived
            for child in self._pending_control.pop(tid, ()):
                self._edge_inc(tid, child, _CONTROL)

        parents = _upstream_ids(merged)
        self._task_upstream[tid] = parents
        for parent in parents:
            if parent in self._nodes:
                self._edge_inc(parent, tid, _CONTROL)
            else:
                self._pending_control.setdefault(parent, set()).add(tid)

        prod = _producer_keys(merged)
        self._task_prod[tid] = prod
        for key in prod:
            for consumer in self._consumers.get(key, ()):
                if consumer != tid:
                    self._edge_inc(tid, consumer, _DATA)
            self._producers.setdefault(key, set()).add(tid)

        cons = _consumer_keys(merged)
        self._task_cons[tid] = cons
        for key in cons:
            for producer in self._producers.get(key, ()):
                if producer != tid:
                    self._edge_inc(producer, tid, _DATA)
            self._consumers.setdefault(key, set()).add(tid)

        self.applied_count += 1
        return True

    def _retract(self, tid: str) -> None:
        """Undo one task's edge contributions (before re-applying)."""
        for parent in self._task_upstream.pop(tid, ()):
            waiting = self._pending_control.get(parent)
            if waiting is not None and tid in waiting:
                waiting.discard(tid)
                if not waiting:
                    del self._pending_control[parent]
            else:
                self._edge_dec(parent, tid, _CONTROL)
        for key in self._task_prod.pop(tid, ()):
            self._producers[key].discard(tid)
            if not self._producers[key]:
                del self._producers[key]
            for consumer in self._consumers.get(key, ()):
                if consumer != tid:
                    self._edge_dec(tid, consumer, _DATA)
        for key in self._task_cons.pop(tid, ()):
            self._consumers[key].discard(tid)
            if not self._consumers[key]:
                del self._consumers[key]
            for producer in self._producers.get(key, ()):
                if producer != tid:
                    self._edge_dec(producer, tid, _DATA)

    def _edge_inc(self, u: str, v: str, kind: int) -> None:
        counts = self._out.setdefault(u, {}).get(v)
        if counts is None:
            counts = [0, 0]
            self._out[u][v] = counts
            self._in.setdefault(v, {})[u] = counts
        counts[kind] += 1

    def _edge_dec(self, u: str, v: str, kind: int) -> None:
        counts = self._out.get(u, {}).get(v)
        if counts is None:
            return
        counts[kind] -= 1
        if counts[_CONTROL] <= 0 and counts[_DATA] <= 0:
            del self._out[u][v]
            del self._in[v][u]
            if not self._out[u]:
                del self._out[u]
            if not self._in[v]:
                del self._in[v]

    # -- introspection ------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def __contains__(self, task_id: str) -> bool:
        with self._lock:
            return task_id in self._nodes

    @property
    def edge_count(self) -> int:
        with self._lock:
            return sum(len(targets) for targets in self._out.values())

    def node(self, task_id: str) -> dict[str, Any]:
        with self._lock:
            self._check(task_id)
            return dict(self._nodes[task_id])

    def workflows(self) -> list[str]:
        with self._lock:
            return list(self._wf_counts)

    def stats(self) -> dict[str, int]:
        with self._lock:
            control = data = 0
            for targets in self._out.values():
                for counts in targets.values():
                    if counts[_CONTROL] > 0:
                        control += 1
                    if counts[_DATA] > 0:
                        data += 1
            return {
                "tasks": len(self._nodes),
                "edges": sum(len(t) for t in self._out.values()),
                "control_edges": control,
                "data_edges": data,
                "pending_control": sum(
                    len(c) for c in self._pending_control.values()
                ),
            }

    def _check(self, task_id: str) -> None:
        if task_id not in self._nodes:
            raise ProvenanceError(f"unknown task {task_id!r}")

    # -- traversal ----------------------------------------------------------------
    def parents(self, task_id: str) -> list[str]:
        with self._lock:
            self._check(task_id)
            return list(self._in.get(task_id, ()))

    def children(self, task_id: str) -> list[str]:
        with self._lock:
            self._check(task_id)
            return list(self._out.get(task_id, ()))

    def upstream(self, task_id: str, max_depth: int | None = None) -> set[str]:
        """Ancestors within ``max_depth`` hops (all of them when None)."""
        return self._reach(task_id, self._in, max_depth)

    def downstream(self, task_id: str, max_depth: int | None = None) -> set[str]:
        """Descendants within ``max_depth`` hops (all of them when None)."""
        return self._reach(task_id, self._out, max_depth)

    def _reach(
        self,
        task_id: str,
        adjacency: Mapping[str, Mapping[str, Any]],
        max_depth: int | None,
    ) -> set[str]:
        with self._lock:
            self._check(task_id)
            seen: set[str] = set()
            frontier = deque([(task_id, 0)])
            while frontier:
                node, depth = frontier.popleft()
                if max_depth is not None and depth >= max_depth:
                    continue
                for neighbour in adjacency.get(node, ()):
                    if neighbour not in seen and neighbour != task_id:
                        seen.add(neighbour)
                        frontier.append((neighbour, depth + 1))
            return seen

    def causal_chain(self, source: str, target: str) -> list[str] | None:
        """Shortest dependency path source -> target, None when unrelated."""
        with self._lock:
            self._check(source)
            self._check(target)
            if source == target:
                return [source]
            came_from: dict[str, str] = {}
            frontier = deque([source])
            while frontier:
                node = frontier.popleft()
                for neighbour in self._out.get(node, ()):
                    if neighbour in came_from or neighbour == source:
                        continue
                    came_from[neighbour] = node
                    if neighbour == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(came_from[path[-1]])
                        return path[::-1]
                    frontier.append(neighbour)
            return None

    def roots(self) -> list[str]:
        with self._lock:
            return [n for n in self._nodes if not self._in.get(n)]

    def leaves(self) -> list[str]:
        with self._lock:
            return [n for n in self._nodes if not self._out.get(n)]

    def is_acyclic(self) -> bool:
        with self._lock:
            return self._topo_order(self._nodes) is not None

    def _topo_order(self, nodes: Iterable[str]) -> list[str] | None:
        """Kahn's algorithm over a node subset; None when cyclic."""
        node_set = set(nodes)
        indeg = {
            n: sum(1 for p in self._in.get(n, ()) if p in node_set and p != n)
            for n in node_set
        }
        ready = deque(n for n in node_set if indeg[n] == 0)
        order: list[str] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for child in self._out.get(node, ()):
                if child in node_set and child != node:
                    indeg[child] -= 1
                    if indeg[child] == 0:
                        ready.append(child)
        # a self-loop is a cycle: it never reaches the ready queue
        if len(order) != len(node_set) or any(
            n in self._out.get(n, ()) for n in node_set
        ):
            return None
        return order

    def critical_path(self, workflow_id: str | None = None) -> list[str]:
        """Longest chain of dependent tasks (optionally one workflow's)."""
        with self._lock:
            if workflow_id is None:
                nodes: Iterable[str] = self._nodes
            else:
                nodes = [
                    n
                    for n, meta in self._nodes.items()
                    if meta.get("workflow_id") == workflow_id
                ]
            node_set = set(nodes)
            order = self._topo_order(node_set)
            if order is None:
                raise ProvenanceError("critical path requires an acyclic graph")
            if not order:
                return []
            # longest-path DP in topological order
            best_len: dict[str, int] = {}
            best_prev: dict[str, str | None] = {}
            for node in order:
                length, prev = 0, None
                for parent in self._in.get(node, ()):
                    if parent in node_set and best_len.get(parent, 0) + 1 > length:
                        length = best_len[parent] + 1
                        prev = parent
                best_len[node] = length
                best_prev[node] = prev
            tail = max(order, key=lambda n: best_len[n])
            path = [tail]
            while best_prev[path[-1]] is not None:
                path.append(best_prev[path[-1]])  # type: ignore[arg-type]
            return path[::-1]

    def impact_sizes(
        self, task_ids: Iterable[str] | None = None
    ) -> dict[str, int]:
        """Descendant-set size per task (how much each task influenced)."""
        with self._lock:
            ids = list(task_ids) if task_ids is not None else list(self._nodes)
            return {tid: len(self.downstream(tid)) for tid in ids}

    # -- snapshot export ----------------------------------------------------------
    def to_provenance_graph(self) -> ProvenanceGraph:
        """Materialise the live index as a :class:`ProvenanceGraph`.

        The export observes the same last-writer-wins ``kind`` attribute
        networkx gives the scan-built graph (data edges are added after
        control edges there, so a pair connected both ways reads
        ``data``).
        """
        with self._lock:
            pg = ProvenanceGraph([])
            for tid, meta in self._nodes.items():
                pg.graph.add_node(tid, **meta)
            for u, targets in self._out.items():
                for v, counts in targets.items():
                    kind = "data" if counts[_DATA] > 0 else "control"
                    pg.graph.add_edge(u, v, kind=kind)
            return pg
