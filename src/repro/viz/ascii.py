"""ASCII chart renderers.

The GUI in the paper renders matplotlib figures; a terminal-first
library renders the same information as text: bar charts for the
agent's plot tool, five-number boxplot rows for Figure 7, scatter
tables for Figure 8.  Every renderer returns a plain string.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["bar_chart", "boxplot_rows", "scatter", "series_table"]

_BAR = "█"
_HALF = "▌"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str = "",
    width: int = 48,
) -> str:
    """Horizontal bar chart; bar lengths scaled to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty chart)"
    vmax = max((abs(v) for v in values), default=0.0)
    label_w = max(len(str(lb)) for lb in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("─" * min(width + label_w + 12, 79))
    for label, value in zip(labels, values):
        frac = 0.0 if vmax == 0 else abs(value) / vmax
        n = frac * width
        bar = _BAR * int(n) + (_HALF if (n - int(n)) >= 0.5 else "")
        lines.append(f"{str(label).ljust(label_w)} │{bar.ljust(width)} {value:.4g}")
    return "\n".join(lines)


def _five_numbers(values: Sequence[float]) -> tuple[float, float, float, float, float]:
    data = sorted(values)
    n = len(data)
    if n == 0:
        raise ValueError("empty series")

    def quantile(f: float) -> float:
        if n == 1:
            return data[0]
        pos = f * (n - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    return (data[0], quantile(0.25), quantile(0.5), quantile(0.75), data[-1])


def boxplot_rows(
    groups: dict[str, Sequence[float]],
    *,
    lo: float = 0.0,
    hi: float = 1.0,
    width: int = 40,
) -> str:
    """One text boxplot row per group over a fixed [lo, hi] axis."""
    span = hi - lo
    if span <= 0:
        raise ValueError("hi must exceed lo")
    label_w = max((len(k) for k in groups), default=5)
    lines = [
        f"{'':{label_w}}  {lo:<8.3g}{'':{max(0, width - 16)}}{hi:>8.3g}",
    ]
    for name, values in groups.items():
        if not len(values):
            lines.append(f"{name.ljust(label_w)}  (no data)")
            continue
        mn, q1, med, q3, mx = _five_numbers(list(values))

        def col(v: float) -> int:
            return max(0, min(width - 1, int((v - lo) / span * (width - 1))))

        row = [" "] * width
        for i in range(col(mn), col(mx) + 1):
            row[i] = "─"
        for i in range(col(q1), col(q3) + 1):
            row[i] = "▒"
        row[col(med)] = "┃"
        row[col(mn)] = "├"
        row[col(mx)] = "┤"
        lines.append(
            f"{name.ljust(label_w)}  {''.join(row)}  med={med:.3f} iqr=[{q1:.3f},{q3:.3f}]"
        )
    return "\n".join(lines)


def scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    labels: Sequence[str] | None = None,
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Scatter plot on a character grid with optional point labels."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if not xs:
        return "(empty scatter)"
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "abcdefghijklmnopqrstuvwxyz"
    for i, (x, y) in enumerate(zip(xs, ys)):
        cx = int((x - xmin) / xspan * (width - 1))
        cy = int((y - ymin) / yspan * (height - 1))
        grid[height - 1 - cy][cx] = marks[i % len(marks)] if labels else "●"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {ymin:.3g} … {ymax:.3g}")
    lines.extend("│" + "".join(row) for row in grid)
    lines.append("└" + "─" * width)
    lines.append(f"x: {xmin:.3g} … {xmax:.3g}")
    if labels:
        for i, lb in enumerate(labels):
            lines.append(f"  {marks[i % len(marks)]} = {lb}")
    return "\n".join(lines)


def series_table(
    rows: Sequence[dict],
    columns: Sequence[str],
    *,
    title: str = "",
) -> str:
    """Aligned text table (paper-style results tables)."""
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "·"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)
