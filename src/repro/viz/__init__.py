"""Terminal visualisation: ASCII charts for agent replies and benches."""

from repro.viz.ascii import bar_chart, boxplot_rows, scatter, series_table

__all__ = ["bar_chart", "boxplot_rows", "scatter", "series_table"]
