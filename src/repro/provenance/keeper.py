"""Provenance Keeper: hub subscriber -> unified schema -> storage backend.

"One or more distributed Provenance Keeper services subscribe to the
streaming hub, convert incoming messages into a unified workflow
provenance schema based on a W3C PROV extension, and store them in a
backend-agnostic provenance database" (paper §2.3).

The keeper: validates and normalises raw payloads into
:class:`TaskProvenanceMessage` form, upserts them into any
:class:`~repro.storage.backend.StorageBackend` (lifecycle updates
collapse per ``task_id``), and incrementally grows a
:class:`ProvDocument` with activities, the used/generated entities, and
agent associations for the agent's own records.

Concurrency: backends are thread-safe, so ingest does **not** serialise
on a keeper-wide lock — concurrent broker deliveries flow straight into
the store (a :class:`~repro.storage.sharded.ShardedProvenanceStore`
then groups each batch per shard and ingests the groups in parallel).
The exception is a directly-attached ``lineage_index``: database and
index must observe re-deliveries in the same merge order for their
parity guarantee, so that pair is applied under one lock.  Ingest
statistics are kept behind their own lock and exposed as a
:meth:`stats` snapshot (the MCP ``lineage-stats`` resource embeds it).
"""

from __future__ import annotations

import re
import threading
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import SchemaViolationError
from repro.messaging.broker import Broker, Subscription
from repro.messaging.message import Envelope
from repro.provenance.messages import TaskProvenanceMessage
from repro.provenance.prov import ProvDocument, RelationKind
from repro.storage import ProvenanceDatabase, StorageBackend

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids import cycle
    from repro.lineage.index import LineageIndex

__all__ = ["ProvenanceKeeper", "normalise_payload"]

#: Topic the capture layer publishes task messages to.
TASK_TOPIC = "provenance.task"
#: Topic the anomaly detector republishes tagged messages to.
ANOMALY_TOPIC = "provenance.anomaly"


def normalise_payload(
    payload: Mapping[str, Any],
) -> tuple[TaskProvenanceMessage | None, str | None]:
    """Validate one raw payload: ``(message, None)`` or ``(None, reason)``.

    The single definition of what the keeper accepts.  Every consumer
    that must agree with the database's contents (the keeper's own
    single and batch ingest, the standalone lineage service) goes
    through here, so acceptance can never drift between them.
    Structurally malformed payloads (``from_dict`` failures) reject the
    same way schema violations do.
    """
    try:
        msg = TaskProvenanceMessage.from_dict(payload)
        msg.validate()
    except SchemaViolationError as exc:
        return None, str(exc)
    except Exception as exc:  # noqa: BLE001 - isolate malformed payloads
        return None, f"malformed payload: {exc!r}"
    return msg, None


_QUOTED_VALUE = re.compile(r"'[^']*'|\"[^\"]*\"")
_TASK_PREFIX = re.compile(r"^task \S+: ")

#: Hard cap on distinct rejection-reason buckets; overflow folds into
#: "other" so a hostile or broken producer cannot balloon the stats map.
_MAX_REASON_BUCKETS = 64


def _reason_key(reason: str) -> str:
    """Bounded bucket for one rejection reason.

    Schema-violation messages embed payload values (task ids, bad
    statuses), so quoted values and the ``task <id>:`` prefix are
    normalised away before bucketing; malformed-payload reasons embed
    arbitrary reprs and collapse into one bucket.
    """
    if reason.startswith("malformed payload"):
        return "malformed payload"
    reason = _TASK_PREFIX.sub("task <id>: ", reason)
    reason = _QUOTED_VALUE.sub("<value>", reason)
    return reason[:120]


class ProvenanceKeeper:
    """Consumes provenance messages and persists them."""

    def __init__(
        self,
        broker: Broker,
        database: StorageBackend | None = None,
        *,
        keeper_id: str = "keeper-0",
        pattern: str = "provenance.#",
        build_prov_document: bool = True,
        lineage_index: "LineageIndex | None" = None,
    ):
        self.keeper_id = keeper_id
        self.broker = broker
        # explicit None check: an empty store has len() == 0 and is falsy
        self.database: StorageBackend = (
            ProvenanceDatabase() if database is None else database
        )
        self.prov = ProvDocument() if build_prov_document else None
        #: optional live lineage index fed the same accepted documents
        #: the database receives (see repro.lineage)
        self.lineage_index = lineage_index
        self._subscription: Subscription | None = None
        self._pattern = pattern
        # db+lineage must see identical merge order, so the pair is
        # applied atomically; without an index the store's own locking
        # suffices and ingest runs lock-free up to the backend
        self._apply_lock = threading.Lock()
        # the PROV projection is not thread-safe on its own
        self._prov_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.processed_count = 0
        self.rejected: list[tuple[Mapping[str, Any], str]] = []
        self._reject_reasons: dict[str, int] = {}

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        if self._subscription is None:
            self._subscription = self.broker.subscribe(
                self._pattern, self._on_message, batch_callback=self._on_batch
            )

    def stop(self) -> None:
        if self._subscription is not None:
            self.broker.unsubscribe(self._subscription)
            self._subscription = None

    def __enter__(self) -> "ProvenanceKeeper":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- ingestion ----------------------------------------------------------------
    def _on_message(self, envelope: Envelope) -> None:
        self.ingest(envelope.payload)

    def _on_batch(self, envelopes: list[Envelope]) -> None:
        self.ingest_batch([e.payload for e in envelopes])

    def ingest(self, payload: Mapping[str, Any]) -> bool:
        """Normalise and store one raw payload; False if it was rejected.

        Structurally malformed payloads (``from_dict`` failures) are
        rejected the same way schema violations are, so single and batch
        delivery account identically in :attr:`rejected`.
        """
        msg, reason = normalise_payload(payload)
        if msg is None:
            self._record_rejects([(dict(payload), reason or "rejected")])
            return False
        self._store([msg.to_dict()])
        if self.prov is not None:
            with self._prov_lock:
                self._record_prov(msg)
        with self._stats_lock:
            self.processed_count += 1
        return True

    def ingest_batch(self, payloads: Iterable[Mapping[str, Any]]) -> int:
        """Normalise and store a batch; returns the number accepted.

        This is the buffer-flush fast path: validation happens before
        any lock, then the whole batch lands through the backend's
        ``upsert_many`` — against a sharded store that means one
        per-shard group per batch, ingested in parallel.
        """
        accepted: list[TaskProvenanceMessage] = []
        rejects: list[tuple[Mapping[str, Any], str]] = []
        for payload in payloads:
            msg, reason = normalise_payload(payload)
            if msg is None:
                # one bad message must not discard the rest of the batch
                rejects.append((dict(payload), reason or "rejected"))
                continue
            accepted.append(msg)
        if rejects:
            self._record_rejects(rejects)
        if accepted:
            self._store([m.to_dict() for m in accepted])
            if self.prov is not None:
                with self._prov_lock:
                    for m in accepted:
                        self._record_prov(m)
            with self._stats_lock:
                self.processed_count += len(accepted)
        return len(accepted)

    def rebuild_lineage(self) -> int:
        """Cold-start recovery: re-feed stored history into the index.

        A keeper attached to a durable store
        (:class:`repro.storage.DurableStore`) recovers the *database*
        for free, but the :class:`~repro.lineage.LineageIndex` is
        in-memory and restarts empty.  This replays the store's current
        contents through the keeper's own validation into the index —
        under the same apply lock live ingest uses, so a replay racing
        fresh deliveries still observes one merge order.  Idempotent
        (re-applying unchanged documents is a no-op for the index);
        returns the number of documents applied.
        """
        if self.lineage_index is None:
            return 0
        accepted: list[dict[str, Any]] = []
        for doc in self.database.all():
            msg, _reason = normalise_payload(doc)
            if msg is not None:
                accepted.append(msg.to_dict())
        if accepted:
            with self._apply_lock:
                self.lineage_index.apply_many(accepted)
        return len(accepted)

    def _store(self, docs: list[dict[str, Any]]) -> None:
        if self.lineage_index is not None:
            with self._apply_lock:
                self.database.upsert_many(docs, key_field="task_id")
                self.lineage_index.apply_many(docs)
        else:
            self.database.upsert_many(docs, key_field="task_id")

    def _record_rejects(
        self, rejects: list[tuple[Mapping[str, Any], str]]
    ) -> None:
        with self._stats_lock:
            self.rejected.extend(rejects)
            for _, reason in rejects:
                key = _reason_key(reason)
                if (
                    key not in self._reject_reasons
                    and len(self._reject_reasons) >= _MAX_REASON_BUCKETS
                ):
                    key = "other"
                self._reject_reasons[key] = self._reject_reasons.get(key, 0) + 1

    # -- stats -------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Consistent snapshot of ingest accounting (thread-safe).

        ``accepted``/``rejected`` are message counts;
        ``rejection_reasons`` buckets rejects by
        schema-violation message (bounded vocabulary) with all
        structurally-malformed payloads folded into one bucket.
        """
        with self._stats_lock:
            return {
                "keeper_id": self.keeper_id,
                "accepted": self.processed_count,
                "rejected": len(self.rejected),
                "rejection_reasons": dict(self._reject_reasons),
            }

    # -- PROV projection -------------------------------------------------------------
    def _record_prov(self, msg: TaskProvenanceMessage) -> None:
        assert self.prov is not None
        act_id = msg.task_id
        self.prov.add_activity(
            act_id,
            started_at=msg.started_at,
            ended_at=msg.ended_at,
            activity=msg.activity_id,
            record_type=msg.type,
        )
        for name, value in msg.used.items():
            ent = f"{act_id}/used/{name}"
            self.prov.add_entity(ent, name=name, value=_compact(value))
            self.prov.used(act_id, ent)
        for name, value in msg.generated.items():
            ent = f"{act_id}/generated/{name}"
            self.prov.add_entity(ent, name=name, value=_compact(value))
            self.prov.was_generated_by(ent, act_id)
        if msg.agent_id:
            self.prov.add_agent(msg.agent_id, agent_type="ai-agent")
            self.prov.was_associated_with(act_id, msg.agent_id)
        if msg.informed_by and msg.informed_by in self.prov:
            self.prov.relate(RelationKind.WAS_INFORMED_BY, act_id, msg.informed_by)


def _compact(value: Any, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"
