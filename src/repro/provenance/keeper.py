"""Provenance Keeper: hub subscriber -> unified schema -> database.

"One or more distributed Provenance Keeper services subscribe to the
streaming hub, convert incoming messages into a unified workflow
provenance schema based on a W3C PROV extension, and store them in a
backend-agnostic provenance database" (paper §2.3).

The keeper: validates and normalises raw payloads into
:class:`TaskProvenanceMessage` form, upserts them into the database
(lifecycle updates collapse per ``task_id``), and incrementally grows a
:class:`ProvDocument` with activities, the used/generated entities, and
agent associations for the agent's own records.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import SchemaViolationError
from repro.messaging.broker import Broker, Subscription
from repro.messaging.message import Envelope
from repro.provenance.database import ProvenanceDatabase
from repro.provenance.messages import TaskProvenanceMessage
from repro.provenance.prov import ProvDocument, RelationKind

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids import cycle
    from repro.lineage.index import LineageIndex

__all__ = ["ProvenanceKeeper", "normalise_payload"]

#: Topic the capture layer publishes task messages to.
TASK_TOPIC = "provenance.task"
#: Topic the anomaly detector republishes tagged messages to.
ANOMALY_TOPIC = "provenance.anomaly"


def normalise_payload(
    payload: Mapping[str, Any],
) -> tuple[TaskProvenanceMessage | None, str | None]:
    """Validate one raw payload: ``(message, None)`` or ``(None, reason)``.

    The single definition of what the keeper accepts.  Every consumer
    that must agree with the database's contents (the keeper's own
    single and batch ingest, the standalone lineage service) goes
    through here, so acceptance can never drift between them.
    Structurally malformed payloads (``from_dict`` failures) reject the
    same way schema violations do.
    """
    try:
        msg = TaskProvenanceMessage.from_dict(payload)
        msg.validate()
    except SchemaViolationError as exc:
        return None, str(exc)
    except Exception as exc:  # noqa: BLE001 - isolate malformed payloads
        return None, f"malformed payload: {exc!r}"
    return msg, None


class ProvenanceKeeper:
    """Consumes provenance messages and persists them."""

    def __init__(
        self,
        broker: Broker,
        database: ProvenanceDatabase | None = None,
        *,
        keeper_id: str = "keeper-0",
        pattern: str = "provenance.#",
        build_prov_document: bool = True,
        lineage_index: "LineageIndex | None" = None,
    ):
        self.keeper_id = keeper_id
        self.broker = broker
        self.database = database or ProvenanceDatabase()
        self.prov = ProvDocument() if build_prov_document else None
        #: optional live lineage index fed the same accepted documents
        #: the database receives (see repro.lineage)
        self.lineage_index = lineage_index
        self._subscription: Subscription | None = None
        self._pattern = pattern
        self._lock = threading.Lock()
        self.processed_count = 0
        self.rejected: list[tuple[Mapping[str, Any], str]] = []

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        if self._subscription is None:
            self._subscription = self.broker.subscribe(
                self._pattern, self._on_message, batch_callback=self._on_batch
            )

    def stop(self) -> None:
        if self._subscription is not None:
            self.broker.unsubscribe(self._subscription)
            self._subscription = None

    def __enter__(self) -> "ProvenanceKeeper":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- ingestion ----------------------------------------------------------------
    def _on_message(self, envelope: Envelope) -> None:
        self.ingest(envelope.payload)

    def _on_batch(self, envelopes: list[Envelope]) -> None:
        self.ingest_batch([e.payload for e in envelopes])

    def ingest(self, payload: Mapping[str, Any]) -> bool:
        """Normalise and store one raw payload; False if it was rejected.

        Structurally malformed payloads (``from_dict`` failures) are
        rejected the same way schema violations are, so single and batch
        delivery account identically in :attr:`rejected`.
        """
        msg, reason = normalise_payload(payload)
        if msg is None:
            with self._lock:
                self.rejected.append((dict(payload), reason))
            return False
        with self._lock:
            doc = msg.to_dict()
            self.database.upsert(doc, key_field="task_id")
            if self.lineage_index is not None:
                self.lineage_index.apply(doc)
            if self.prov is not None:
                self._record_prov(msg)
            self.processed_count += 1
        return True

    def ingest_batch(self, payloads: Iterable[Mapping[str, Any]]) -> int:
        """Normalise and store a batch; returns the number accepted.

        This is the buffer-flush fast path: validation happens outside
        the lock, then the whole batch lands through
        :meth:`ProvenanceDatabase.upsert_many` with one keeper-lock and
        one database-lock acquisition instead of one per message.
        """
        accepted: list[TaskProvenanceMessage] = []
        rejects: list[tuple[Mapping[str, Any], str]] = []
        for payload in payloads:
            msg, reason = normalise_payload(payload)
            if msg is None:
                # one bad message must not discard the rest of the batch
                rejects.append((dict(payload), reason))
                continue
            accepted.append(msg)
        with self._lock:
            self.rejected.extend(rejects)
            if accepted:
                docs = [m.to_dict() for m in accepted]
                self.database.upsert_many(docs, key_field="task_id")
                if self.lineage_index is not None:
                    self.lineage_index.apply_many(docs)
                if self.prov is not None:
                    for m in accepted:
                        self._record_prov(m)
                self.processed_count += len(accepted)
        return len(accepted)

    # -- PROV projection -------------------------------------------------------------
    def _record_prov(self, msg: TaskProvenanceMessage) -> None:
        assert self.prov is not None
        act_id = msg.task_id
        self.prov.add_activity(
            act_id,
            started_at=msg.started_at,
            ended_at=msg.ended_at,
            activity=msg.activity_id,
            record_type=msg.type,
        )
        for name, value in msg.used.items():
            ent = f"{act_id}/used/{name}"
            self.prov.add_entity(ent, name=name, value=_compact(value))
            self.prov.used(act_id, ent)
        for name, value in msg.generated.items():
            ent = f"{act_id}/generated/{name}"
            self.prov.add_entity(ent, name=name, value=_compact(value))
            self.prov.was_generated_by(ent, act_id)
        if msg.agent_id:
            self.prov.add_agent(msg.agent_id, agent_type="ai-agent")
            self.prov.was_associated_with(act_id, msg.agent_id)
        if msg.informed_by and msg.informed_by in self.prov:
            self.prov.relate(RelationKind.WAS_INFORMED_BY, act_id, msg.informed_by)


def _compact(value: Any, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"
