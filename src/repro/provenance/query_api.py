"""Language-agnostic Query API over the provenance store.

"Users can access provenance data through a language-agnostic Query API,
either programmatically (e.g., via Jupyter), through dashboards such as
Grafana, or ... via natural language" (paper §2.3).  The agent's post-hoc
DB tool and the examples use this facade; it also converts result sets
into the mini-DataFrame so the same query IR can execute over historical
data.

The facade depends only on the
:class:`~repro.storage.backend.StorageBackend` protocol, so it works
unchanged over the single-node store and the sharded store.  Every read
funnels through the backend's ``find``, so targeted lookups (``task``,
status filters, time ranges) automatically use secondary indexes, the
query planner, and — on a sharded store — single-shard routing; see
``docs/query_surface.md`` for the filter grammar and
:meth:`QueryAPI.explain` for per-filter plans.  Catalogue reads
(:meth:`workflows`, :meth:`campaigns`, :meth:`activities`,
:meth:`counts`) answer from the store's indexed distinct-values path
instead of materialising documents.

**Result caching**: frame materialisation (:meth:`to_frame`) is the
expensive read on the interactive path, and interactive questions
repeat.  A versioned :class:`~repro.query.QueryCache` fronts it, keyed
on ``(canonical filter, store version)`` — repeated questions answer
from cache until new provenance bumps the store's
:meth:`~repro.storage.backend.StorageBackend.version`.  The same cache
instance is shared with the agent's database tool (which keys on parsed
query IR), and :meth:`explain` reports its hit accounting.  Stores that
do not implement ``version()`` (minimal third-party backends) simply
bypass the cache.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.dataframe import DataFrame
from repro.provenance.graph import ProvenanceGraph
from repro.query.cache import MISS, QueryCache, canonical_filter_key
from repro.storage import StorageBackend

__all__ = ["QueryAPI", "store_version"]


def store_version(database: Any) -> int | None:
    """The backend's monotonic write stamp, or None when unsupported."""
    reader = getattr(database, "version", None)
    if reader is None:
        return None
    try:
        return int(reader())
    except Exception:  # noqa: BLE001 - a broken stamp must only disable caching
        return None


class QueryAPI:
    """High-level read access to stored provenance."""

    def __init__(
        self,
        database: StorageBackend,
        *,
        cache: QueryCache | None = None,
    ):
        self.database = database
        #: versioned result cache shared with the agent's database tool;
        #: pass an explicit QueryCache to share one across facades
        # explicit None check: an empty cache has len() == 0 and is falsy,
        # and a shared cache is usually handed over empty
        self.cache = QueryCache(max_entries=128) if cache is None else cache

    # -- task-level reads -----------------------------------------------------
    def tasks(
        self,
        filt: Mapping[str, Any] | None = None,
        *,
        sort: list[tuple[str, int]] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        base = {"type": "task"}
        if filt:
            base.update(filt)
        return self.database.find(base, sort=sort, limit=limit)

    def task(self, task_id: str) -> dict[str, Any] | None:
        return self.database.find_one({"task_id": task_id})

    def workflows(self) -> list[str]:
        return self.database.distinct("workflow_id")

    def campaigns(self) -> list[str]:
        return self.database.distinct("campaign_id")

    def activities(self, workflow_id: str | None = None) -> list[str]:
        filt = {"workflow_id": workflow_id} if workflow_id else None
        return self.database.distinct("activity_id", filt)

    def counts(self, field: str, filt: Mapping[str, Any] | None = None) -> dict[Any, int]:
        """Document count per value of ``field`` (indexed when possible).

        The shared tally helper: :meth:`status_counts` and the agent's
        monitoring surface both read this, and over an indexed field it
        costs O(distinct values), not O(documents).  Results are cached
        per ``(field, canonical filter, store version)``: monitoring
        dashboards poll these tallies far more often than provenance
        arrives, and a version bump invalidates exactly on write.
        """
        version = store_version(self.database)
        key = None
        if version is not None:
            filter_key = canonical_filter_key(filt)
            if filter_key is not None:
                key = ("counts", field, filter_key)
                cached = self.cache.get(key, version)
                if cached is not MISS:
                    return dict(cached)
        result = self.database.field_counts(field, filt)
        if key is not None:
            self.cache.put(key, version, dict(result))
        return result

    def status_counts(self) -> dict[str, int]:
        return self.counts("status")

    def failed_tasks(self) -> list[dict[str, Any]]:
        """Failure triage read, cached like :meth:`to_frame`.

        The cached list is copied per call so a caller appending to its
        answer cannot poison later hits; the documents themselves follow
        the store's own copy discipline.
        """
        version = store_version(self.database)
        key = ("failed_tasks",) if version is not None else None
        if key is not None:
            cached = self.cache.get(key, version)
            if cached is not MISS:
                # fresh dict per document, matching find()'s own copy
                # discipline — mutating an answer must not poison hits
                return [dict(doc) for doc in cached]
        result = self.database.find({"status": "FAILED"})
        if key is not None:
            self.cache.put(key, version, [dict(doc) for doc in result])
        return result

    def explain(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Query plan the store would use for ``filt``.

        Single-node stores report index-vs-scan; a sharded store
        additionally reports its routing decision (targeted vs scatter,
        the shards visited, and each shard's plan).  When result caching
        is active the plan also carries the cache's hit accounting under
        ``"cache"`` (hits, misses, hit_rate, invalidations) and the
        store version cache keys are pinned to.
        """
        plan = dict(self.database.explain(filt))
        version = store_version(self.database)
        if version is not None:
            plan["cache"] = dict(self.cache.stats(), store_version=version)
        return plan

    def agent_interactions(self) -> list[dict[str, Any]]:
        """Tool executions and LLM interactions the agent recorded (§4.2)."""
        return self.database.find(
            {"type": {"$in": ["tool_execution", "llm_interaction"]}}
        )

    # -- frame / graph views ------------------------------------------------------
    def to_frame(self, filt: Mapping[str, Any] | None = None) -> DataFrame:
        """Flattened DataFrame view so the query IR can run on history.

        Cached per ``(canonical filter, store version)``: the version is
        read *before* the find, so a write racing the materialisation
        can only strand the entry under a stamp that never matches again
        (see :mod:`repro.query.cache`), never serve stale rows.
        DataFrames are immutable, so cache hits share one object safely.
        """
        version = store_version(self.database)
        key = None
        if version is not None:
            filter_key = canonical_filter_key(filt)
            # unhashable filter leaves (sets, arrays) cannot be keyed
            # distinctly — bypass rather than collapse onto one entry
            if filter_key is not None:
                key = ("to_frame", filter_key)
                frame = self.cache.get(key, version)
                if frame is not MISS:
                    return frame
        docs = self.database.find(filt)
        frame = DataFrame.from_records(docs, flatten=True)
        if key is not None:
            self.cache.put(key, version, frame)
        return frame

    def graph(self, filt: Mapping[str, Any] | None = None) -> ProvenanceGraph:
        return ProvenanceGraph.from_database(self.database, filt)

    def lineage(self, task_id: str) -> set[str]:
        return self.graph().upstream(task_id)

    def impact(self, task_id: str) -> set[str]:
        return self.graph().downstream(task_id)
