"""Language-agnostic Query API over the provenance store.

"Users can access provenance data through a language-agnostic Query API,
either programmatically (e.g., via Jupyter), through dashboards such as
Grafana, or ... via natural language" (paper §2.3).  The agent's post-hoc
DB tool and the examples use this facade; it also converts result sets
into the mini-DataFrame so the same query IR can execute over historical
data.

The facade depends only on the
:class:`~repro.storage.backend.StorageBackend` protocol, so it works
unchanged over the single-node store and the sharded store.  Every read
funnels through the backend's ``find``, so targeted lookups (``task``,
status filters, time ranges) automatically use secondary indexes, the
query planner, and — on a sharded store — single-shard routing; see
``docs/query_surface.md`` for the filter grammar and
:meth:`QueryAPI.explain` for per-filter plans.  Catalogue reads
(:meth:`workflows`, :meth:`campaigns`, :meth:`activities`,
:meth:`counts`) answer from the store's indexed distinct-values path
instead of materialising documents.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.dataframe import DataFrame
from repro.provenance.graph import ProvenanceGraph
from repro.storage import StorageBackend

__all__ = ["QueryAPI"]


class QueryAPI:
    """High-level read access to stored provenance."""

    def __init__(self, database: StorageBackend):
        self.database = database

    # -- task-level reads -----------------------------------------------------
    def tasks(
        self,
        filt: Mapping[str, Any] | None = None,
        *,
        sort: list[tuple[str, int]] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        base = {"type": "task"}
        if filt:
            base.update(filt)
        return self.database.find(base, sort=sort, limit=limit)

    def task(self, task_id: str) -> dict[str, Any] | None:
        return self.database.find_one({"task_id": task_id})

    def workflows(self) -> list[str]:
        return self.database.distinct("workflow_id")

    def campaigns(self) -> list[str]:
        return self.database.distinct("campaign_id")

    def activities(self, workflow_id: str | None = None) -> list[str]:
        filt = {"workflow_id": workflow_id} if workflow_id else None
        return self.database.distinct("activity_id", filt)

    def counts(self, field: str, filt: Mapping[str, Any] | None = None) -> dict[Any, int]:
        """Document count per value of ``field`` (indexed when possible).

        The shared tally helper: :meth:`status_counts` and the agent's
        monitoring surface both read this, and over an indexed field it
        costs O(distinct values), not O(documents).
        """
        return self.database.field_counts(field, filt)

    def status_counts(self) -> dict[str, int]:
        return self.counts("status")

    def failed_tasks(self) -> list[dict[str, Any]]:
        return self.database.find({"status": "FAILED"})

    def explain(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Query plan the store would use for ``filt``.

        Single-node stores report index-vs-scan; a sharded store
        additionally reports its routing decision (targeted vs scatter,
        the shards visited, and each shard's plan).
        """
        return self.database.explain(filt)

    def agent_interactions(self) -> list[dict[str, Any]]:
        """Tool executions and LLM interactions the agent recorded (§4.2)."""
        return self.database.find(
            {"type": {"$in": ["tool_execution", "llm_interaction"]}}
        )

    # -- frame / graph views ------------------------------------------------------
    def to_frame(self, filt: Mapping[str, Any] | None = None) -> DataFrame:
        """Flattened DataFrame view so the query IR can run on history."""
        docs = self.database.find(filt)
        return DataFrame.from_records(docs, flatten=True)

    def graph(self, filt: Mapping[str, Any] | None = None) -> ProvenanceGraph:
        return ProvenanceGraph.from_database(self.database, filt)

    def lineage(self, task_id: str) -> set[str]:
        return self.graph().upstream(task_id)

    def impact(self, task_id: str) -> set[str]:
        return self.graph().downstream(task_id)
