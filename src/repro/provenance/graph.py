"""Graph view over stored task provenance for traversal queries.

OLAP queries over control flow and dataflow need "graph traversal to
analyze multi-step dependencies or causal chains" (paper §2.1).  This
module builds a networkx DiGraph from the task collection:

* task -> task edges follow explicit ``used``/``generated`` value links
  (a task consuming a value another task produced) and parent links the
  workflow engine records (``used._upstream``);
* lineage (ancestors) and impact (descendants) walks answer the
  multi-hop causal questions DataFrames cannot easily express (§5.4
  names this an open challenge for the in-memory path — the database
  path supports it here).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import networkx as nx

from repro.errors import ProvenanceError
from repro.storage import StorageBackend, get_path

__all__ = ["ProvenanceGraph"]

UPSTREAM_FIELD = "_upstream"  # capture layer records parent task ids here


class ProvenanceGraph:
    """Task-dependency graph derived from provenance records."""

    def __init__(self, docs: Iterable[Mapping[str, Any]]):
        self.graph = nx.DiGraph()
        docs = list(docs)
        for d in docs:
            tid = d.get("task_id")
            if not tid:
                continue
            self.graph.add_node(
                tid,
                activity_id=d.get("activity_id"),
                workflow_id=d.get("workflow_id"),
                status=d.get("status"),
            )
        # explicit upstream links
        for d in docs:
            tid = d.get("task_id")
            upstream = get_path(d, f"used.{UPSTREAM_FIELD}") or []
            if isinstance(upstream, str):
                upstream = [upstream]
            for parent in upstream:
                if parent in self.graph and tid in self.graph:
                    self.graph.add_edge(parent, tid, kind="control")
        # implicit dataflow links: matching generated/used scalar values
        producers: dict[Any, list[str]] = {}
        for d in docs:
            for name, value in (d.get("generated") or {}).items():
                key = _value_key(name, value)
                if key is not None:
                    producers.setdefault(key, []).append(d["task_id"])
        for d in docs:
            tid = d.get("task_id")
            for name, value in (d.get("used") or {}).items():
                if name == UPSTREAM_FIELD:
                    continue
                key = _value_key(name, value)
                for producer in producers.get(key, ()):  # type: ignore[arg-type]
                    if producer != tid:
                        self.graph.add_edge(producer, tid, kind="data")

    @classmethod
    def from_database(
        cls, db: StorageBackend, filt: Mapping[str, Any] | None = None
    ) -> "ProvenanceGraph":
        return cls(db.find(filt))

    # -- traversal --------------------------------------------------------------
    def _check(self, task_id: str) -> None:
        if task_id not in self.graph:
            raise ProvenanceError(f"unknown task {task_id!r}")

    def upstream(self, task_id: str) -> set[str]:
        """All ancestor tasks (the causal chain that led here)."""
        self._check(task_id)
        return set(nx.ancestors(self.graph, task_id))

    def downstream(self, task_id: str) -> set[str]:
        """All descendant tasks (everything this task influenced)."""
        self._check(task_id)
        return set(nx.descendants(self.graph, task_id))

    def parents(self, task_id: str) -> list[str]:
        self._check(task_id)
        return list(self.graph.predecessors(task_id))

    def children(self, task_id: str) -> list[str]:
        self._check(task_id)
        return list(self.graph.successors(task_id))

    def causal_chain(self, source: str, target: str) -> list[str] | None:
        """Shortest dependency path, or None when unrelated."""
        self._check(source)
        self._check(target)
        try:
            return nx.shortest_path(self.graph, source, target)
        except nx.NetworkXNoPath:
            return None

    def roots(self) -> list[str]:
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def leaves(self) -> list[str]:
        return [n for n in self.graph.nodes if self.graph.out_degree(n) == 0]

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def critical_path(self) -> list[str]:
        """Longest chain of dependent tasks (DAG only)."""
        if not self.is_acyclic():
            raise ProvenanceError("critical path requires an acyclic graph")
        if len(self.graph) == 0:
            return []
        return nx.dag_longest_path(self.graph)

    def __len__(self) -> int:
        return len(self.graph)


def _value_key(name: str, value: Any):
    """Hashable identity for value-linking; None for unlinkable payloads.

    Guard order matters: ``bool`` is a subclass of ``int``, so it must be
    rejected *before* the trivial-number check (``True in (0, 1, -1)`` is
    True) — flags would otherwise be considered for linking and then
    silently dropped by the numeric guard.
    """
    if isinstance(value, bool):
        return None  # flags are too common to be a meaningful link
    if isinstance(value, (int, float)) and value in (0, 1, -1):
        return None  # trivial numbers collide across unrelated tasks
    if isinstance(value, (str, int, float)):
        return (name, value)
    return None
