"""The common workflow-task provenance message schema (paper Listing 1).

Every capture mechanism — decorators, adapters, the agent's own tool
recorder — emits this shape onto the streaming hub; every consumer
(Keeper, Context Manager) understands it.  Application-specific data
live under ``used`` (inputs/parameters) and ``generated`` (outputs),
exactly as the W3C PROV verbs suggest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.dataframe import flatten_record
from repro.errors import SchemaViolationError


class TaskStatus(str, enum.Enum):
    SUBMITTED = "SUBMITTED"
    RUNNING = "RUNNING"
    FINISHED = "FINISHED"
    FAILED = "FAILED"


#: Descriptions of fields common to all tasks.  These are *statically*
#: included in the agent's dynamic dataflow schema (paper §4.2) so
#: queries over campaign/workflow/activity identifiers always resolve.
COMMON_FIELDS: dict[str, dict[str, str]] = {
    "task_id": {
        "type": "str",
        "description": "Unique task execution id (timestamp-derived).",
    },
    "campaign_id": {
        "type": "str",
        "description": "Groups related workflow runs into one campaign.",
    },
    "workflow_id": {
        "type": "str",
        "description": "Identifies one workflow execution (run).",
    },
    "activity_id": {
        "type": "str",
        "description": "The workflow activity (step name) this task executes.",
    },
    "status": {
        "type": "str",
        "description": "Lifecycle state: SUBMITTED, RUNNING, FINISHED, or FAILED.",
    },
    "hostname": {
        "type": "str",
        "description": "Compute node where the task ran (scheduling placement).",
    },
    "started_at": {
        "type": "float",
        "description": "Start timestamp in epoch seconds; use for time-range filters.",
    },
    "ended_at": {
        "type": "float",
        "description": "End timestamp in epoch seconds (null while RUNNING).",
    },
    "duration": {
        "type": "float",
        "description": "ended_at - started_at in seconds (derived; null while RUNNING).",
    },
    "type": {
        "type": "str",
        "description": "Record type: task, workflow, tool_execution, or llm_interaction.",
    },
    "telemetry_at_start.cpu.percent": {
        "type": "float",
        "description": "Node CPU utilisation (%) sampled when the task started.",
    },
    "telemetry_at_end.cpu.percent": {
        "type": "float",
        "description": "Node CPU utilisation (%) sampled when the task ended.",
    },
    "telemetry_at_start.mem.percent": {
        "type": "float",
        "description": "Node memory utilisation (%) sampled when the task started.",
    },
    "telemetry_at_end.mem.percent": {
        "type": "float",
        "description": "Node memory utilisation (%) sampled when the task ended.",
    },
}

_REQUIRED = ("task_id", "workflow_id", "activity_id", "status", "type")

#: Record types, extending plain tasks with the agent's own actions (§4.2).
RECORD_TYPES = ("task", "workflow", "tool_execution", "llm_interaction")


@dataclass
class TaskProvenanceMessage:
    """One task-provenance record (the paper's Listing 1).

    ``used`` and ``generated`` carry the application-specific dataflow;
    everything else is the common schema.
    """

    task_id: str
    campaign_id: str
    workflow_id: str
    activity_id: str
    used: dict[str, Any] = field(default_factory=dict)
    generated: dict[str, Any] = field(default_factory=dict)
    started_at: float | None = None
    ended_at: float | None = None
    hostname: str = ""
    telemetry_at_start: dict[str, Any] = field(default_factory=dict)
    telemetry_at_end: dict[str, Any] = field(default_factory=dict)
    status: str = TaskStatus.SUBMITTED.value
    type: str = "task"
    agent_id: str | None = None
    informed_by: str | None = None
    tags: dict[str, Any] = field(default_factory=dict)

    # -- validation ------------------------------------------------------------
    def validate(self) -> None:
        doc = self.to_dict()
        for key in _REQUIRED:
            if not doc.get(key):
                raise SchemaViolationError(f"missing required field {key!r}")
        if self.type not in RECORD_TYPES:
            raise SchemaViolationError(
                f"unknown record type {self.type!r}; expected one of {RECORD_TYPES}"
            )
        if self.status not in TaskStatus.__members__:
            raise SchemaViolationError(f"unknown status {self.status!r}")
        if (
            self.started_at is not None
            and self.ended_at is not None
            and self.ended_at < self.started_at
        ):
            raise SchemaViolationError(
                f"task {self.task_id}: ended_at precedes started_at"
            )
        if not isinstance(self.used, Mapping) or not isinstance(
            self.generated, Mapping
        ):
            raise SchemaViolationError("used/generated must be mappings")

    # -- derived --------------------------------------------------------------
    @property
    def duration(self) -> float | None:
        if self.started_at is None or self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    # -- conversions ------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        doc = {
            "task_id": self.task_id,
            "campaign_id": self.campaign_id,
            "workflow_id": self.workflow_id,
            "activity_id": self.activity_id,
            "used": dict(self.used),
            "generated": dict(self.generated),
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "duration": self.duration,
            "hostname": self.hostname,
            "telemetry_at_start": dict(self.telemetry_at_start),
            "telemetry_at_end": dict(self.telemetry_at_end),
            "status": self.status,
            "type": self.type,
        }
        if self.agent_id:
            doc["agent_id"] = self.agent_id
        if self.informed_by:
            doc["informed_by"] = self.informed_by
        if self.tags:
            doc["tags"] = dict(self.tags)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TaskProvenanceMessage":
        known = {
            "task_id",
            "campaign_id",
            "workflow_id",
            "activity_id",
            "used",
            "generated",
            "started_at",
            "ended_at",
            "hostname",
            "telemetry_at_start",
            "telemetry_at_end",
            "status",
            "type",
            "agent_id",
            "informed_by",
            "tags",
        }
        msg = cls(
            task_id=str(doc.get("task_id", "")),
            campaign_id=str(doc.get("campaign_id", "")),
            workflow_id=str(doc.get("workflow_id", "")),
            activity_id=str(doc.get("activity_id", "")),
            used=dict(doc.get("used") or {}),
            generated=dict(doc.get("generated") or {}),
            started_at=doc.get("started_at"),
            ended_at=doc.get("ended_at"),
            hostname=str(doc.get("hostname", "")),
            telemetry_at_start=dict(doc.get("telemetry_at_start") or {}),
            telemetry_at_end=dict(doc.get("telemetry_at_end") or {}),
            status=str(doc.get("status", TaskStatus.SUBMITTED.value)),
            type=str(doc.get("type", "task")),
            agent_id=doc.get("agent_id"),
            informed_by=doc.get("informed_by"),
            tags=dict(doc.get("tags") or {}),
        )
        # preserve unknown top-level keys as tags so nothing is silently lost
        for key, value in doc.items():
            if key not in known and key != "duration":
                msg.tags[key] = value
        return msg

    def flatten(self) -> dict[str, Any]:
        """Dot-flattened form for the agent's in-memory context frame."""
        return flatten_record(self.to_dict())
