"""Workflow provenance model, storage, and query API.

Implements the paper's provenance substrate (§2.3):

* :mod:`repro.provenance.messages` — the common task-provenance message
  schema (the paper's Listing 1), with validation and flattening;
* :mod:`repro.provenance.prov` — a W3C PROV extension: entities,
  activities, agents and their relations, used to record both workflow
  tasks and the agent's own tool/LLM interactions (§4.2);
* :mod:`repro.provenance.database` — compatibility alias for
  :mod:`repro.storage`, the pluggable backend package (single-node
  indexed store and the workflow-sharded store);
* :mod:`repro.provenance.keeper` — the Provenance Keeper service that
  subscribes to the streaming hub, normalises messages into the unified
  schema, and persists them;
* :mod:`repro.provenance.graph` — a networkx graph view for traversal
  (lineage/impact) queries;
* :mod:`repro.provenance.query_api` — the language-agnostic Query API
  used by dashboards, notebooks, and the provenance agent.
"""

from repro.provenance.messages import (
    COMMON_FIELDS,
    TaskStatus,
    TaskProvenanceMessage,
)
from repro.provenance.prov import (
    ProvActivity,
    ProvAgent,
    ProvDocument,
    ProvEntity,
    Relation,
    RelationKind,
)
from repro.storage import (
    ProvenanceDatabase,
    ShardedProvenanceStore,
    StorageBackend,
)
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.query_api import QueryAPI

__all__ = [
    "COMMON_FIELDS",
    "TaskStatus",
    "TaskProvenanceMessage",
    "ProvEntity",
    "ProvActivity",
    "ProvAgent",
    "ProvDocument",
    "Relation",
    "RelationKind",
    "ProvenanceDatabase",
    "ProvenanceKeeper",
    "ProvenanceGraph",
    "QueryAPI",
    "ShardedProvenanceStore",
    "StorageBackend",
]
