"""W3C PROV extension: entities, activities, agents, and relations.

The keeper converts task messages into this model (paper §2.3: "a
unified workflow provenance schema based on a W3C PROV extension"), and
the agent records its own tool executions and LLM interactions with the
same vocabulary (§4.2):

* tool executions are ``prov:Activity`` subclass records,
* LLM interactions likewise, linked to the initiating tool execution via
  ``prov:wasInformedBy``,
* the agent itself is a ``prov:Agent``; its actions link to it via
  ``prov:wasAssociatedWith``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable

import networkx as nx

from repro.errors import ProvenanceError

__all__ = [
    "ProvEntity",
    "ProvActivity",
    "ProvAgent",
    "Relation",
    "RelationKind",
    "ProvDocument",
]


class RelationKind(str, enum.Enum):
    USED = "used"
    WAS_GENERATED_BY = "wasGeneratedBy"
    WAS_INFORMED_BY = "wasInformedBy"
    WAS_ASSOCIATED_WITH = "wasAssociatedWith"
    WAS_ATTRIBUTED_TO = "wasAttributedTo"
    WAS_DERIVED_FROM = "wasDerivedFrom"


#: Which (subject kind, object kind) pairs each relation admits.
_DOMAINS: dict[RelationKind, tuple[str, str]] = {
    RelationKind.USED: ("activity", "entity"),
    RelationKind.WAS_GENERATED_BY: ("entity", "activity"),
    RelationKind.WAS_INFORMED_BY: ("activity", "activity"),
    RelationKind.WAS_ASSOCIATED_WITH: ("activity", "agent"),
    RelationKind.WAS_ATTRIBUTED_TO: ("entity", "agent"),
    RelationKind.WAS_DERIVED_FROM: ("entity", "entity"),
}


@dataclass(frozen=True)
class ProvEntity:
    """A data item (prov:Entity): parameter value, file, result record."""

    entity_id: str
    attributes: tuple[tuple[str, Any], ...] = ()

    kind = "entity"


@dataclass(frozen=True)
class ProvActivity:
    """Something that happened (prov:Activity): a task, tool call, LLM call."""

    activity_id: str
    started_at: float | None = None
    ended_at: float | None = None
    attributes: tuple[tuple[str, Any], ...] = ()

    kind = "activity"


@dataclass(frozen=True)
class ProvAgent:
    """Something responsible for activities (prov:Agent): user, AI agent."""

    agent_id: str
    agent_type: str = "software"
    attributes: tuple[tuple[str, Any], ...] = ()

    kind = "agent"


@dataclass(frozen=True)
class Relation:
    kind: RelationKind
    subject: str
    obj: str


class ProvDocument:
    """A typed PROV graph with validation and traversal helpers."""

    def __init__(self) -> None:
        self._nodes: dict[str, ProvEntity | ProvActivity | ProvAgent] = {}
        self._relations: list[Relation] = []

    # -- nodes -----------------------------------------------------------------
    def add_entity(self, entity_id: str, **attributes: Any) -> ProvEntity:
        node = ProvEntity(entity_id, tuple(sorted(attributes.items())))
        return self._add(node)

    def add_activity(
        self,
        activity_id: str,
        started_at: float | None = None,
        ended_at: float | None = None,
        **attributes: Any,
    ) -> ProvActivity:
        node = ProvActivity(
            activity_id, started_at, ended_at, tuple(sorted(attributes.items()))
        )
        return self._add(node)

    def add_agent(self, agent_id: str, agent_type: str = "software", **attributes: Any) -> ProvAgent:
        node = ProvAgent(agent_id, agent_type, tuple(sorted(attributes.items())))
        return self._add(node)

    def _add(self, node):
        existing = self._nodes.get(_node_id(node))
        if existing is not None and existing.kind != node.kind:
            raise ProvenanceError(
                f"id {_node_id(node)!r} already registered as {existing.kind}"
            )
        self._nodes[_node_id(node)] = node
        return node

    def get(self, node_id: str):
        return self._nodes.get(node_id)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- relations --------------------------------------------------------------
    def relate(self, kind: RelationKind | str, subject: str, obj: str) -> Relation:
        kind = RelationKind(kind)
        sub_kind, obj_kind = _DOMAINS[kind]
        sub_node = self._nodes.get(subject)
        obj_node = self._nodes.get(obj)
        if sub_node is None or obj_node is None:
            missing = subject if sub_node is None else obj
            raise ProvenanceError(f"relation references unknown node {missing!r}")
        if sub_node.kind != sub_kind or obj_node.kind != obj_kind:
            raise ProvenanceError(
                f"{kind.value} requires ({sub_kind} -> {obj_kind}), got "
                f"({sub_node.kind} -> {obj_node.kind})"
            )
        rel = Relation(kind, subject, obj)
        self._relations.append(rel)
        return rel

    def relations(self, kind: RelationKind | None = None) -> list[Relation]:
        if kind is None:
            return list(self._relations)
        return [r for r in self._relations if r.kind == kind]

    # -- convenience vocabulary -----------------------------------------------------
    def used(self, activity: str, entity: str) -> Relation:
        return self.relate(RelationKind.USED, activity, entity)

    def was_generated_by(self, entity: str, activity: str) -> Relation:
        return self.relate(RelationKind.WAS_GENERATED_BY, entity, activity)

    def was_informed_by(self, later: str, earlier: str) -> Relation:
        return self.relate(RelationKind.WAS_INFORMED_BY, later, earlier)

    def was_associated_with(self, activity: str, agent: str) -> Relation:
        return self.relate(RelationKind.WAS_ASSOCIATED_WITH, activity, agent)

    # -- views -------------------------------------------------------------------------
    def nodes(self, kind: str | None = None) -> list:
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind == kind]

    def to_networkx(self) -> nx.MultiDiGraph:
        g = nx.MultiDiGraph()
        for node_id, node in self._nodes.items():
            g.add_node(node_id, kind=node.kind)
        for rel in self._relations:
            g.add_edge(rel.subject, rel.obj, kind=rel.kind.value)
        return g

    def activities_of_agent(self, agent_id: str) -> list[str]:
        return [
            r.subject
            for r in self._relations
            if r.kind == RelationKind.WAS_ASSOCIATED_WITH and r.obj == agent_id
        ]

    def lineage_of_entity(self, entity_id: str, max_hops: int = 10) -> list[str]:
        """Upstream chain: generating activity, its inputs, their generators, ..."""
        if entity_id not in self._nodes:
            raise ProvenanceError(f"unknown entity {entity_id!r}")
        out: list[str] = []
        frontier: list[tuple[str, int]] = [(entity_id, 0)]
        seen = {entity_id}
        gen_by = {}
        used_by: dict[str, list[str]] = {}
        for r in self._relations:
            if r.kind == RelationKind.WAS_GENERATED_BY:
                gen_by[r.subject] = r.obj
            elif r.kind == RelationKind.USED:
                used_by.setdefault(r.subject, []).append(r.obj)
        while frontier:
            node, hops = frontier.pop(0)
            if hops >= max_hops:
                continue
            if node in gen_by:  # entity -> generating activity
                nxt = gen_by[node]
                if nxt not in seen:
                    seen.add(nxt)
                    out.append(nxt)
                    frontier.append((nxt, hops + 1))
            for ent in used_by.get(node, ()):  # activity -> consumed entities
                if ent not in seen:
                    seen.add(ent)
                    out.append(ent)
                    frontier.append((ent, hops + 1))
        return out

    def validate(self) -> None:
        """Re-check every relation's domain (cheap sanity pass)."""
        for rel in self._relations:
            sub = self._nodes.get(rel.subject)
            obj = self._nodes.get(rel.obj)
            if sub is None or obj is None:
                raise ProvenanceError(f"dangling relation {rel}")
            want = _DOMAINS[rel.kind]
            if (sub.kind, obj.kind) != want:
                raise ProvenanceError(f"ill-typed relation {rel}")


def _node_id(node) -> str:
    if isinstance(node, ProvEntity):
        return node.entity_id
    if isinstance(node, ProvActivity):
        return node.activity_id
    return node.agent_id
