"""Backend-agnostic in-memory provenance document store.

The reference architecture supports MongoDB / LMDB / Neo4j backends; the
agent only needs the *Query API surface*, so one faithful in-memory
backend exercises every path: Mongo-style filter documents (OLTP
targeted lookups), a small aggregation pipeline (OLAP), and upserts keyed
by ``task_id`` so RUNNING -> FINISHED updates collapse into one record.

Filter documents support::

    {"status": "FINISHED"}                      # implicit $eq
    {"duration": {"$gt": 2.0, "$lte": 10.0}}    # range operators
    {"activity_id": {"$in": ["run_dft"]}}       # membership
    {"generated.bond_id": {"$regex": "C-H"}}    # dotted paths + regex
    {"ended_at": {"$exists": False}}            # presence

Aggregation pipelines support ``$match``, ``$group`` (with ``$sum``,
``$avg``, ``$min``, ``$max``, ``$count``), ``$sort``, ``$limit``,
``$project``.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Iterable, Mapping

from repro.errors import DatabaseError

__all__ = ["ProvenanceDatabase", "get_path"]


def get_path(doc: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted path inside a nested document (None if absent)."""
    cur: Any = doc
    for part in path.split("."):
        if isinstance(cur, Mapping) and part in cur:
            cur = cur[part]
        else:
            return None
    return cur


def _path_exists(doc: Mapping[str, Any], path: str) -> bool:
    cur: Any = doc
    for part in path.split("."):
        if isinstance(cur, Mapping) and part in cur:
            cur = cur[part]
        else:
            return False
    return True


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda v, arg: v == arg,
    "$ne": lambda v, arg: v != arg,
    "$gt": lambda v, arg: v is not None and v > arg,
    "$gte": lambda v, arg: v is not None and v >= arg,
    "$lt": lambda v, arg: v is not None and v < arg,
    "$lte": lambda v, arg: v is not None and v <= arg,
    "$in": lambda v, arg: v in arg,
    "$nin": lambda v, arg: v not in arg,
    "$regex": lambda v, arg: isinstance(v, str) and re.search(arg, v) is not None,
}


def _matches(doc: Mapping[str, Any], filt: Mapping[str, Any]) -> bool:
    for path, cond in filt.items():
        if path == "$or":
            if not any(_matches(doc, sub) for sub in cond):
                return False
            continue
        if path == "$and":
            if not all(_matches(doc, sub) for sub in cond):
                return False
            continue
        value = get_path(doc, path)
        if isinstance(cond, Mapping) and any(k.startswith("$") for k in cond):
            for op, arg in cond.items():
                if op == "$exists":
                    if _path_exists(doc, path) != bool(arg):
                        return False
                    continue
                fn = _OPERATORS.get(op)
                if fn is None:
                    raise DatabaseError(f"unknown operator {op!r}")
                try:
                    if not fn(value, arg):
                        return False
                except TypeError:
                    return False
        else:
            if value != cond:
                return False
    return True


_ACCUMULATORS = {
    "$sum": lambda vals: sum(v for v in vals if isinstance(v, (int, float))),
    "$avg": lambda vals: (
        (lambda nums: sum(nums) / len(nums) if nums else None)(
            [v for v in vals if isinstance(v, (int, float))]
        )
    ),
    "$min": lambda vals: min((v for v in vals if v is not None), default=None),
    "$max": lambda vals: max((v for v in vals if v is not None), default=None),
    "$count": lambda vals: sum(1 for v in vals if v is not None),
    "$first": lambda vals: next(iter(vals), None),
}


class ProvenanceDatabase:
    """Thread-safe in-memory document collection."""

    def __init__(self) -> None:
        self._docs: list[dict[str, Any]] = []
        self._by_key: dict[str, int] = {}
        self._lock = threading.RLock()

    # -- writes -----------------------------------------------------------------
    def insert(self, doc: Mapping[str, Any]) -> None:
        with self._lock:
            self._docs.append(dict(doc))

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> int:
        with self._lock:
            n = 0
            for d in docs:
                self._docs.append(dict(d))
                n += 1
            return n

    def upsert(self, doc: Mapping[str, Any], key_field: str = "task_id") -> bool:
        """Insert or replace by key; returns True when it replaced.

        Later lifecycle messages for the same task (RUNNING then
        FINISHED) collapse into the freshest record, merging fields so a
        FINISHED update cannot erase telemetry captured at start.
        """
        key = doc.get(key_field)
        if key is None:
            raise DatabaseError(f"upsert requires {key_field!r} in the document")
        with self._lock:
            idx = self._by_key.get(str(key))
            if idx is None:
                self._by_key[str(key)] = len(self._docs)
                self._docs.append(dict(doc))
                return False
            merged = dict(self._docs[idx])
            for k, v in doc.items():
                if v is not None or k not in merged:
                    merged[k] = v
            self._docs[idx] = merged
            return True

    def clear(self) -> None:
        with self._lock:
            self._docs.clear()
            self._by_key.clear()

    # -- reads ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def all(self) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(d) for d in self._docs]

    def find(
        self,
        filt: Mapping[str, Any] | None = None,
        *,
        sort: list[tuple[str, int]] | None = None,
        limit: int | None = None,
        projection: list[str] | None = None,
    ) -> list[dict[str, Any]]:
        with self._lock:
            docs = [d for d in self._docs if _matches(d, filt or {})]
        if sort:
            for path, direction in reversed(sort):
                _sort_docs(docs, path, direction)
        if limit is not None:
            docs = docs[: max(0, limit)]
        if projection:
            docs = [{p: get_path(d, p) for p in projection} for d in docs]
        else:
            docs = [dict(d) for d in docs]
        return docs

    def find_one(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        out = self.find(filt, limit=1)
        return out[0] if out else None

    def count(self, filt: Mapping[str, Any] | None = None) -> int:
        with self._lock:
            return sum(1 for d in self._docs if _matches(d, filt or {}))

    def distinct(self, path: str, filt: Mapping[str, Any] | None = None) -> list[Any]:
        seen: dict[Any, None] = {}
        with self._lock:
            for d in self._docs:
                if _matches(d, filt or {}):
                    v = get_path(d, path)
                    if v is not None:
                        try:
                            seen.setdefault(v, None)
                        except TypeError:
                            seen.setdefault(repr(v), None)
        return list(seen)

    # -- aggregation -----------------------------------------------------------------
    def aggregate(self, pipeline: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
        docs = self.all()
        for stage in pipeline:
            if len(stage) != 1:
                raise DatabaseError(f"each stage must have exactly one key: {stage}")
            op, arg = next(iter(stage.items()))
            if op == "$match":
                docs = [d for d in docs if _matches(d, arg)]
            elif op == "$group":
                docs = self._group(docs, arg)
            elif op == "$sort":
                for path, direction in reversed(list(arg.items())):
                    _sort_docs(docs, path, direction)
            elif op == "$limit":
                docs = docs[: max(0, int(arg))]
            elif op == "$project":
                docs = [{p: get_path(d, p) for p in arg} for d in docs]
            elif op == "$count":
                docs = [{str(arg): len(docs)}]
            else:
                raise DatabaseError(f"unknown pipeline stage {op!r}")
        return docs

    @staticmethod
    def _group(
        docs: list[dict[str, Any]], spec: Mapping[str, Any]
    ) -> list[dict[str, Any]]:
        if "_id" not in spec:
            raise DatabaseError("$group requires an _id expression")
        id_expr = spec["_id"]
        groups: dict[Any, list[dict[str, Any]]] = {}
        order: list[Any] = []
        for d in docs:
            key = get_path(d, id_expr[1:]) if isinstance(id_expr, str) and id_expr.startswith("$") else id_expr
            try:
                hash(key)
            except TypeError:
                key = repr(key)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(d)
        out = []
        for key in order:
            row: dict[str, Any] = {"_id": key}
            for field_name, acc_spec in spec.items():
                if field_name == "_id":
                    continue
                if not isinstance(acc_spec, Mapping) or len(acc_spec) != 1:
                    raise DatabaseError(f"bad accumulator for {field_name!r}")
                acc_op, acc_arg = next(iter(acc_spec.items()))
                fn = _ACCUMULATORS.get(acc_op)
                if fn is None:
                    raise DatabaseError(f"unknown accumulator {acc_op!r}")
                if isinstance(acc_arg, str) and acc_arg.startswith("$"):
                    vals = [get_path(d, acc_arg[1:]) for d in groups[key]]
                else:
                    vals = [acc_arg for _ in groups[key]]
                row[field_name] = fn(vals)
            out.append(row)
        return out


def _sort_docs(docs: list[dict[str, Any]], path: str, direction: int) -> None:
    """Stable in-place sort on a dotted path; nulls last in both directions."""

    def value_key(d: dict[str, Any]):
        v = get_path(d, path)
        return v if isinstance(v, (int, float, str)) else repr(v)

    def has_value(d: dict[str, Any]) -> bool:
        return get_path(d, path) is not None

    with_value = [d for d in docs if has_value(d)]
    without = [d for d in docs if not has_value(d)]
    try:
        with_value.sort(key=value_key, reverse=direction < 0)
    except TypeError:  # mixed types: fall back to string ordering
        with_value.sort(key=lambda d: str(value_key(d)), reverse=direction < 0)
    docs[:] = with_value + without
