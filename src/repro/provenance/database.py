"""Compatibility alias: the document store moved to :mod:`repro.storage`.

The in-memory provenance database grew a pluggable backend seam — a
:class:`~repro.storage.backend.StorageBackend` protocol with the
single-node store (:class:`~repro.storage.memory.ProvenanceDatabase`)
and a hash-partitioned
:class:`~repro.storage.sharded.ShardedProvenanceStore` behind it.  This
module keeps the historical import path working; new code should import
from :mod:`repro.storage`.
"""

from repro.storage.documents import get_path, merge_upsert_doc
from repro.storage.memory import (
    DEFAULT_EQUALITY_INDEX_FIELDS,
    DEFAULT_RANGE_INDEX_FIELDS,
    ProvenanceDatabase,
)

__all__ = [
    "ProvenanceDatabase",
    "get_path",
    "merge_upsert_doc",
    "DEFAULT_EQUALITY_INDEX_FIELDS",
    "DEFAULT_RANGE_INDEX_FIELDS",
]
