"""The LLM server: chat-completion facade over the simulation pipeline.

Mirrors the paper's deployment: the agent talks to an "LLM Server" over
a request/response API; which model serves the request is configuration.
A request carries the fully assembled prompt; the response carries the
generated query code (or prose, when the model failed the format gate),
token accounting, and simulated latency.  Temperature is accepted for
interface fidelity; the paper pins it to zero, and reps still vary
slightly through the seeded rep coordinate — matching the paper's
observation that "LLMs can still produce slight variations even with
the temperature set to zero".

The server is **shared infrastructure**: one instance serves every
session behind the agent gateway, with concurrent ``complete`` calls
from the serving worker pool.  Request accounting (counts, token
totals, a latency reservoir with percentiles) lives behind a lock and
is exposed as a :meth:`stats` snapshot; the generation pipeline itself
is pure, so no lock is held while a request is being served.

``realtime_factor`` optionally *sleeps* a scaled fraction of each
response's simulated latency, turning the virtual cost model into real
wall-clock I/O wait — which is what a remote LLM endpoint looks like to
the serving layer, and what lets the serving benchmark overlap turns
across worker threads the way production would overlap network calls.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ContextWindowExceededError
from repro.llm.generation import GenerationResult, QueryTraits, generate_query_code
from repro.llm.latency import simulate_latency
from repro.llm.profiles import ModelProfile, get_profile
from repro.llm.prompt_reading import perceive
from repro.llm.tokenizer import count_tokens

__all__ = ["ChatRequest", "ChatResponse", "LLMServer"]

#: latency reservoir bound: enough for stable tail percentiles, small
#: enough that insort stays cheap on the request path
_MAX_LATENCY_SAMPLES = 4096


@dataclass
class ChatRequest:
    """One chat-completion request."""

    model: str
    prompt: str
    temperature: float = 0.0
    rep: int = 0
    query_id: str = ""
    traits: QueryTraits | None = None
    #: refuse (like a real API) instead of truncating when True
    strict_context_window: bool = False


@dataclass
class ChatResponse:
    """The model's reply plus accounting."""

    model: str
    text: str
    prompt_tokens: int
    output_tokens: int
    latency_s: float
    truncated: bool
    failures: list[str] = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens


class LLMServer:
    """Serves chat completions for all registered simulated models.

    Thread-safe: many sessions' turns may call :meth:`complete`
    concurrently.  Generation is pure computation; only the accounting
    update takes the stats lock.
    """

    def __init__(self, *, realtime_factor: float = 0.0) -> None:
        if realtime_factor < 0:
            raise ValueError(f"realtime_factor must be >= 0, got {realtime_factor}")
        self.request_count = 0
        self.history: list[tuple[ChatRequest, ChatResponse]] = []
        self.keep_history = False
        #: sleep ``latency_s * realtime_factor`` per request (0 = off)
        self.realtime_factor = realtime_factor
        self._stats_lock = threading.Lock()
        self._prompt_tokens_total = 0
        self._output_tokens_total = 0
        self._simulated_latency_total_s = 0.0
        #: sorted reservoir of the most recent simulated latencies,
        #: paired with a FIFO so eviction drops the oldest sample
        self._latencies: list[float] = []
        self._latency_fifo: deque[float] = deque()

    def complete(self, request: ChatRequest) -> ChatResponse:
        profile = get_profile(request.model)
        prompt_tokens = count_tokens(request.prompt)
        if request.strict_context_window and prompt_tokens > profile.context_window:
            raise ContextWindowExceededError(
                profile.name, prompt_tokens, profile.context_window
            )

        perceived = perceive(request.prompt, profile.context_window)
        result: GenerationResult = generate_query_code(
            profile,
            perceived,
            traits=request.traits,
            rep=request.rep,
            query_id=request.query_id,
        )
        output_tokens = result.output_tokens_hint or count_tokens(result.text)  # provlint: disable=falsy-or-default - a 0 hint means "no hint"
        latency = simulate_latency(
            profile,
            prompt_tokens,
            output_tokens,
            rep=request.rep,
            key=request.query_id or perceived.user_query,
        )
        response = ChatResponse(
            model=profile.name,
            text=result.text,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            latency_s=latency,
            truncated=perceived.truncated,
            failures=list(result.failures),
        )
        with self._stats_lock:
            self.request_count += 1
            self._prompt_tokens_total += prompt_tokens
            self._output_tokens_total += output_tokens
            self._simulated_latency_total_s += latency
            if len(self._latency_fifo) >= _MAX_LATENCY_SAMPLES:
                oldest = self._latency_fifo.popleft()
                i = bisect_left(self._latencies, oldest)
                if i < len(self._latencies) and self._latencies[i] == oldest:
                    self._latencies.pop(i)
            self._latency_fifo.append(latency)
            insort(self._latencies, latency)
            if self.keep_history:
                self.history.append((request, response))
        if self.realtime_factor:
            # outside the lock: this is the (simulated) network wait, and
            # it is exactly what concurrent sessions overlap
            time.sleep(latency * self.realtime_factor)
        return response

    # -- stats -----------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Consistent snapshot of request accounting (thread-safe).

        Latency percentiles are over the simulated per-request
        latencies (seconds) in a bounded most-recent reservoir; token
        totals and request counts are exact since construction.
        """
        with self._stats_lock:
            lat = self._latencies
            n = len(lat)
            return {
                "requests": self.request_count,
                "prompt_tokens": self._prompt_tokens_total,
                "output_tokens": self._output_tokens_total,
                "total_tokens": (
                    self._prompt_tokens_total + self._output_tokens_total
                ),
                "simulated_latency_total_s": self._simulated_latency_total_s,
                "latency_p50_s": lat[int(0.50 * (n - 1))] if n else None,
                "latency_p90_s": lat[int(0.90 * (n - 1))] if n else None,
                "latency_p99_s": lat[int(0.99 * (n - 1))] if n else None,
                "latency_max_s": lat[-1] if n else None,
                "realtime_factor": self.realtime_factor,
            }

    # -- convenience ----------------------------------------------------------
    def models(self) -> list[str]:
        from repro.llm.profiles import MODEL_ORDER

        return list(MODEL_ORDER)
