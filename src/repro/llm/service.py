"""The LLM server: chat-completion facade over the simulation pipeline.

Mirrors the paper's deployment: the agent talks to an "LLM Server" over
a request/response API; which model serves the request is configuration.
A request carries the fully assembled prompt; the response carries the
generated query code (or prose, when the model failed the format gate),
token accounting, and simulated latency.  Temperature is accepted for
interface fidelity; the paper pins it to zero, and reps still vary
slightly through the seeded rep coordinate — matching the paper's
observation that "LLMs can still produce slight variations even with
the temperature set to zero".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ContextWindowExceededError
from repro.llm.generation import GenerationResult, QueryTraits, generate_query_code
from repro.llm.latency import simulate_latency
from repro.llm.profiles import ModelProfile, get_profile
from repro.llm.prompt_reading import perceive
from repro.llm.tokenizer import count_tokens

__all__ = ["ChatRequest", "ChatResponse", "LLMServer"]


@dataclass
class ChatRequest:
    """One chat-completion request."""

    model: str
    prompt: str
    temperature: float = 0.0
    rep: int = 0
    query_id: str = ""
    traits: QueryTraits | None = None
    #: refuse (like a real API) instead of truncating when True
    strict_context_window: bool = False


@dataclass
class ChatResponse:
    """The model's reply plus accounting."""

    model: str
    text: str
    prompt_tokens: int
    output_tokens: int
    latency_s: float
    truncated: bool
    failures: list[str] = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens


class LLMServer:
    """Serves chat completions for all registered simulated models."""

    def __init__(self) -> None:
        self.request_count = 0
        self.history: list[tuple[ChatRequest, ChatResponse]] = []
        self.keep_history = False

    def complete(self, request: ChatRequest) -> ChatResponse:
        profile = get_profile(request.model)
        prompt_tokens = count_tokens(request.prompt)
        if request.strict_context_window and prompt_tokens > profile.context_window:
            raise ContextWindowExceededError(
                profile.name, prompt_tokens, profile.context_window
            )

        perceived = perceive(request.prompt, profile.context_window)
        result: GenerationResult = generate_query_code(
            profile,
            perceived,
            traits=request.traits,
            rep=request.rep,
            query_id=request.query_id,
        )
        output_tokens = result.output_tokens_hint or count_tokens(result.text)
        latency = simulate_latency(
            profile,
            prompt_tokens,
            output_tokens,
            rep=request.rep,
            key=request.query_id or perceived.user_query,
        )
        response = ChatResponse(
            model=profile.name,
            text=result.text,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            latency_s=latency,
            truncated=perceived.truncated,
            failures=list(result.failures),
        )
        self.request_count += 1
        if self.keep_history:
            self.history.append((request, response))
        return response

    # -- convenience ----------------------------------------------------------
    def models(self) -> list[str]:
        from repro.llm.profiles import MODEL_ORDER

        return list(MODEL_ORDER)
