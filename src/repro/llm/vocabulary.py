"""Field knowledge vocabulary for the simulated models.

* ``COMMON_FIELDS_PRIOR`` — provenance fields a capable model can guess
  without seeing the schema (they appear throughout public workflow
  tooling: task/workflow ids, status, hostname, timestamps).
* ``HALLUCINATIONS`` — the plausible-but-wrong names a model invents
  when it does not know a field.  The entries mirror the paper's
  observations verbatim: LLaMA 3-8B "hallucinated non-existing fields
  like ``node`` or ``execution_id``".
* ``GUIDELINE_FIELD_HINTS`` — fields whose names the static query
  guidelines mention explicitly; a model that follows the guidelines
  can emit them without schema access.
"""

from __future__ import annotations

__all__ = [
    "COMMON_FIELDS_PRIOR",
    "HALLUCINATIONS",
    "GUIDELINE_FIELD_HINTS",
    "hallucination_for",
]

COMMON_FIELDS_PRIOR = frozenset(
    {
        "task_id",
        "campaign_id",
        "workflow_id",
        "activity_id",
        "status",
        "hostname",
        "started_at",
        "ended_at",
        "type",
    }
)

HALLUCINATIONS: dict[str, tuple[str, ...]] = {
    "hostname": ("node", "host", "machine_name"),
    "task_id": ("execution_id", "id", "run_id"),
    "workflow_id": ("wf_id", "pipeline_id"),
    "activity_id": ("activity", "step", "task_name"),
    "status": ("state", "task_status"),
    "started_at": ("timestamp", "start_time", "time"),
    "ended_at": ("end_time", "finish_time"),
    "duration": ("execution_time", "elapsed", "wall_time", "runtime"),
    "telemetry_at_end.cpu.percent": ("cpu_usage", "cpu", "cpu_percent"),
    "telemetry_at_end.mem.percent": ("memory_usage", "mem", "ram_percent"),
    "telemetry_at_start.cpu.percent": ("cpu_at_start", "initial_cpu"),
    "generated.value": ("output", "result", "value"),
    "used.x": ("input", "x", "input_value"),
    "generated.bond_id": ("bond", "bond_label", "bond_name"),
    "generated.bd_energy": ("bde", "bond_energy", "dissociation_energy"),
    "generated.bd_enthalpy": ("enthalpy", "bde_enthalpy", "bond_enthalpy"),
    "generated.bd_free_energy": ("free_energy", "gibbs_energy"),
    "used.functional": ("functional", "dft_functional", "method"),
    "generated.n_atoms": ("atom_count", "natoms", "num_atoms"),
    "generated.multiplicity": ("multiplicity", "spin_multiplicity"),
    "generated.charge": ("charge", "total_charge"),
    "generated.e0": ("energy", "electronic_energy", "e_total"),
}

_GENERIC_HALLUCINATIONS = ("field", "value", "data", "metric")

#: fields that the static guideline set names explicitly (see
#: repro.agent.guidelines.STATIC_GUIDELINES) — following guidelines makes
#: them emittable even without the schema section.
GUIDELINE_FIELD_HINTS = frozenset(
    {
        "started_at",
        "duration",
        "status",
        "activity_id",
        "hostname",
        "telemetry_at_end.cpu.percent",
        "telemetry_at_end.mem.percent",
        "generated.value",
        "used.x",
        "task_id",
        "workflow_id",
    }
)


def hallucination_for(canonical: str, pick: int) -> str:
    """A deterministic plausible-but-wrong name for ``canonical``."""
    options = HALLUCINATIONS.get(canonical, _GENERIC_HALLUCINATIONS)
    return options[pick % len(options)]
