"""Latency model for simulated LLM calls.

Response time = provider base latency (network + queueing)
              + prompt-processing time (per 1k prompt tokens)
              + decoding time (per output token)
              + seeded jitter.

Parameters live in the model profiles and are set so that full-context
queries land around the paper's ~2 s interactive bound, with the small
local LLaMA deployment fastest per token but slower per prompt token,
and the cloud frontier models dominated by their base latency.
"""

from __future__ import annotations

from repro.llm.profiles import ModelProfile
from repro.utils.seeding import derive_rng

__all__ = ["simulate_latency"]


def simulate_latency(
    profile: ModelProfile,
    prompt_tokens: int,
    output_tokens: int,
    *,
    rep: int = 0,
    key: str = "",
) -> float:
    """Seconds for one chat completion (deterministic per coordinates)."""
    rng = derive_rng("latency", profile.name, key, rep)
    jitter = float(rng.normal(0.0, profile.latency_jitter_s))
    seconds = (
        profile.latency_base_s
        + profile.latency_per_1k_prompt_tokens_s * (prompt_tokens / 1000.0)
        + profile.latency_per_output_token_s * output_tokens
        + jitter
    )
    return max(0.05, seconds)
