"""Pipeline mutations: the concrete shapes of model mistakes.

Each function takes a (frozen) pipeline and returns a corrupted variant.
The catalogue matches the error classes the paper reports from judge
feedback: hallucinated fields, ``.min()`` on IDs instead of timestamps,
broken group-by logic, flipped time comparisons, dropped scope filters
(the Q5 "summed all molecules" error), wrong aggregation choices, and
missing limits.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.query import ast as q

__all__ = [
    "rewrite_fields",
    "flip_sort_direction",
    "sort_by_wrong_field",
    "min_on_ids",
    "drop_groupby",
    "wrong_group_key",
    "flip_time_comparison",
    "drop_filter_conjunct",
    "swap_aggregation",
    "drop_limit",
    "lowercase_string_literal",
    "rescale_threshold",
    "LOGIC_MUTATIONS",
]


def _map_predicate(pred: q.Predicate, fn: Callable[[q.Predicate], q.Predicate]) -> q.Predicate:
    if isinstance(pred, q.And):
        return q.And(_map_predicate(pred.left, fn), _map_predicate(pred.right, fn))
    if isinstance(pred, q.Or):
        return q.Or(_map_predicate(pred.left, fn), _map_predicate(pred.right, fn))
    if isinstance(pred, q.Not):
        return q.Not(_map_predicate(pred.operand, fn))
    return fn(pred)


def rewrite_fields(pipeline: q.Pipeline, mapping: Mapping[str, str]) -> q.Pipeline:
    """Rename every field reference through ``mapping`` (identity if absent)."""

    def m(name: str) -> str:
        return mapping.get(name, name)

    def fix_leaf(pred: q.Predicate) -> q.Predicate:
        if isinstance(pred, q.Compare):
            return q.Compare(q.Field(m(pred.field.name)), pred.op, pred.value)
        if isinstance(pred, q.StrContains):
            return q.StrContains(q.Field(m(pred.field.name)), pred.pattern, pred.case)
        if isinstance(pred, q.StrStartsWith):
            return q.StrStartsWith(q.Field(m(pred.field.name)), pred.prefix)
        if isinstance(pred, q.StrEndsWith):
            return q.StrEndsWith(q.Field(m(pred.field.name)), pred.suffix)
        if isinstance(pred, q.IsIn):
            return q.IsIn(q.Field(m(pred.field.name)), pred.values)
        if isinstance(pred, q.Between):
            return q.Between(q.Field(m(pred.field.name)), pred.low, pred.high)
        if isinstance(pred, q.NotNull):
            return q.NotNull(q.Field(m(pred.field.name)))
        if isinstance(pred, q.IsNull):
            return q.IsNull(q.Field(m(pred.field.name)))
        return pred

    steps: list[q.Step] = []
    for step in pipeline.steps:
        if isinstance(step, q.Filter):
            steps.append(q.Filter(_map_predicate(step.predicate, fix_leaf)))
        elif isinstance(step, q.Project):
            steps.append(q.Project(tuple(m(c) for c in step.columns)))
        elif isinstance(step, q.Sort):
            steps.append(q.Sort(tuple(m(k) for k in step.keys), step.ascending))
        elif isinstance(step, q.GroupAgg):
            steps.append(
                q.GroupAgg(tuple(m(k) for k in step.keys), m(step.column), step.agg)
            )
        elif isinstance(step, q.Agg):
            steps.append(q.Agg(m(step.column), step.agg))
        elif isinstance(step, q.Unique):
            steps.append(q.Unique(m(step.column)))
        elif isinstance(step, q.DropDuplicates):
            steps.append(q.DropDuplicates(tuple(m(c) for c in step.subset)))
        else:
            steps.append(step)
    return q.Pipeline(tuple(steps))


# ---------------------------------------------------------------------------
# logic mutations (trap -> concrete mistake)
# ---------------------------------------------------------------------------


def flip_sort_direction(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    steps = tuple(
        q.Sort(s.keys, tuple(not a for a in s.ascending)) if isinstance(s, q.Sort) else s
        for s in p.steps
    )
    return q.Pipeline(steps)


def sort_by_wrong_field(p: q.Pipeline, pick: int = 0) -> q.Pipeline:
    """Sort by a tempting-but-wrong key (ended_at or task_id for time sorts)."""
    wrong = ("ended_at", "task_id")[pick % 2]
    steps = tuple(
        q.Sort((wrong,) + s.keys[1:], s.ascending) if isinstance(s, q.Sort) else s
        for s in p.steps
    )
    return q.Pipeline(steps)


def min_on_ids(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    """The paper's GPT/Claude slip: '.min() on IDs instead of timestamps'."""
    steps = []
    for s in p.steps:
        if isinstance(s, q.Sort) and any(k.endswith("_at") for k in s.keys):
            steps.append(q.Sort(("task_id",), s.ascending))
        elif isinstance(s, q.Agg) and s.column.endswith("_at"):
            steps.append(q.Agg("task_id", "min"))
        else:
            steps.append(s)
    return q.Pipeline(tuple(steps))


def drop_groupby(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    """Aggregate the whole column instead of per group (truncates any
    post-group sort/head, which no longer makes sense on a scalar)."""
    steps: list[q.Step] = []
    for s in p.steps:
        if isinstance(s, q.GroupAgg):
            steps.append(q.Agg(s.column, s.agg))
            break
        steps.append(s)
    return q.Pipeline(tuple(steps))


def wrong_group_key(p: q.Pipeline, pick: int = 0) -> q.Pipeline:
    alternates = ("workflow_id", "status", "hostname", "activity_id")

    def fix(s: q.Step) -> q.Step:
        if isinstance(s, q.GroupAgg):
            current = s.keys[0]
            for i in range(len(alternates)):
                cand = alternates[(pick + i) % len(alternates)]
                if cand != current:
                    return q.GroupAgg((cand,), s.column, s.agg)
        return s

    return q.Pipeline(tuple(fix(s) for s in p.steps))


def flip_time_comparison(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    flip = {">": "<", ">=": "<=", "<": ">", "<=": ">="}

    def fix_leaf(pred: q.Predicate) -> q.Predicate:
        if isinstance(pred, q.Compare) and pred.op in flip and isinstance(
            pred.value, (int, float)
        ):
            return q.Compare(pred.field, flip[pred.op], pred.value)
        return pred

    steps = tuple(
        q.Filter(_map_predicate(s.predicate, fix_leaf)) if isinstance(s, q.Filter) else s
        for s in p.steps
    )
    return q.Pipeline(steps)


def drop_filter_conjunct(p: q.Pipeline, pick: int = 0) -> q.Pipeline:
    """Forget one filter condition — the scope error behind §5.3 Q5."""
    steps: list[q.Step] = []
    for s in p.steps:
        if isinstance(s, q.Filter):
            conjuncts = q.conjuncts(s.predicate)
            if len(conjuncts) > 1:
                keep = [c for i, c in enumerate(conjuncts) if i != pick % len(conjuncts)]
                pred = keep[0]
                for extra in keep[1:]:
                    pred = q.And(pred, extra)
                steps.append(q.Filter(pred))
                continue
            # a single-conjunct scope filter gets dropped entirely
            continue
        steps.append(s)
    return q.Pipeline(tuple(steps))


def swap_aggregation(p: q.Pipeline, pick: int = 0) -> q.Pipeline:
    swaps = {
        "mean": ("sum", "median"),
        "sum": ("mean", "count"),
        "count": ("nunique", "sum"),
        "max": ("min", "mean"),
        "min": ("max", "mean"),
        "median": ("mean", "mean"),
        "nunique": ("count", "count"),
    }

    def fix(s: q.Step) -> q.Step:
        if isinstance(s, q.Agg) and s.agg in swaps:
            return q.Agg(s.column, swaps[s.agg][pick % 2])
        if isinstance(s, q.GroupAgg) and s.agg in swaps:
            return q.GroupAgg(s.keys, s.column, swaps[s.agg][pick % 2])
        return s

    return q.Pipeline(tuple(fix(s) for s in p.steps))


def drop_limit(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    return q.Pipeline(tuple(s for s in p.steps if not isinstance(s, (q.Head, q.Tail))))


def lowercase_string_literal(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    def fix_leaf(pred: q.Predicate) -> q.Predicate:
        if isinstance(pred, q.Compare) and isinstance(pred.value, str):
            return q.Compare(pred.field, pred.op, pred.value.lower())
        return pred

    steps = tuple(
        q.Filter(_map_predicate(s.predicate, fix_leaf)) if isinstance(s, q.Filter) else s
        for s in p.steps
    )
    return q.Pipeline(steps)


def rescale_threshold(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    """Unit slip: percent thresholds read as fractions (80 -> 0.8)."""

    def fix_leaf(pred: q.Predicate) -> q.Predicate:
        if (
            isinstance(pred, q.Compare)
            and isinstance(pred.value, (int, float))
            and not isinstance(pred.value, bool)
            and pred.op in (">", ">=", "<", "<=")
            and abs(pred.value) > 1
        ):
            return q.Compare(pred.field, pred.op, float(pred.value) / 100.0)
        return pred

    steps = tuple(
        q.Filter(_map_predicate(s.predicate, fix_leaf)) if isinstance(s, q.Filter) else s
        for s in p.steps
    )
    return q.Pipeline(steps)


def sum_across_entities(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    """The §5.3 Q5 failure: drop the entity-scoping filter and sum the
    metric across *all* matching records (81 atoms instead of 9)."""
    steps: list[q.Step] = []
    for s in p.steps:
        if isinstance(s, q.Filter):
            conj = q.conjuncts(s.predicate)
            if len(conj) > 1:
                pred = conj[0]
                for extra in conj[1:-1]:
                    pred = q.And(pred, extra)
                steps.append(q.Filter(pred))
            # a lone scope filter is dropped entirely
        elif isinstance(s, q.Project):
            numeric_last = s.columns[-1]
            steps.append(q.Agg(numeric_last, "sum"))
            break
        elif isinstance(s, q.Agg):
            steps.append(q.Agg(s.column, "sum"))
            break
        else:
            steps.append(s)
    return q.Pipeline(tuple(steps))


def projection_jitter(p: q.Pipeline, pick: int = 0) -> q.Pipeline:
    """Project different columns than asked (drop one / collapse to ids)."""
    steps: list[q.Step] = []
    for s in p.steps:
        if isinstance(s, q.Project):
            if len(s.columns) > 1 and pick % 2 == 0:
                steps.append(q.Project(s.columns[:-1]))
            else:
                steps.append(q.Project(("task_id",)))
        else:
            steps.append(s)
    return q.Pipeline(tuple(steps))


def spurious_limit(p: q.Pipeline, _pick: int = 0) -> q.Pipeline:
    """Append an unasked-for head(10) to a listing query."""
    if p.terminal() is not None or p.limit() is not None:
        return p
    steps = list(p.steps)
    if steps and isinstance(steps[-1], q.Project):
        steps.insert(len(steps) - 1, q.Head(10))
    else:
        steps.append(q.Head(10))
    return q.Pipeline(tuple(steps))


#: generic formulation slips any query can suffer without guidelines
FORMULATION_MUTATIONS: tuple[Callable[[q.Pipeline, int], q.Pipeline], ...] = (
    projection_jitter,
    spurious_limit,
    swap_aggregation,
    flip_sort_direction,
    drop_filter_conjunct,
)

#: trap tag -> candidate mutations; generation picks one deterministically.
LOGIC_MUTATIONS: dict[str, tuple[Callable[[q.Pipeline, int], q.Pipeline], ...]] = {
    "sort_field": (sort_by_wrong_field, min_on_ids),
    "sort_direction": (flip_sort_direction,),
    "recent_vs_first": (flip_sort_direction, min_on_ids),
    "group_logic": (drop_groupby, wrong_group_key),
    "time_comparison": (flip_time_comparison,),
    "scope_filter": (drop_filter_conjunct,),
    "entity_scoping": (sum_across_entities,),
    "agg_choice": (swap_aggregation,),
    "limit": (drop_limit,),
    "graph_reasoning": (drop_filter_conjunct, swap_aggregation, wrong_group_key),
    "derived_duration": (sort_by_wrong_field, min_on_ids),
    "plot_grouping": (drop_groupby,),
}
