"""Adaptive LLM routing by query class (paper §5.4, future work).

"No single model performs best across all workloads and data types,
motivating future research on dynamic LLM routing based on query
classes."  This module implements that idea:

* :class:`RoutingPolicy` — a per-class model choice table;
* :func:`learn_policy` — builds a policy from evaluation records (pick
  the model with the best mean of per-query median scores for each
  (workload, data type) class, with a tie margin that prefers cheaper
  models);
* :class:`AdaptiveModelRouter` — classifies an incoming query (using
  its registered traits or cheap lexical heuristics) and returns the
  model to use.

An ablation benchmark (``bench_ablation_routing.py``) verifies the
routed ensemble at least matches the best fixed model.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.evaluation.query_set import EvalQuery
from repro.evaluation.runner import EvaluationRecord, median_by
from repro.evaluation.taxonomy import DataType, Workload

__all__ = ["RoutingPolicy", "learn_policy", "AdaptiveModelRouter", "classify_text"]

#: rough relative cost per call (frontier APIs are pricier); used to
#: break near-ties in favour of cheaper models
MODEL_COST: dict[str, float] = {
    "llama3-8b": 0.1,
    "llama3-70b": 0.3,
    "gemini-2.5-flash-lite": 0.2,
    "gpt-4": 1.0,
    "claude-opus-4": 1.2,
}

ClassKey = tuple[str, str]  # (workload, data type)


@dataclass
class RoutingPolicy:
    """Per-class model table with a global default."""

    default_model: str
    table: dict[ClassKey, str] = field(default_factory=dict)

    def model_for(self, workload: str, data_type: str) -> str:
        return self.table.get((workload, data_type), self.default_model)

    def distinct_models(self) -> set[str]:
        return set(self.table.values()) | {self.default_model}


def learn_policy(
    records: Sequence[EvaluationRecord],
    queries: Sequence[EvalQuery],
    *,
    judge: str = "gpt-judge",
    tie_margin: float = 0.02,
) -> RoutingPolicy:
    """Learn the best model per (workload, data type) from a calibration run.

    Within ``tie_margin`` of the best score, the cheapest model wins —
    the practical routing objective is accuracy per dollar.
    """
    q_by_id = {q.qid: q for q in queries}
    medians = median_by(records, judge=judge, keys=("model", "qid"))

    per_class: dict[ClassKey, dict[str, list[float]]] = {}
    overall: dict[str, list[float]] = {}
    for (model, qid), score in medians.items():
        query = q_by_id[qid]
        overall.setdefault(model, []).append(score)
        for dt in query.data_types:
            key = (query.workload.value, dt.value)
            per_class.setdefault(key, {}).setdefault(model, []).append(score)

    def pick(scores_by_model: Mapping[str, list[float]]) -> str:
        means = {m: statistics.mean(v) for m, v in scores_by_model.items()}
        best_score = max(means.values())
        contenders = [m for m, s in means.items() if s >= best_score - tie_margin]
        return min(contenders, key=lambda m: MODEL_COST.get(m, 1.0))

    default = pick(overall)
    table = {key: pick(by_model) for key, by_model in per_class.items()}
    return RoutingPolicy(default_model=default, table=table)


# ---------------------------------------------------------------------------
# lightweight query classification (for unlabelled production queries)
# ---------------------------------------------------------------------------

_OLAP_MARKERS = (
    "per ",
    "by ",
    "for each",
    "average",
    "mean",
    "total",
    "breakdown",
    "across all",
    "top ",
    "most frequently",
)
_TYPE_MARKERS: dict[str, tuple[str, ...]] = {
    DataType.TELEMETRY.value: ("cpu", "memory", "duration", "longest", "telemetry", "runtime"),
    DataType.SCHEDULING.value: ("host", "node", "ran on", "where", "machine", "placement"),
    DataType.DATAFLOW.value: ("value", "input", "output", "generated", "produced", "energy", "enthalpy"),
    DataType.CONTROL_FLOW.value: ("status", "failed", "finished", "running", "activity", "step", "recent", "first"),
}


def classify_text(nl: str) -> tuple[str, str]:
    """Heuristic (workload, data type) guess for an unlabelled query."""
    low = nl.lower()
    workload = (
        Workload.OLAP.value
        if any(m in low for m in _OLAP_MARKERS)
        else Workload.OLTP.value
    )
    best_type = DataType.CONTROL_FLOW.value
    best_hits = 0
    for dtype, markers in _TYPE_MARKERS.items():
        hits = sum(1 for m in markers if m in low)
        if hits > best_hits:
            best_type, best_hits = dtype, hits
    return workload, best_type


class AdaptiveModelRouter:
    """Chooses the serving model per query (paper's envisioned router)."""

    def __init__(self, policy: RoutingPolicy):
        self.policy = policy
        self.decisions: list[tuple[str, str]] = []  # (query, model)

    def route(self, nl: str, *, query: EvalQuery | None = None) -> str:
        if query is not None:
            # labelled queries: majority vote over their data types
            votes: dict[str, int] = {}
            for dt in query.data_types:
                m = self.policy.model_for(query.workload.value, dt.value)
                votes[m] = votes.get(m, 0) + 1
            model = max(votes, key=lambda m: (votes[m], -MODEL_COST.get(m, 1.0)))
        else:
            workload, dtype = classify_text(nl)
            model = self.policy.model_for(workload, dtype)
        self.decisions.append((nl, model))
        return model
