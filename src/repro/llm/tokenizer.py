"""Approximate tokenizer for prompt budgeting.

A deterministic, dependency-free approximation of BPE token counts:
text splits into word / number / punctuation units, and each word
contributes roughly ``ceil(len/4)`` subword pieces (the familiar
"~4 characters per token" rule), with short common words costing one.
Counts land within ~10 % of real tokenizers on English-plus-code text,
which is all the evaluation needs — Figure 8 compares *relative* token
budgets across prompt configurations.
"""

from __future__ import annotations

import math
import re

__all__ = ["count_tokens", "split_units"]

_UNIT_RE = re.compile(
    r"[A-Za-z]+|\d+(?:\.\d+)?|[^\sA-Za-z0-9]"
)


def split_units(text: str) -> list[str]:
    """Split text into word/number/punctuation units."""
    return _UNIT_RE.findall(text)


def count_tokens(text: str) -> int:
    """Approximate LLM token count of ``text``."""
    if not text:
        return 0
    total = 0
    for unit in split_units(text):
        if unit.isalpha():
            total += max(1, math.ceil(len(unit) / 4))
        elif unit[0].isdigit():
            total += max(1, math.ceil(len(unit) / 3))
        else:
            total += 1
    return total
