"""Rule-based semantic core: natural language -> DataFrame pipeline.

This is the "pretrained competence" of every simulated LLM: given a
natural-language provenance question and a *field resolver* (which
embodies how much the model actually knows about the schema — from the
prompt, from prior knowledge, or hallucinated), it produces the intended
query pipeline.

The same engine serves two roles:

* with an **oracle resolver** (full schema knowledge) it defines the
  golden queries of the evaluation set — so gold answers and model
  behaviour can never drift apart structurally;
* inside :mod:`repro.llm.generation` each simulated model runs it with a
  **knowledge-gated resolver**, after which failure injection corrupts
  the result.

The grammar is intent-template based: counting, aggregation, group-by,
ordering (most recent / top-k / longest), targeted filters (task,
workflow, activity, host, status, thresholds, substring matches) and
projections, over a concept vocabulary that covers the common schema,
the synthetic workflow, and the chemistry workflow.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field
from typing import Callable

from repro.query import ast as q

__all__ = [
    "Concept",
    "CONCEPTS",
    "FieldResolver",
    "OracleResolver",
    "parse_intent",
    "SemanticParseError",
]


class SemanticParseError(Exception):
    """The NL query did not match any intent template."""


# ---------------------------------------------------------------------------
# Concept vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Concept:
    """A queryable field concept with its NL trigger patterns."""

    canonical: str  # canonical column in the flattened context frame
    kind: str  # "metric" | "categorical" | "id" | "time" | "text"
    patterns: tuple[str, ...]  # regexes, matched case-insensitively

    def mentioned_in(self, text: str) -> bool:
        return any(re.search(p, text, re.IGNORECASE) for p in self.patterns)


CONCEPTS: tuple[Concept, ...] = (
    # --- common schema -------------------------------------------------------
    Concept("hostname", "categorical", (r"\bhost(name)?s?\b", r"\bnodes?\b", r"\bmachine\b", r"\bwhere\b.*\b(run|ran|execut)", r"\b(run|ran) on\b")),
    Concept("status", "categorical", (r"\bstatus(es)?\b", r"\bstate\b",)),
    Concept("duration", "metric", (r"\bdurations?\b", r"\blongest[- ]running\b", r"\bruntimes?\b", r"\bbusy time\b", r"\btook\b", r"\blongest\b", r"\bexecution time\b")),
    Concept("started_at", "time", (r"\bstart(ed)?( time| at)?\b", r"\bbegan\b",)),
    Concept("ended_at", "time", (r"\bend(ed)?( time| at)?\b",)),
    Concept("activity_id", "categorical", (r"\bactivit(y|ies)\b", r"\bstep name\b", r"\btask types?\b")),
    Concept("task_id", "id", (r"\btasks? [\"']?[0-9][\w.\-_]*\b", r"\btask id\b")),
    Concept("workflow_id", "id", (r"\bworkflows?\b",)),
    Concept("campaign_id", "id", (r"\bcampaigns?\b",)),
    Concept("telemetry_at_end.cpu.percent", "metric", (r"\bcpu\b",)),
    Concept("telemetry_at_end.mem.percent", "metric", (r"\bmemory\b", r"\bmem\b", r"\bram\b")),
    Concept("telemetry_at_start.cpu.percent", "metric", (r"\bcpu\b.*\bat (the )?start\b", r"\bstart(ing)? cpu\b")),
    # --- synthetic workflow ---------------------------------------------------
    Concept("generated.value", "metric", (r"\b(output|produced?|generated|result(ing)?) values?\b", r"\bvalues? (produced|generated|output)\b", r"\bfinal (value|output)\b", r"\boutputs?\b")),
    Concept("used.x", "metric", (r"\binput x\b", r"\bx (value|input)\b", r"\bstart(ing|ed)? with\b")),
    # --- chemistry workflow -----------------------------------------------------
    Concept("generated.bond_id", "text", (r"\bbond( label| id)?s?\b",)),
    Concept("generated.bd_free_energy", "metric", (r"\b(dissociation )?free energy\b",)),
    Concept("generated.bd_enthalpy", "metric", (r"\b(bond |dissociation )*enthalp(y|ies)\b",)),
    Concept("generated.bd_energy", "metric", (r"\b(bond |dissociation )+energ(y|ies)\b", r"\bbde\b")),
    Concept("used.functional", "categorical", (r"\bfunctionals?\b",)),
    Concept("generated.n_atoms", "metric", (r"\b(number of |n_?)atoms\b", r"\batom counts?\b")),
    Concept("generated.multiplicity", "categorical", (r"\bmultiplicit(y|ies)\b", r"\bspin\b")),
    Concept("generated.charge", "categorical", (r"\bcharges?\b",)),
    Concept("generated.e0", "metric", (r"\belectronic energ(y|ies)\b", r"\be0\b")),
)

_CONCEPT_BY_FIELD = {c.canonical: c for c in CONCEPTS}

#: fields whose values are workflow-step names (resolved via schema values)
_STATUS_WORDS = {
    "running": "RUNNING",
    "finished": "FINISHED",
    "completed": "FINISHED",
    "succeeded": "FINISHED",
    "failed": "FAILED",
    "submitted": "SUBMITTED",
}


# ---------------------------------------------------------------------------
# Field resolvers
# ---------------------------------------------------------------------------


class FieldResolver:
    """Maps a conceptual field name to the name the model will emit.

    The oracle resolver returns it unchanged; knowledge-gated resolvers
    (see :mod:`generation`) may substitute hallucinated names.
    """

    def resolve(self, canonical: str) -> str:
        raise NotImplementedError

    def resolve_status_value(self, value: str) -> str:
        """How the model spells a status literal (case sensitivity trap)."""
        return value


class OracleResolver(FieldResolver):
    def resolve(self, canonical: str) -> str:
        return canonical


# ---------------------------------------------------------------------------
# Intent parsing
# ---------------------------------------------------------------------------


@dataclass
class _Intent:
    filters: list[q.Predicate] = dc_field(default_factory=list)
    group_by: str | None = None
    agg: tuple[str, str] | None = None  # (agg name, field)
    sort: tuple[str, bool] | None = None  # (field, ascending)
    limit: int | None = None
    projection: list[str] = dc_field(default_factory=list)
    count: bool = False
    unique: str | None = None
    metric_hint: str | None = None  # first mentioned metric concept


_NUM_RE = r"(-?\d+(?:\.\d+)?)"


def parse_intent(
    text: str,
    *,
    resolver: FieldResolver | None = None,
    activity_names: tuple[str, ...] = (),
    known_ids: dict[str, str] | None = None,
) -> q.Pipeline:
    """Parse an NL provenance question into a query pipeline.

    Parameters
    ----------
    text:
        The natural-language question.
    resolver:
        Field-knowledge gate; defaults to the oracle.
    activity_names:
        Workflow step names usable in ``activity_id`` filters (the agent
        supplies these from the dynamic dataflow schema's example values).
    known_ids:
        Maps literal id strings appearing in the text to their id field,
        e.g. ``{"4f2051b9": "workflow_id"}``.
    """
    r = resolver if resolver is not None else OracleResolver()
    low = " " + text.lower().strip().rstrip("?.!") + " "
    intent = _Intent()

    mentioned = _mentioned_concepts(low, activity_names)

    if known_ids is None:
        known_ids = {}
    _extract_filters(low, text, intent, r, activity_names, known_ids, mentioned)
    _extract_shape(low, intent, r, mentioned)
    _finalise_projection(low, intent, r, mentioned)

    return _to_pipeline(intent, r)


def _mentioned_concepts(low: str, activity_names: tuple[str, ...]) -> list[Concept]:
    found: list[tuple[int, Concept]] = []
    for c in CONCEPTS:
        for p in c.patterns:
            m = re.search(p, low, re.IGNORECASE)
            if m:
                found.append((m.start(), c))
                break
    # order by first appearance; de-duplicate on canonical
    found.sort(key=lambda t: t[0])
    seen: set[str] = set()
    out: list[Concept] = []
    for _, c in found:
        if c.canonical not in seen:
            seen.add(c.canonical)
            out.append(c)
    return out


def _extract_filters(
    low: str,
    original: str,
    intent: _Intent,
    r: FieldResolver,
    activity_names: tuple[str, ...],
    known_ids: dict[str, str],
    mentioned: list[Concept],
) -> None:
    # explicit ids quoted or matching the known-id registry
    for literal, id_field in known_ids.items():
        if literal.lower() in low:
            intent.filters.append(
                q.Compare(q.Field(r.resolve(id_field)), "==", literal)
            )

    # status words ("running tasks", "failed", ...)
    for word, value in _STATUS_WORDS.items():
        if re.search(rf"\b{word}\b", low) and not re.search(
            rf"\blongest[- ]{word}\b", low
        ):
            intent.filters.append(
                q.Compare(
                    q.Field(r.resolve("status")), "==", r.resolve_status_value(value)
                )
            )
            break

    # activity mentions ("the power task", "average_results", ...)
    for name in activity_names:
        if re.search(rf"\b{re.escape(name.lower())}\b", low):
            intent.filters.append(
                q.Compare(q.Field(r.resolve("activity_id")), "==", name)
            )
            break

    # host mentions ("on node-2", "on host frontier00084")
    m = re.search(r"\bon (?:host |node )?([\w\-.]*(?:node|frontier|host)[\w\-.]*)\b", low)
    if m:
        intent.filters.append(
            q.Compare(q.Field(r.resolve("hostname")), "==", m.group(1))
        )

    # substring filters: labels containing 'C-H'
    m = re.search(r"\b(?:contain(?:ing|s)?|with)\s+[\"']([^\"']+)[\"']", original)
    if m:
        target = "generated.bond_id"
        for c in mentioned:
            if c.kind == "text":
                target = c.canonical
                break
        intent.filters.append(
            q.StrContains(q.Field(r.resolve(target)), m.group(1))
        )

    # numeric thresholds: "above 80", "greater than 100", "below 20",
    # "exceeded 50 percent"
    for pattern, op in (
        (rf"\b(?:above|over|greater than|more than|exceed(?:ed|ing|s)?|at least)\s+{_NUM_RE}", ">"),
        (rf"\b(?:below|under|less than|at most)\s+{_NUM_RE}", "<"),
    ):
        m = re.search(pattern, low)
        if m:
            value = float(m.group(1))
            if value == int(value):
                value = int(value)
            target = _threshold_target(low, mentioned)
            if target is not None:
                op_final = ">=" if "at least" in m.group(0) else (
                    "<=" if "at most" in m.group(0) else op
                )
                intent.filters.append(
                    q.Compare(q.Field(r.resolve(target)), op_final, value)
                )


def _threshold_target(low: str, mentioned: list[Concept]) -> str | None:
    metrics = [c for c in mentioned if c.kind == "metric"]
    if metrics:
        return metrics[-1].canonical  # the metric nearest the threshold phrase
    return None


def _extract_shape(
    low: str, intent: _Intent, r: FieldResolver, mentioned: list[Concept]
) -> None:
    # counting
    if re.search(r"\bhow many\b|\bnumber of tasks\b|\bcount of\b|\bis any\b", low):
        intent.count = True

    # group-by: "per activity", "by host", "for each bond label",
    # "breakdown ... by status"
    m = re.search(r"\b(?:per|by|for each|grouped by)\s+([\w\s.\-]+?)(?:,| and | sorted| order|$)", low)
    if m:
        phrase = m.group(1).strip()
        concept = _best_concept_for_phrase(phrase)
        if concept is not None:
            intent.group_by = concept.canonical

    # top-k: "top 3 ..."
    m = re.search(rf"\btop\s+(\d+)\b", low)
    if m:
        intent.limit = int(m.group(1))
        metric = next((c for c in mentioned if c.kind == "metric"), None)
        if metric is not None:
            intent.sort = (metric.canonical, False)

    # aggregation verbs
    agg: str | None = None
    if re.search(r"\baverage\b|\bmean\b", low):
        agg = "mean"
    elif re.search(r"\btotal\b|\bsum\b", low):
        agg = "sum"
    elif re.search(r"\bmedian\b", low):
        agg = "median"
    elif re.search(r"\bhighest\b|\bmaximum\b|\bmax\b|\bmost\b.*\b(cpu|memory|value|energy|enthalpy)\b", low):
        agg = "max"
    elif re.search(r"\blowest\b|\bminimum\b|\bmin\b", low):
        agg = "min"
    metric = next((c for c in mentioned if c.kind == "metric"), None)
    if metric is not None:
        intent.metric_hint = metric.canonical
    if agg and not intent.count and metric is not None:
        intent.agg = (agg, metric.canonical)

    # "which <categorical> ... <agg>" — e.g. "which host had the highest mean
    # CPU", "which activity most frequently failed": group + order + head(1)
    m = re.search(r"\bwhich\s+(host|node|activity|bond|workflow)\b", low)
    if m and (intent.agg or re.search(r"\bmost frequently\b|\bmost often\b", low)):
        concept = _best_concept_for_phrase(m.group(1))
        if concept is not None:
            intent.group_by = concept.canonical

    # ordering words
    if re.search(r"\bmost recent\b|\blatest\b|\blast task\b", low):
        intent.sort = (r_resolve_safe(r, "started_at"), False)
        if intent.limit is None:
            intent.limit = 1
    elif re.search(r"\bfirst\b|\bearliest\b", low):
        intent.sort = ("started_at", True)
        if intent.limit is None:
            intent.limit = 1
    elif re.search(r"\blongest[- ]running\b|\blongest\b", low) and not intent.agg:
        intent.sort = ("duration", False)
        if intent.limit is None:
            intent.limit = 1

    # "sorted" request on group aggregations
    if re.search(r"\bsorted\b|\border(ed)?\b|\brank(ed|ing)?\b", low) and intent.group_by:
        if intent.sort is None:
            intent.sort = ("__agg__", False)

    # uniqueness: "what functional was used", "which hosts appear"
    if re.search(r"\bwhat .* was used\b|\bdistinct\b|\bunique\b", low):
        cat = next((c for c in mentioned if c.kind in ("categorical", "text")), None)
        if cat is not None and not intent.count:
            intent.unique = cat.canonical


def _best_concept_for_phrase(phrase: str) -> Concept | None:
    phrase = " " + phrase.strip().lower() + " "
    best: Concept | None = None
    for c in CONCEPTS:
        if c.mentioned_in(phrase):
            if best is None:
                best = c
    return best


def r_resolve_safe(r: FieldResolver, name: str) -> str:
    return name  # sort fields resolved at pipeline build time


def _finalise_projection(
    low: str, intent: _Intent, r: FieldResolver, mentioned: list[Concept]
) -> None:
    if intent.count or intent.agg or intent.unique or intent.group_by:
        return
    # project the mentioned, non-filtered concepts; keep task_id for context
    filtered_fields = set()
    for pred in intent.filters:
        filtered_fields |= q.predicate_fields(pred)
    cols: list[str] = []
    for c in mentioned:
        if c.canonical in ("task_id", "workflow_id", "campaign_id"):
            continue
        if c.canonical in filtered_fields:
            continue
        if c.kind == "time" and intent.sort and c.canonical == intent.sort[0]:
            continue
        cols.append(c.canonical)
    if cols:
        intent.projection = ["task_id"] + cols


def _to_pipeline(intent: _Intent, r: FieldResolver) -> q.Pipeline:
    steps: list[q.Step] = []
    if intent.filters:
        pred = intent.filters[0]
        for extra in intent.filters[1:]:
            pred = q.And(pred, extra)
        steps.append(q.Filter(pred))

    if intent.group_by is not None and intent.agg is not None:
        agg_name, agg_field = intent.agg
        steps.append(
            q.GroupAgg((r.resolve(intent.group_by),), r.resolve(agg_field), agg_name)
        )
        return q.Pipeline(tuple(steps))
    if intent.group_by is not None and intent.count:
        # count per group: group-count over task_id
        steps.append(
            q.GroupAgg((r.resolve(intent.group_by),), r.resolve("task_id"), "count")
        )
        return q.Pipeline(tuple(steps))
    if intent.group_by is not None:
        # a grouped question naming a metric but no agg verb reads as
        # "the metric per group" -> mean; otherwise count per group
        if intent.metric_hint is not None:
            steps.append(
                q.GroupAgg(
                    (r.resolve(intent.group_by),),
                    r.resolve(intent.metric_hint),
                    "mean",
                )
            )
        else:
            steps.append(
                q.GroupAgg(
                    (r.resolve(intent.group_by),), r.resolve("task_id"), "count"
                )
            )
        return q.Pipeline(tuple(steps))

    if intent.count:
        steps.append(q.RowCount())
        return q.Pipeline(tuple(steps))

    if intent.unique is not None:
        steps.append(q.Unique(r.resolve(intent.unique)))
        return q.Pipeline(tuple(steps))

    if intent.agg is not None and intent.limit is None:
        agg_name, agg_field = intent.agg
        # "highest/lowest X" reads better as sort+head(1) with context columns
        if agg_name in ("max", "min") and _wants_context(intent):
            steps.append(
                q.Sort((r.resolve(agg_field),), (agg_name == "min",))
            )
            steps.append(q.Head(1))
            if intent.projection:
                steps.append(
                    q.Project(tuple(r.resolve(c) for c in intent.projection))
                )
            return q.Pipeline(tuple(steps))
        steps.append(q.Agg(r.resolve(agg_field), agg_name))
        return q.Pipeline(tuple(steps))

    if intent.sort is not None:
        field_name, asc = intent.sort
        if field_name != "__agg__":
            steps.append(q.Sort((r.resolve(field_name),), (asc,)))
    if intent.limit is not None:
        steps.append(q.Head(intent.limit))
    if intent.projection:
        steps.append(q.Project(tuple(r.resolve(c) for c in intent.projection)))
    if not steps:
        raise SemanticParseError("no intent recognised in query")
    return q.Pipeline(tuple(steps))


def _wants_context(intent: _Intent) -> bool:
    """max/min with identifying companions -> row-style answer."""
    return bool(intent.projection)
