"""Prompt perception: what a simulated model sees in its prompt.

The model attends only to what the prompt contains.  This module parses
the assembled prompt text back into a :class:`PerceivedContext`:
which baseline instructions are present, which fields the dataflow
schema section lists, which example values are given, which guidelines
apply, and the user query itself.

Context-window truncation happens here too: when the prompt exceeds the
model's window, the *tail* of the schema/value sections is effectively
lost (provider-side truncation keeps the beginning).  That is the
mechanism behind the paper's LLaMA 3-8B failure on the chemistry
workflow, whose schema is wide and nested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm import prompt_format as pf
from repro.llm.tokenizer import count_tokens

__all__ = ["PerceivedContext", "perceive"]


@dataclass
class PerceivedContext:
    """Everything the model can act on."""

    has_role: bool = False
    has_job: bool = False
    has_df_description: bool = False
    has_output_format: bool = False
    has_few_shot: bool = False
    schema_fields: set[str] = field(default_factory=set)
    field_types: dict[str, str] = field(default_factory=dict)
    value_examples: dict[str, list] = field(default_factory=dict)
    guidelines: list[str] = field(default_factory=list)
    few_shot_fields: set[str] = field(default_factory=set)
    user_query: str = ""
    prompt_tokens: int = 0
    truncated: bool = False

    @property
    def has_baseline(self) -> bool:
        """Role + job + DataFrame format + output formatting (Table 2)."""
        return (
            self.has_role
            and self.has_job
            and self.has_df_description
            and self.has_output_format
        )

    @property
    def has_schema(self) -> bool:
        return bool(self.schema_fields)

    @property
    def has_values(self) -> bool:
        return bool(self.value_examples)

    @property
    def has_guidelines(self) -> bool:
        return bool(self.guidelines)

    def activity_names(self) -> tuple[str, ...]:
        vals = self.value_examples.get("activity_id", [])
        return tuple(str(v) for v in vals)

    def signature(self) -> str:
        """Stable description of which components are present (for seeding)."""
        return "|".join(
            [
                "B" if self.has_baseline else "-",
                "F" if self.has_few_shot else "-",
                f"S{len(self.schema_fields)}" if self.schema_fields else "-",
                f"V{len(self.value_examples)}" if self.value_examples else "-",
                f"G{len(self.guidelines)}" if self.guidelines else "-",
                "T" if self.truncated else "-",
            ]
        )


def perceive(prompt: str, context_window: int) -> PerceivedContext:
    """Parse the prompt into a PerceivedContext, honouring the window."""
    ctx = PerceivedContext()
    ctx.prompt_tokens = count_tokens(prompt)

    if ctx.prompt_tokens > context_window:
        ctx.truncated = True
        # keep the fraction of the prompt that fits; the tail is lost
        keep_ratio = context_window / ctx.prompt_tokens
        keep_chars = int(len(prompt) * keep_ratio)
        visible = prompt[:keep_chars]
        # the user query is appended last, but providers keep it by moving
        # it inside the window; simulate that by re-attaching it
        user_q = pf.extract_section(prompt, pf.SECTION_USER_QUERY)
        if user_q is not None and pf.SECTION_USER_QUERY not in visible:
            visible += f"\n{pf.SECTION_USER_QUERY}\n{user_q}\n"
        prompt = visible

    ctx.has_role = pf.extract_section(prompt, pf.SECTION_ROLE) is not None
    ctx.has_job = pf.extract_section(prompt, pf.SECTION_JOB) is not None
    ctx.has_df_description = (
        pf.extract_section(prompt, pf.SECTION_DF_DESCRIPTION) is not None
    )
    ctx.has_output_format = (
        pf.extract_section(prompt, pf.SECTION_OUTPUT_FORMAT) is not None
    )

    examples = pf.extract_section(prompt, pf.SECTION_EXAMPLES)
    if examples:
        ctx.has_few_shot = True
        ctx.few_shot_fields = _fields_in_examples(examples)

    schema = pf.extract_json_section(prompt, pf.SECTION_SCHEMA)
    if schema:
        fields = schema.get("fields", schema)
        for name, meta in fields.items():
            ctx.schema_fields.add(name)
            if isinstance(meta, dict) and "type" in meta:
                ctx.field_types[name] = str(meta["type"])

    values = pf.extract_json_section(prompt, pf.SECTION_VALUES)
    if values:
        for name, examples_list in values.items():
            if isinstance(examples_list, list):
                ctx.value_examples[name] = examples_list

    guidelines = pf.extract_section(prompt, pf.SECTION_GUIDELINES)
    if guidelines:
        ctx.guidelines = [
            line.lstrip("-• ").strip()
            for line in guidelines.splitlines()
            if line.strip() and line.strip() not in ("```",)
        ]

    user_query = pf.extract_section(prompt, pf.SECTION_USER_QUERY)
    ctx.user_query = user_query or ""
    return ctx


def _fields_in_examples(examples_text: str) -> set[str]:
    """Fields a model can imitate from the few-shot example code lines."""
    import re

    fields: set[str] = set()
    for match in re.finditer(r"df\[['\"]([\w.\-]+)['\"]\]", examples_text):
        fields.add(match.group(1))
    for match in re.finditer(
        r"(?:sort_values|groupby)\(\[?['\"]([\w.\-]+)['\"]", examples_text
    ):
        fields.add(match.group(1))
    return fields
