"""Failure-injection engine: intent + perceived context -> emitted code.

The causal chain per request:

1. **Intent** — the pipeline an ideally-informed model would produce
   (registry lookup, else the rule-based semantic parse of the query).
2. **Format gate** — without role/job/output-format instructions the
   model answers in prose or SQL instead of a DataFrame query.
3. **Knowledge gate** — every field the intent references must be
   *known*: from the prompt's schema section, imitated from few-shot
   examples, named by a perceived guideline, or guessed from prior
   knowledge; otherwise a plausible hallucination is substituted.
4. **Value gate** — string literals and thresholds are spelled right
   only when the example-values section covers them (or by luck).
5. **Logic gate** — each of the query's trap tags fires a concrete
   mutation with a probability set by the model profile, the workload
   class (OLAP penalised), and whether a perceived guideline protects
   that trap (models can also *ignore* guidelines, LLaMA-3-8B-style).
6. **Syntax gate** — finally the rendered text may be mangled when
   few-shot examples are absent.

All draws come from a seeded RNG keyed on (model, query, context
signature, rep) — temperature-0 behaviour with slight per-rep
variation, as the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm import mutations
from repro.llm.intents import lookup_intent
from repro.llm.profiles import ModelProfile
from repro.llm.prompt_reading import PerceivedContext
from repro.llm.semantics import SemanticParseError, parse_intent
from repro.llm.vocabulary import COMMON_FIELDS_PRIOR, hallucination_for
from repro.query import ast as q
from repro.query.render import render_query
from repro.utils.seeding import derive_rng

__all__ = ["GenerationResult", "generate_query_code", "QueryTraits"]

#: traps that concern literal values (gated by the Values component)
VALUE_TRAPS = frozenset({"value_case", "value_scale", "activity_value"})

#: per-trap difficulty multipliers on the logic-error rate
TRAP_DIFFICULTY: dict[str, float] = {
    "sort_field": 1.0,
    "sort_direction": 0.8,
    "recent_vs_first": 1.0,
    "group_logic": 1.2,
    "time_comparison": 1.1,
    "scope_filter": 1.0,
    "entity_scoping": 6.0,  # §5.3 Q5 defeats even GPT-4 at full context
    "agg_choice": 0.9,
    "limit": 0.6,
    "graph_reasoning": 1.8,
    "derived_duration": 1.0,
    "plot_grouping": 9.0,  # §5.3 Q8 grouping-before-plotting failure
}

#: guideline keyword that protects each logic trap (matched against the
#: perceived guideline text, lowercased)
TRAP_GUARD_PHRASES: dict[str, str] = {
    "sort_field": "started_at",
    "recent_vs_first": "most recent",
    "sort_direction": "descending",
    "group_logic": "group",
    "time_comparison": "time range",
    "scope_filter": "activity_id",
    "derived_duration": "duration",
    "agg_choice": "aggregation",
    "limit": "head(",
}


@dataclass(frozen=True)
class QueryTraits:
    """Evaluation metadata attached to a query (traps + workload class)."""

    traps: tuple[str, ...] = ()
    workload: str = "OLTP"  # or "OLAP"


@dataclass
class GenerationResult:
    text: str
    failures: list[str] = field(default_factory=list)
    intent_found: bool = True
    output_tokens_hint: int = 0

    @property
    def clean(self) -> bool:
        return not self.failures


def generate_query_code(
    profile: ModelProfile,
    perceived: PerceivedContext,
    *,
    traits: QueryTraits | None = None,
    rep: int = 0,
    query_id: str = "",
) -> GenerationResult:
    """Produce the model's query code for the perceived prompt."""
    if traits is None:
        # the agent path doesn't know query traits; phrasings registered
        # with traits (e.g. the §5.3 demo queries) carry them here
        from repro.llm.intents import lookup_traits

        traits = lookup_traits(perceived.user_query)
    traits = traits if traits is not None else QueryTraits()
    rng = derive_rng(
        "llm-gen", profile.name, query_id or perceived.user_query,
        perceived.signature(), rep,
    )
    # per-draw skill wobble (Gemini's variance is the headline case)
    wobble = float(rng.lognormal(0.0, profile.variance_sigma))
    failures: list[str] = []

    # ---- 1. intent -----------------------------------------------------------
    intent = lookup_intent(perceived.user_query)
    if intent is None:
        try:
            intent = parse_intent(
                perceived.user_query,
                activity_names=perceived.activity_names(),
            )
        except SemanticParseError:
            return GenerationResult(
                text=_prose_fallback(perceived.user_query, 0),
                failures=["no_intent"],
                intent_found=False,
            )

    # ---- 2. format gate -----------------------------------------------------------
    p_format = (
        profile.format_fail_with_baseline
        if perceived.has_baseline
        else profile.format_fail_no_baseline
    )
    if rng.random() < profile.effective(p_format, wobble):
        return GenerationResult(
            text=_prose_fallback(perceived.user_query, int(rng.integers(0, 3))),
            failures=["format"],
        )

    # ---- 3. knowledge gate: field resolution -----------------------------------------
    guideline_text = " ".join(perceived.guidelines).lower()
    follows_guidelines = perceived.has_guidelines and not (
        rng.random() < profile.effective(profile.ignores_guidelines, wobble)
    )
    if perceived.has_guidelines and not follows_guidelines:
        failures.append("ignored_guidelines")

    mapping: dict[str, str] = {}
    for fname in sorted(intent.fields_used()):
        resolved = _resolve_field(
            fname, profile, perceived, guideline_text, follows_guidelines, rng, wobble
        )
        if resolved != fname:
            failures.append(f"hallucinated:{fname}->{resolved}")
            mapping[fname] = resolved
            continue
        # semantic misbinding: the field exists, but so does a plausible
        # sibling (telemetry_at_start vs _at_end, used.value vs
        # generated.value, started_at vs ended_at); without a guideline
        # pinning the convention, models pick the wrong one.
        p_bind = (
            profile.schema_misbind_with_guidelines
            if follows_guidelines
            else profile.schema_misbind_no_guidelines
        )
        if rng.random() < profile.effective(p_bind, wobble):
            sibling = _sibling_field(fname, perceived)
            if sibling is not None:
                failures.append(f"misbound:{fname}->{sibling}")
                mapping[fname] = sibling
    pipeline = mutations.rewrite_fields(intent, mapping) if mapping else intent

    # ---- 4. value gate ---------------------------------------------------------------------
    value_traps = [t for t in traits.traps if t in VALUE_TRAPS]
    for trap in value_traps:
        covered = _value_trap_protected(
            trap, pipeline, perceived, guideline_text, follows_guidelines
        )
        p_val = (
            profile.value_error_with_values
            if covered
            else profile.value_error_no_values
        )
        if rng.random() < profile.effective(p_val, wobble):
            before = pipeline
            if trap == "value_scale":
                pipeline = mutations.rescale_threshold(pipeline, 0)
            elif trap == "activity_value":
                pipeline = _corrupt_unquoted_literals(
                    pipeline, perceived.user_query
                )
            else:
                pipeline = mutations.lowercase_string_literal(pipeline, 0)
            if pipeline != before:
                failures.append(f"value:{trap}")

    # ---- 5. logic gate ----------------------------------------------------------------------
    logic_traps = [t for t in traits.traps if t not in VALUE_TRAPS]
    for trap in logic_traps:
        guarded = (
            follows_guidelines
            and TRAP_GUARD_PHRASES.get(trap, "\x00") in guideline_text
        )
        p_logic = (
            profile.logic_error_with_guidelines
            if guarded
            else profile.logic_error_no_guidelines
        )
        p_logic *= TRAP_DIFFICULTY.get(trap, 1.0)
        if traits.workload == "OLAP":
            p_logic *= profile.olap_penalty
        if trap in ("group_logic", "time_comparison"):
            p_logic *= profile.group_logic_penalty
        if rng.random() < profile.effective(p_logic, wobble):
            candidates = mutations.LOGIC_MUTATIONS.get(trap, ())
            if candidates:
                pick = int(rng.integers(0, 1_000_000))
                mutator = candidates[pick % len(candidates)]
                try:
                    mutated = mutator(pipeline, pick // len(candidates))
                except ValueError:  # mutation produced an ill-formed pipeline
                    mutated = pipeline
                if mutated != pipeline and mutated.steps:
                    pipeline = mutated
                    failures.append(f"logic:{trap}")

    # ---- 5b. generic formulation slip ------------------------------------------------------------
    # Guidelines reduce broad query-shaping mistakes on *every* query, not
    # only on tagged traps (paper: "query guidelines provide the greatest
    # performance boost"): without them, even simple targeted queries get
    # reformulated in subtly wrong ways.
    p_form = (
        profile.logic_error_with_guidelines * 0.5
        if follows_guidelines
        else profile.logic_error_no_guidelines * 0.9
    )
    if traits.workload == "OLAP":
        p_form *= profile.olap_penalty * 0.8
    if rng.random() < profile.effective(p_form, wobble):
        pick = int(rng.integers(0, 1_000_000))
        order = list(mutations.FORMULATION_MUTATIONS)
        for i in range(len(order)):
            mutator = order[(pick + i) % len(order)]
            try:
                mutated = mutator(pipeline, pick // 7)
            except ValueError:
                continue
            if mutated != pipeline and mutated.steps:
                pipeline = mutated
                failures.append(f"formulation:{mutator.__name__}")
                break

    # ---- 6. render + syntax gate ---------------------------------------------------------------
    try:
        text = render_query(pipeline)
    except Exception:  # mutated into an unrenderable shape: emit prose
        return GenerationResult(
            text=_prose_fallback(perceived.user_query, 1),
            failures=failures + ["render_failure"],
        )
    p_syntax = (
        profile.syntax_fail_with_fs
        if perceived.has_few_shot
        else profile.syntax_fail_no_fs
    )
    if rng.random() < profile.effective(p_syntax, wobble):
        text = _mangle_syntax(text, int(rng.integers(0, 3)))
        failures.append("syntax")

    from repro.llm.tokenizer import count_tokens

    return GenerationResult(
        text=text,
        failures=failures,
        output_tokens_hint=count_tokens(text),
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _resolve_field(
    fname: str,
    profile: ModelProfile,
    perceived: PerceivedContext,
    guideline_text: str,
    follows_guidelines: bool,
    rng,
    wobble: float,
) -> str:
    pick = int(rng.integers(0, 1_000_000))
    if fname in perceived.schema_fields:
        if rng.random() < profile.effective(profile.misread_schema_field, wobble):
            return hallucination_for(fname, pick)
        return fname
    if fname in perceived.few_shot_fields:
        if rng.random() < 0.05 * wobble:
            return hallucination_for(fname, pick)
        return fname
    if follows_guidelines and fname.lower() in guideline_text:
        if rng.random() < 0.08 * wobble:
            return hallucination_for(fname, pick)
        return fname
    prior = (
        profile.prior_common_field
        if fname in COMMON_FIELDS_PRIOR
        else profile.prior_app_field
    )
    if rng.random() < min(1.0, prior / max(wobble, 1e-6)):
        return fname
    return hallucination_for(fname, pick)


def _sibling_field(fname: str, perceived: PerceivedContext) -> str | None:
    """A semantically adjacent field a model could plausibly confuse.

    Prefers siblings that actually exist in the perceived schema (so the
    wrong query still *executes* — the most insidious failure class);
    falls back to the structural sibling otherwise.
    """
    candidates: list[str] = []
    if "_at_end" in fname:
        candidates.append(fname.replace("_at_end", "_at_start"))
    elif "_at_start" in fname:
        candidates.append(fname.replace("_at_start", "_at_end"))
    if fname == "started_at":
        candidates.append("ended_at")
    elif fname == "ended_at":
        candidates.append("started_at")
    elif fname == "duration":
        candidates.append("ended_at")
    if fname.startswith("generated."):
        candidates.append("used." + fname.split(".", 1)[1])
    elif fname.startswith("used."):
        candidates.append("generated." + fname.split(".", 1)[1])
    known = perceived.schema_fields
    for c in candidates:
        if c in known:
            return c
    return candidates[0] if candidates else None


def _value_trap_protected(
    trap: str,
    pipeline: q.Pipeline,
    perceived: PerceivedContext,
    guideline_text: str,
    follows_guidelines: bool,
) -> bool:
    """A value trap is defused by example values OR an explicit guideline.

    The static guideline set spells out status casing and the telemetry
    percent scale, so Baseline+FS+Guidelines performs well even without
    the Values section (paper Fig. 8).
    """
    if perceived.has_values and any(
        f in perceived.value_examples for f in pipeline.fields_used()
    ):
        return True
    if follows_guidelines:
        if trap == "value_case" and "uppercase" in guideline_text:
            return True
        if trap == "value_scale" and "percent scale" in guideline_text:
            return True
    if trap == "activity_value":
        # literals quoted verbatim in the user query can be copied safely
        for leaf in _string_literals(pipeline):
            if leaf in perceived.user_query:
                return True
    return False


def _string_literals(pipeline: q.Pipeline) -> list[str]:
    out: list[str] = []
    for f in pipeline.filters():
        for leaf in q.conjuncts(f.predicate):
            if isinstance(leaf, q.Compare) and isinstance(leaf.value, str):
                out.append(leaf.value)
    return out


def _corrupt_unquoted_literals(pipeline: q.Pipeline, user_query: str) -> q.Pipeline:
    """Mangle activity-name literals the user did not spell out exactly."""

    def fix_leaf(pred):
        if (
            isinstance(pred, q.Compare)
            and isinstance(pred.value, str)
            and "_" in pred.value
            and pred.value not in user_query
        ):
            return q.Compare(pred.field, pred.op, pred.value.replace("_", " "))
        return pred

    steps = []
    for s in pipeline.steps:
        if isinstance(s, q.Filter):
            steps.append(q.Filter(mutations._map_predicate(s.predicate, fix_leaf)))
        else:
            steps.append(s)
    return q.Pipeline(tuple(steps))


_PROSE_TEMPLATES = (
    "To answer this, look at the task records and identify {topic}. "
    "The provenance data contains the relevant entries in its columns.",
    "SELECT * FROM tasks WHERE {topic_sql};",
    "Sure! Here is what I found about {topic}: the workflow tasks include "
    "several records matching your question.",
)


def _prose_fallback(user_query: str, pick: int) -> str:
    topic = user_query.strip().rstrip("?").lower() or "the requested data"
    template = _PROSE_TEMPLATES[pick % len(_PROSE_TEMPLATES)]
    return template.format(topic=topic, topic_sql=topic.replace(" ", "_")[:40])


def _mangle_syntax(text: str, pick: int) -> str:
    if pick == 0 and text.endswith("]"):
        return text[:-1]  # unbalanced bracket
    if pick == 1 and "==" in text:
        return text.replace("==", "=", 1)  # assignment instead of comparison
    return "Here is the query: " + text  # prose wrapper breaks the parser
