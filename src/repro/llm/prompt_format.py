"""Prompt format contract.

The agent's prompt builder (:mod:`repro.agent.prompts`) assembles
prompts from sections with the markers below; the simulated models
(:mod:`repro.llm.prompt_reading`) perceive exactly what those sections
contain.  Keeping both sides on one format module guarantees the
causal link the evaluation measures: a context component influences a
model **only** if its section is actually present in the prompt text.

Structured payloads (schema, example values) are embedded as JSON blocks
so the perceiving side recovers precisely the fields the prompt carried
— no more, no less.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "SECTION_ROLE",
    "SECTION_JOB",
    "SECTION_DF_DESCRIPTION",
    "SECTION_OUTPUT_FORMAT",
    "SECTION_EXAMPLES",
    "SECTION_SCHEMA",
    "SECTION_VALUES",
    "SECTION_GUIDELINES",
    "SECTION_USER_QUERY",
    "render_section",
    "render_json_section",
    "extract_section",
    "extract_json_section",
]

SECTION_ROLE = "## Role"
SECTION_JOB = "## Job"
SECTION_DF_DESCRIPTION = "## DataFrame description"
SECTION_OUTPUT_FORMAT = "## Output format"
SECTION_EXAMPLES = "## Examples"
SECTION_SCHEMA = "## Dynamic dataflow schema"
SECTION_VALUES = "## Example field values"
SECTION_GUIDELINES = "## Query guidelines"
SECTION_USER_QUERY = "## User query"

_ALL_SECTIONS = (
    SECTION_ROLE,
    SECTION_JOB,
    SECTION_DF_DESCRIPTION,
    SECTION_OUTPUT_FORMAT,
    SECTION_EXAMPLES,
    SECTION_SCHEMA,
    SECTION_VALUES,
    SECTION_GUIDELINES,
    SECTION_USER_QUERY,
)


def render_section(marker: str, body: str) -> str:
    return f"{marker}\n{body.strip()}\n"


def render_json_section(marker: str, payload: Mapping[str, Any]) -> str:
    body = json.dumps(payload, indent=1, sort_keys=True, default=str)
    return f"{marker}\n```json\n{body}\n```\n"


def extract_section(prompt: str, marker: str) -> str | None:
    """Return the body of a section, or None when absent."""
    start = prompt.find(marker)
    if start < 0:
        return None
    body_start = start + len(marker)
    end = len(prompt)
    for other in _ALL_SECTIONS:
        idx = prompt.find(other, body_start)
        if idx >= 0:
            end = min(end, idx)
    return prompt[body_start:end].strip()


def extract_json_section(prompt: str, marker: str) -> dict[str, Any] | None:
    body = extract_section(prompt, marker)
    if body is None:
        return None
    text = body
    if text.startswith("```json"):
        text = text[len("```json") :]
    text = text.strip().strip("`").strip()
    # tolerate a trailing fence that strip("`") already removed
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None
