"""Simulated LLM service layer.

No network or model weights are available in this environment, so the
five LLMs the paper evaluates (LLaMA 3-8B/70B, Gemini 2.5 Flash Lite,
GPT-4, Claude Opus 4) are *simulated*: each model

1. receives the **actual assembled prompt text** and perceives only the
   context components present in it (role/job/format, few-shot examples,
   dynamic dataflow schema, example domain values, query guidelines) —
   parsing them back out of the prompt like a real model would attend to
   them (:mod:`prompt_reading`);
2. resolves the natural-language query to an intended DataFrame pipeline
   with a rule-based semantic core (:mod:`semantics`) whose *field
   knowledge is gated by the prompt*: fields present in the prompt's
   schema resolve correctly, everything else falls back to prior-
   knowledge guesses that may hallucinate (:mod:`generation`);
3. injects model- and context-dependent failure modes (format, syntax,
   hallucination, wrong values, logic slips) from seeded RNGs with
   per-model base rates (:mod:`profiles`);
4. reports token usage (:mod:`tokenizer`) and a simulated latency
   (:mod:`latency`), enforcing each model's context window.

The architecture-level claims of the paper — which context component
fixes which failure class, how scores move across configurations — are
therefore *produced mechanically* by this pipeline rather than coded
per-figure.
"""

from repro.llm.tokenizer import count_tokens
from repro.llm.profiles import MODEL_PROFILES, ModelProfile, get_profile
from repro.llm.service import ChatRequest, ChatResponse, LLMServer

__all__ = [
    "count_tokens",
    "ModelProfile",
    "MODEL_PROFILES",
    "get_profile",
    "LLMServer",
    "ChatRequest",
    "ChatResponse",
]
