"""Intent registry: NL phrasings with known interpretations.

A real LLM's language understanding far exceeds our rule grammar, so
phrasings the grammar cannot cover are registered here with the pipeline
an ideally-informed model would intend.  The evaluation's golden set and
the chemistry demo queries register their NL -> intent mappings at
import time; the simulated models consult the registry first and fall
back to :func:`repro.llm.semantics.parse_intent` for novel text.

Registering an intent does **not** make a model answer correctly: the
knowledge gate and failure injection still apply to every field and
every step of the intended pipeline afterwards.
"""

from __future__ import annotations

from typing import Any

from repro.query import ast as q

__all__ = [
    "register_intent",
    "lookup_intent",
    "lookup_traits",
    "registered_count",
    "clear_registry",
]

_REGISTRY: dict[str, q.Pipeline] = {}
_TRAITS: dict[str, Any] = {}


def _normalise(text: str) -> str:
    return " ".join(text.lower().strip().rstrip("?.!").split())


def register_intent(nl_text: str, pipeline: q.Pipeline, traits: Any = None) -> None:
    key = _normalise(nl_text)
    _REGISTRY[key] = pipeline
    if traits is not None:
        _TRAITS[key] = traits


def lookup_intent(nl_text: str) -> q.Pipeline | None:
    return _REGISTRY.get(_normalise(nl_text))


def lookup_traits(nl_text: str) -> Any | None:
    """Query traits (traps/workload) registered with this phrasing."""
    return _TRAITS.get(_normalise(nl_text))


def registered_count() -> int:
    return len(_REGISTRY)


def clear_registry() -> None:
    _REGISTRY.clear()
    _TRAITS.clear()
