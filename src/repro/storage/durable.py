"""Durable, crash-recoverable provenance backend: WAL + snapshots.

Every other backend in this package lives in memory — a restart loses
all provenance, which rules out the production-scale service and the
multi-day interactive sessions the reference architecture targets.
:class:`DurableStore` adds durability *without* a new query engine: it
wraps the single-node :class:`~repro.storage.memory.ProvenanceDatabase`
(reads delegate to it untouched, so query semantics are identical by
construction) and makes the write path recoverable:

* **write-ahead log** — every mutating call is serialised to one
  CRC-framed record (``[u32 length][u32 crc32][json payload]``) and
  appended to the active segment *before* it is applied in memory.  A
  record's bytes reaching the file is what acknowledges the write;
  recovery replays exactly the acknowledged prefix and discards a torn
  tail (truncated or CRC-failing final record) instead of guessing;
* **segments** — the log rotates at ``segment_max_bytes`` into
  ``wal-<n>.log`` files, so recovery streams bounded files and
  compaction can drop whole segments at once;
* **snapshots** — :meth:`snapshot` (also triggered every
  ``snapshot_every_ops`` writes) writes the full store state to
  ``snap-<version>.tmp``, fsyncs, atomically renames to ``.snap``, and
  only then deletes the segments it covers.  A crash mid-snapshot
  leaves a ``.tmp`` (ignored) or a torn ``.snap`` (detected via its
  framed records + doc count and skipped); either way the previous
  snapshot + retained WAL still reconstruct the store;
* **fsync policy** — ``"always"`` fsyncs per record (power-loss safe),
  ``"rotate"`` (default) fsyncs on rotation/snapshot/close
  (process-crash safe; OS page cache covers a kill), ``"never"`` leaves
  flushing entirely to the OS;
* **versioning** — the store keeps its **own** monotonic
  :meth:`version` counter, stamped into every WAL record and snapshot.
  Recovery restores it to ``last persisted version + 1``: the ``+1``
  is a *recovery epoch bump*, which guarantees a version observed
  before a crash can never be observed again afterwards — cache
  entries (:class:`repro.query.QueryCache`) and gateway cursors minted
  pre-crash therefore miss / go ``CURSOR_STALE`` instead of silently
  pairing with a recovered store.

Documents must be JSON-representable (the provenance pipeline's
normalised messages are); a non-serialisable document raises
:class:`~repro.errors.DatabaseError` *before* anything is logged or
applied, so a rejected write is a complete no-op.  JSON's usual
canonicalisation applies: tuples come back as lists after recovery.

Sharded composition — "WAL file per shard" — goes the other way around:
:func:`open_durable_sharded` builds a
:class:`~repro.storage.sharded.ShardedProvenanceStore` whose shard
factory yields one ``DurableStore`` per shard directory, then calls
:meth:`~repro.storage.sharded.ShardedProvenanceStore.rebuild_routing`
to reconstruct the coordinator's key→shard table, stray tracking, and
global sequence counter from the recovered shard contents.  CRC
routing, scatter/gather, and global-order merging work unchanged
because each shard still speaks the full backend protocol.

All file mutations go through a :class:`FileOps` seam so the
crash-injection suite (``tests/storage/test_durability.py``) can kill
the store at every write boundary and prove the recovery contract
instead of asserting it.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Any, BinaryIO, Iterable, Mapping

from repro.errors import DatabaseError
from repro.storage.memory import (
    DEFAULT_EQUALITY_INDEX_FIELDS,
    DEFAULT_RANGE_INDEX_FIELDS,
    ProvenanceDatabase,
)
from repro.storage.sharded import DEFAULT_NUM_SHARDS, ShardedProvenanceStore

__all__ = [
    "DurableStore",
    "FileOps",
    "open_durable_sharded",
    "FSYNC_POLICIES",
    "DEFAULT_SEGMENT_MAX_BYTES",
]

#: Record framing: payload length + CRC-32 of the payload, big-endian.
_HEADER = struct.Struct(">II")

#: A record longer than this is treated as tail garbage, not allocated.
_MAX_RECORD = 1 << 31

#: Documents per snapshot chunk record (bounds peak record size).
_SNAP_CHUNK = 512

FSYNC_POLICIES = ("always", "rotate", "never")

DEFAULT_SEGMENT_MAX_BYTES = 64 * 1024 * 1024


class FileOps:
    """OS mutation seam for the durable store.

    Every filesystem *mutation* the store performs funnels through one
    of these methods, which is what lets the crash-injection harness
    substitute a fault-injecting subclass and simulate a kill at any
    write boundary.  Reads stay on plain ``open``: recovery runs after
    the simulated crash, on whatever bytes survived.
    """

    def open_append(self, path: str) -> BinaryIO:
        # unbuffered: one logical record == one write syscall, so the
        # bytes a crash can tear are exactly the bytes of one record
        return open(path, "ab", buffering=0)

    def open_create(self, path: str) -> BinaryIO:
        return open(path, "wb", buffering=0)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def truncate(self, path: str, size: int) -> None:
        os.truncate(path, size)

    def fsync(self, fobj: BinaryIO) -> None:
        fobj.flush()
        os.fsync(fobj.fileno())

    def fsync_dir(self, path: str) -> None:
        """Persist directory entries (created/renamed/removed files)."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync unsupported on dirs
            pass
        finally:
            os.close(fd)


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_records(data: bytes) -> tuple[list[bytes], int, bool]:
    """Parse framed records; returns ``(payloads, clean_offset, torn)``.

    ``clean_offset`` is the end of the last intact record; ``torn`` is
    True when trailing bytes exist that do not form one (truncated
    header, short payload, CRC mismatch, or implausible length — a
    zero-filled tail cannot masquerade as a record because an empty
    payload is below the minimum length).
    """
    records: list[bytes] = []
    off, n = 0, len(data)
    while off < n:
        if n - off < _HEADER.size:
            return records, off, True
        length, crc = _HEADER.unpack_from(data, off)
        if length < 2 or length > _MAX_RECORD or n - off - _HEADER.size < length:
            return records, off, True
        payload = bytes(data[off + _HEADER.size : off + _HEADER.size + length])
        if zlib.crc32(payload) != crc:
            return records, off, True
        records.append(payload)
        off += _HEADER.size + length
    return records, off, False


def _dumps(op: Mapping[str, Any]) -> bytes:
    try:
        return json.dumps(
            op, separators=(",", ":"), ensure_ascii=False, check_circular=False
        ).encode("utf-8")
    except (TypeError, ValueError, RecursionError) as exc:
        raise DatabaseError(
            f"durable store requires JSON-representable documents: {exc}"
        ) from exc


class DurableStore:
    """Crash-recoverable :class:`~repro.storage.backend.StorageBackend`.

    One instance owns one directory.  Writes serialise on one re-entrant
    lock (WAL order must equal apply order for recovery to reproduce the
    live store); reads delegate to the inner in-memory database, which
    is thread-safe on its own.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "rotate",
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        snapshot_every_ops: int | None = None,
        equality_index_fields: Iterable[str] = DEFAULT_EQUALITY_INDEX_FIELDS,
        range_index_fields: Iterable[str] = DEFAULT_RANGE_INDEX_FIELDS,
        copy_docs: bool = True,
        file_ops: FileOps | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DatabaseError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_max_bytes < 1024:
            raise DatabaseError(
                f"segment_max_bytes must be >= 1024, got {segment_max_bytes}"
            )
        if snapshot_every_ops is not None and snapshot_every_ops < 1:
            raise DatabaseError(
                f"snapshot_every_ops must be >= 1, got {snapshot_every_ops}"
            )
        self.path = path
        self._fsync = fsync
        self._segment_max_bytes = segment_max_bytes
        self._snapshot_every = snapshot_every_ops
        self._files = file_ops if file_ops is not None else FileOps()
        self._inner = ProvenanceDatabase(
            equality_index_fields=equality_index_fields,
            range_index_fields=range_index_fields,
            copy_docs=copy_docs,
        )
        # re-entrant: the sharded coordinator stamps sequence numbers
        # under a held shard lock and then calls upsert through it
        self._lock = threading.RLock()
        self._closed = False
        self._ops_since_snapshot = 0
        self._seg_file: BinaryIO | None = None
        self._seg_index = 0
        self._seg_size = 0
        os.makedirs(path, exist_ok=True)
        self._version = self._recover()
        self._open_active_segment()

    # -- directory layout --------------------------------------------------------
    def _seg_path(self, index: int) -> str:
        return os.path.join(self.path, f"wal-{index:016d}.log")

    def _snap_path(self, version: int, tmp: bool = False) -> str:
        ext = "tmp" if tmp else "snap"
        return os.path.join(self.path, f"snap-{version:016d}.{ext}")

    def _list(self, prefix: str, suffix: str) -> list[tuple[int, str]]:
        out: list[tuple[int, str]] = []
        for name in os.listdir(self.path):
            if name.startswith(prefix) and name.endswith(suffix):
                stem = name[len(prefix) : -len(suffix)]
                try:
                    out.append((int(stem), os.path.join(self.path, name)))
                except ValueError:
                    continue
        out.sort()
        return out

    # -- recovery ----------------------------------------------------------------
    def _recover(self) -> int:
        """Rebuild the inner store from snapshot + WAL; returns version.

        The returned version is ``0`` for a brand-new directory and
        ``last persisted version + 1`` otherwise — the recovery epoch
        bump (see module docstring).
        """
        snaps = self._list("snap-", ".snap")
        segments = self._list("wal-", ".log")
        tmp_snaps = self._list("snap-", ".tmp")
        had_state = bool(snaps or segments or tmp_snaps)
        base_version = 0
        # newest snapshot that proves intact wins; a torn one (crash
        # while writing, before the atomic rename could even happen,
        # or a short rename-raced file) falls back to the previous
        for version, snap_path in reversed(snaps):
            state = self._load_snapshot(snap_path)
            if state is not None:
                docs, keys = state
                self._inner.import_state(docs, keys)
                base_version = version
                break
        last_version = base_version
        for pos, (index, seg_path) in enumerate(segments):
            with open(seg_path, "rb") as f:
                data = f.read()
            records, clean_off, torn = _scan_records(data)
            if torn and pos != len(segments) - 1:
                # a torn record can only ever be the tail of the final
                # segment (rotation closes segments at record edges);
                # anywhere else means real corruption, and replaying
                # past it could resurrect half a history
                raise DatabaseError(
                    f"corrupt WAL segment {seg_path!r}: "
                    f"bad record at offset {clean_off}"
                )
            for payload in records:
                try:
                    op = json.loads(payload)
                except ValueError as exc:
                    raise DatabaseError(
                        f"corrupt WAL record in {seg_path!r}: {exc}"
                    ) from exc
                v = op.get("v")
                if not isinstance(v, int):
                    raise DatabaseError(
                        f"corrupt WAL record in {seg_path!r}: missing version"
                    )
                if v <= base_version:
                    continue  # already folded into the snapshot
                self._apply(op)
                last_version = max(last_version, v)
            if torn:
                # drop the torn tail so future appends start at a clean
                # record boundary — the unacknowledged write stays dead
                # even if we crash again before the next snapshot
                self._files.truncate(seg_path, clean_off)
        self._cleanup(snaps, tmp_snaps, base_version)
        return last_version + 1 if had_state else 0

    def _cleanup(
        self,
        snaps: list[tuple[int, str]],
        tmp_snaps: list[tuple[int, str]],
        base_version: int,
    ) -> None:
        """Drop files a mid-compaction crash left behind (best effort)."""
        for _, path in tmp_snaps:
            self._try_remove(path)
        for version, path in snaps:
            if version < base_version:
                self._try_remove(path)

    def _try_remove(self, path: str) -> None:
        try:
            self._files.remove(path)
        except OSError:  # pragma: no cover - cleanup is best effort
            pass

    def _load_snapshot(
        self, path: str
    ) -> tuple[list[dict[str, Any]], dict[str, int]] | None:
        """Parse one snapshot file; None when torn/incomplete."""
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError:
            return None
        records, _, torn = _scan_records(data)
        if torn or not records:
            return None
        try:
            meta = json.loads(records[0])
            expected = meta["count"]
            docs: list[dict[str, Any]] = []
            keys: dict[str, int] = {}
            for payload in records[1:]:
                for key, doc in json.loads(payload)["docs"]:
                    if key is not None:
                        keys[key] = len(docs)
                    docs.append(doc)
        except (ValueError, KeyError, TypeError):
            return None
        if len(docs) != expected:
            return None  # crash mid-snapshot: chunks missing
        return docs, keys

    def _open_active_segment(self) -> None:
        segments = self._list("wal-", ".log")
        if segments:
            self._seg_index = segments[-1][0]
            self._seg_size = os.path.getsize(segments[-1][1])
        else:
            self._seg_index = 1
            self._seg_size = 0
        self._seg_file = self._files.open_append(self._seg_path(self._seg_index))

    # -- WAL write path ----------------------------------------------------------
    def _append(self, op: dict[str, Any]) -> None:
        """Serialise, maybe rotate, append, ack per fsync policy.

        Raises (and leaves every byte of state untouched) when the op
        cannot be serialised; after it returns, the op is acknowledged
        and recovery is guaranteed to replay it.
        """
        framed = _frame(_dumps(op))
        assert self._seg_file is not None
        if (
            self._seg_size
            and self._seg_size + len(framed) > self._segment_max_bytes
        ):
            self._rotate()
        self._seg_file.write(framed)
        self._seg_size += len(framed)
        if self._fsync == "always":
            self._files.fsync(self._seg_file)

    def _rotate(self) -> None:
        assert self._seg_file is not None
        if self._fsync != "never":
            self._files.fsync(self._seg_file)
        self._seg_file.close()
        self._seg_index += 1
        self._seg_size = 0
        self._seg_file = self._files.open_create(self._seg_path(self._seg_index))

    def _apply(self, op: Mapping[str, Any]) -> Any:
        """Apply one (logged or replayed) op to the inner store."""
        kind = op["op"]
        if kind == "um":
            return self._inner.upsert_many(op["d"], key_field=op["k"])
        if kind == "u":
            return self._inner.upsert(op["d"], key_field=op["k"])
        if kind == "i":
            return self._inner.insert(op["d"])
        if kind == "im":
            return self._inner.insert_many(op["d"])
        if kind == "clear":
            return self._inner.clear()
        raise DatabaseError(f"unknown WAL op {kind!r}")

    def _commit(self, op: dict[str, Any]) -> Any:
        """Log one op, apply it, maybe snapshot; lock held by caller."""
        if self._closed:
            raise DatabaseError(f"durable store at {self.path!r} is closed")
        op["v"] = self._version + 1
        self._append(op)
        self._version += 1
        result = self._apply(op)
        self._ops_since_snapshot += 1
        if (
            self._snapshot_every is not None
            and self._ops_since_snapshot >= self._snapshot_every
        ):
            self.snapshot()
        return result

    # -- writes ------------------------------------------------------------------
    def insert(self, doc: Mapping[str, Any]) -> None:
        with self._lock:
            self._commit({"op": "i", "d": dict(doc)})

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> int:
        batch = [dict(d) for d in docs]
        if not batch:
            return 0  # no contents change: no log record, no version bump
        with self._lock:
            return self._commit({"op": "im", "d": batch})

    def upsert(self, doc: Mapping[str, Any], key_field: str = "task_id") -> bool:
        # the key check must fail BEFORE logging: a record that raises
        # on replay would poison every future recovery
        if doc.get(key_field) is None:
            raise DatabaseError(f"upsert requires {key_field!r} in the document")
        with self._lock:
            return self._commit({"op": "u", "k": key_field, "d": dict(doc)})

    def upsert_many(
        self, docs: Iterable[Mapping[str, Any]], key_field: str = "task_id"
    ) -> int:
        batch = [dict(d) for d in docs]
        for d in batch:
            if d.get(key_field) is None:
                raise DatabaseError(
                    f"upsert requires {key_field!r} in the document"
                )
        if not batch:
            return 0
        with self._lock:
            return self._commit({"op": "um", "k": key_field, "d": batch})

    def clear(self) -> None:
        with self._lock:
            self._commit({"op": "clear"})

    # -- maintenance -------------------------------------------------------------
    def snapshot(self) -> str:
        """Compact: persist full state, then drop the WAL it covers.

        Returns the snapshot path.  Crash-safe at every step: the
        snapshot becomes visible only via atomic rename, and segments
        are deleted only after the rename (plus directory fsync) made
        it durable — recovery skips WAL records the snapshot already
        covers, so the overlap window is harmless.
        """
        with self._lock:
            if self._closed:
                raise DatabaseError(f"durable store at {self.path!r} is closed")
            docs, keys = self._inner.export_state()
            version = self._version
            by_index: dict[int, str] = {idx: k for k, idx in keys.items()}
            tmp = self._snap_path(version, tmp=True)
            final = self._snap_path(version)
            f = self._files.open_create(tmp)
            try:
                f.write(_frame(_dumps({"version": version, "count": len(docs)})))
                for start in range(0, len(docs), _SNAP_CHUNK):
                    chunk = [
                        [by_index.get(i), docs[i]]
                        for i in range(start, min(start + _SNAP_CHUNK, len(docs)))
                    ]
                    f.write(_frame(_dumps({"docs": chunk})))
                if self._fsync != "never":
                    self._files.fsync(f)
            finally:
                f.close()
            self._files.replace(tmp, final)
            if self._fsync != "never":
                self._files.fsync_dir(self.path)
            # everything at or below `version` now lives in the
            # snapshot: rotate to a fresh segment and drop the old ones
            old_segments = self._list("wal-", ".log")
            self._rotate()
            for _, seg_path in old_segments:
                self._try_remove(seg_path)
            for snap_version, snap_path in self._list("snap-", ".snap"):
                if snap_version < version:
                    self._try_remove(snap_path)
            self._ops_since_snapshot = 0
            return final

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._seg_file is not None:
                if self._fsync != "never":
                    try:
                        self._files.fsync(self._seg_file)
                    except OSError:  # pragma: no cover - close is best effort
                        pass
                self._seg_file.close()
                self._seg_file = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reads (delegated) --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._inner)

    def all(self) -> list[dict[str, Any]]:
        return self._inner.all()

    def find(
        self,
        filt: Mapping[str, Any] | None = None,
        *,
        sort: list[tuple[str, int]] | None = None,
        limit: int | None = None,
        projection: list[str] | None = None,
    ) -> list[dict[str, Any]]:
        return self._inner.find(filt, sort=sort, limit=limit, projection=projection)

    def find_one(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        return self._inner.find_one(filt)

    def count(self, filt: Mapping[str, Any] | None = None) -> int:
        return self._inner.count(filt)

    def distinct(self, path: str, filt: Mapping[str, Any] | None = None) -> list[Any]:
        return self._inner.distinct(path, filt)

    def field_counts(
        self, path: str, filt: Mapping[str, Any] | None = None
    ) -> dict[Any, int]:
        return self._inner.field_counts(path, filt)

    def aggregate(self, pipeline: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
        return self._inner.aggregate(pipeline)

    def execute_partial(self, plan: Any) -> list[Any]:
        """Delegated pushdown execution — reads live in the inner store."""
        return self._inner.execute_partial(plan)

    def export_state(self) -> tuple[list[dict[str, Any]], dict[str, int]]:
        """Delegated state export (snapshots, sharded routing rebuild)."""
        return self._inner.export_state()

    def explain(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any]:
        plan = dict(self._inner.explain(filt), backend="durable")
        with self._lock:
            plan["wal"] = {
                "path": self.path,
                "segment": self._seg_index,
                "segment_bytes": self._seg_size,
                "fsync": self._fsync,
            }
        return plan

    def version(self) -> int:
        """Monotonic write stamp, durable across restarts.

        Persisted in every WAL record and snapshot; recovery restores
        it past the last acknowledged write (never back to 0) and adds
        a recovery epoch bump so pre-crash observations cannot recur.
        """
        with self._lock:
            return self._version


def open_durable_sharded(
    path: str,
    num_shards: int = DEFAULT_NUM_SHARDS,
    **durable_kwargs: Any,
) -> ShardedProvenanceStore:
    """A sharded store whose shards are durable — one WAL per shard.

    Each shard recovers its own segment/snapshot directory
    (``<path>/shard-NN``), then the coordinator's routing state (key →
    home shard, stray tracking, global sequence counter) is rebuilt
    from the recovered contents, so CRC routing, scatter/gather, and
    global-order merging behave exactly as before the restart.
    Keyword arguments are passed through to every :class:`DurableStore`.
    """
    store = ShardedProvenanceStore(
        num_shards,
        shard_factory=lambda i: DurableStore(
            os.path.join(path, f"shard-{i:02d}"),
            # the coordinator hands each shard a fresh stamped copy
            copy_docs=False,
            **durable_kwargs,
        ),
    )
    store.rebuild_routing()
    return store
