"""Single-node in-memory provenance backend with secondary indexes.

This is the reference :class:`repro.storage.StorageBackend`: one faithful
in-memory store exercising every path the agent needs — Mongo-style
filter documents (OLTP targeted lookups), a small aggregation pipeline
(OLAP), and upserts keyed by ``task_id`` so RUNNING -> FINISHED updates
collapse into one record.  (It moved here from
``repro.provenance.database``, which remains as a compatibility alias.)

Filter documents support::

    {"status": "FINISHED"}                      # implicit $eq
    {"duration": {"$gt": 2.0, "$lte": 10.0}}    # range operators
    {"activity_id": {"$in": ["run_dft"]}}       # membership
    {"generated.bond_id": {"$regex": "C-H"}}    # dotted paths + regex
    {"ended_at": {"$exists": False}}            # presence

Aggregation pipelines support ``$match``, ``$group`` (with ``$sum``,
``$avg``, ``$min``, ``$max``, ``$count``), ``$sort``, ``$limit``,
``$project``.

Secondary indexes keep targeted lookups flat-cost as trace volume grows:
hash indexes over declared equality fields (:data:`DEFAULT_EQUALITY_INDEX_FIELDS`)
and a sorted bisect index over declared numeric/timestamp fields
(:data:`DEFAULT_RANGE_INDEX_FIELDS`).  A small planner inspects each
filter document, picks the most selective usable access path
(equality > range > ``$in`` fan-out), intersects candidate sets, and
verifies the survivors with the full predicate — ``$regex`` / ``$exists``
/ unindexed residue therefore never yields wrong results, it only
falls back to scanning.  See ``docs/query_surface.md`` for the complete
operator/index reference and :meth:`ProvenanceDatabase.explain` for the
plan a given filter gets.

The filter matcher (:func:`matches_filter`), validator
(:func:`validate_filter`), and pipeline-stage executor
(:func:`apply_pipeline_stages`) are module-level so other backends —
notably the sharded coordinator, which merges per-shard results and
runs pipeline tails itself — share one definition of the semantics.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left, bisect_right, insort
from typing import Any, Callable, Iterable, Mapping

from repro.errors import DatabaseError
from repro.storage.documents import (
    get_path,
    merge_upsert_doc,
    path_exists,
    sort_documents,
)

__all__ = [
    "ProvenanceDatabase",
    "get_path",
    "merge_upsert_doc",
    "matches_filter",
    "validate_filter",
    "apply_pipeline_stages",
    "DEFAULT_EQUALITY_INDEX_FIELDS",
    "DEFAULT_RANGE_INDEX_FIELDS",
]

#: Fields that get a hash index by default: the identifiers and lifecycle
#: state the Query API and the agent's tools filter on constantly.
DEFAULT_EQUALITY_INDEX_FIELDS: tuple[str, ...] = (
    "task_id",
    "workflow_id",
    "status",
    "activity_id",
    "campaign_id",
    "type",
)

#: Numeric/timestamp fields that get a sorted (bisect) index by default.
DEFAULT_RANGE_INDEX_FIELDS: tuple[str, ...] = (
    "started_at",
    "ended_at",
    "duration",
)


def _require_container(op: str, arg: Any) -> None:
    if not isinstance(arg, (list, tuple, set, frozenset)):
        raise DatabaseError(
            f"{op} requires a list/tuple/set argument, "
            f"got {type(arg).__name__}: {arg!r}"
        )


def _in_op(v: Any, arg: Any) -> bool:
    _require_container("$in", arg)
    # equality scan instead of `v in arg` so unhashable stored values
    # (lists, dicts) work against set arguments and strings don't get
    # substring semantics
    return any(v == item for item in arg)


def _nin_op(v: Any, arg: Any) -> bool:
    _require_container("$nin", arg)
    return not any(v == item for item in arg)


def _regex_op(v: Any, arg: Any) -> bool:
    return isinstance(v, str) and _compile_regex(arg).search(v) is not None


def _compile_regex(arg: Any) -> re.Pattern:
    if isinstance(arg, re.Pattern):  # precompiled patterns carry flags
        return arg
    if not isinstance(arg, str):
        raise DatabaseError(
            f"$regex pattern must be a string, got {type(arg).__name__}: {arg!r}"
        )
    try:
        return re.compile(arg)  # re caches compiled patterns internally
    except re.error as exc:
        raise DatabaseError(f"invalid $regex pattern {arg!r}: {exc}") from exc


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda v, arg: v == arg,
    "$ne": lambda v, arg: v != arg,
    "$gt": lambda v, arg: v is not None and v > arg,
    "$gte": lambda v, arg: v is not None and v >= arg,
    "$lt": lambda v, arg: v is not None and v < arg,
    "$lte": lambda v, arg: v is not None and v <= arg,
    "$in": _in_op,
    "$nin": _nin_op,
    "$regex": _regex_op,
}

_RANGE_OPS = ("$gt", "$gte", "$lt", "$lte")


def validate_filter(filt: Mapping[str, Any]) -> None:
    """Reject malformed filters up front, independent of matching docs.

    The planner can answer a query from an index without ever calling
    :func:`matches_filter` on a document — and a sharded store can route
    a query to zero shards — so operator/argument validation must not be
    left to per-document evaluation.
    """
    for path, cond in filt.items():
        if path in ("$or", "$and"):
            if not isinstance(cond, (list, tuple)) or not all(
                isinstance(sub, Mapping) for sub in cond
            ):
                raise DatabaseError(f"{path} requires a list of filter documents")
            for sub in cond:
                validate_filter(sub)
            continue
        if isinstance(cond, Mapping) and any(k.startswith("$") for k in cond):
            for op, arg in cond.items():
                if op == "$exists":
                    continue
                if op not in _OPERATORS:
                    raise DatabaseError(f"unknown operator {op!r}")
                if op in ("$in", "$nin"):
                    _require_container(op, arg)
                elif op == "$regex":
                    _compile_regex(arg)


def matches_filter(doc: Mapping[str, Any], filt: Mapping[str, Any]) -> bool:
    """Full predicate evaluation of one filter document against one doc."""
    for path, cond in filt.items():
        if path == "$or":
            if not any(matches_filter(doc, sub) for sub in cond):
                return False
            continue
        if path == "$and":
            if not all(matches_filter(doc, sub) for sub in cond):
                return False
            continue
        value = get_path(doc, path)
        if isinstance(cond, Mapping) and any(k.startswith("$") for k in cond):
            for op, arg in cond.items():
                if op == "$exists":
                    if path_exists(doc, path) != bool(arg):
                        return False
                    continue
                fn = _OPERATORS.get(op)
                if fn is None:
                    raise DatabaseError(f"unknown operator {op!r}")
                try:
                    if not fn(value, arg):
                        return False
                except TypeError:
                    return False
        else:
            if value != cond:
                return False
    return True


_ACCUMULATORS = {
    "$sum": lambda vals: sum(v for v in vals if isinstance(v, (int, float))),
    "$avg": lambda vals: (
        (lambda nums: sum(nums) / len(nums) if nums else None)(
            [v for v in vals if isinstance(v, (int, float))]
        )
    ),
    "$min": lambda vals: min((v for v in vals if v is not None), default=None),
    "$max": lambda vals: max((v for v in vals if v is not None), default=None),
    "$count": lambda vals: sum(1 for v in vals if v is not None),
    "$first": lambda vals: next(iter(vals), None),
}


def _group_docs(
    docs: list[dict[str, Any]], spec: Mapping[str, Any]
) -> list[dict[str, Any]]:
    if "_id" not in spec:
        raise DatabaseError("$group requires an _id expression")
    id_expr = spec["_id"]
    groups: dict[Any, list[dict[str, Any]]] = {}
    order: list[Any] = []
    for d in docs:
        key = get_path(d, id_expr[1:]) if isinstance(id_expr, str) and id_expr.startswith("$") else id_expr
        try:
            hash(key)
        except TypeError:
            key = repr(key)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(d)
    out = []
    for key in order:
        row: dict[str, Any] = {"_id": key}
        for field_name, acc_spec in spec.items():
            if field_name == "_id":
                continue
            if not isinstance(acc_spec, Mapping) or len(acc_spec) != 1:
                raise DatabaseError(f"bad accumulator for {field_name!r}")
            acc_op, acc_arg = next(iter(acc_spec.items()))
            fn = _ACCUMULATORS.get(acc_op)
            if fn is None:
                raise DatabaseError(f"unknown accumulator {acc_op!r}")
            if isinstance(acc_arg, str) and acc_arg.startswith("$"):
                vals = [get_path(d, acc_arg[1:]) for d in groups[key]]
            else:
                vals = [acc_arg for _ in groups[key]]
            row[field_name] = fn(vals)
        out.append(row)
    return out


def apply_pipeline_stages(
    docs: list[dict[str, Any]], stages: Iterable[Mapping[str, Any]]
) -> list[dict[str, Any]]:
    """Run aggregation stages over an already-materialised document list.

    Backends hand their (possibly index-accelerated) ``$match`` source
    set to this one executor so every stage behaves identically across
    single-node and sharded stores.  May mutate/replace ``docs``;
    callers pass a list they own.
    """
    for stage in stages:
        if len(stage) != 1:
            raise DatabaseError(f"each stage must have exactly one key: {stage}")
        op, arg = next(iter(stage.items()))
        if op == "$match":
            # same up-front validation as the planner path: malformed
            # operators must not pass just because no doc reaches them
            validate_filter(arg)
            docs = [d for d in docs if matches_filter(d, arg)]
        elif op == "$group":
            docs = _group_docs(docs, arg)
        elif op == "$sort":
            for path, direction in reversed(list(arg.items())):
                sort_documents(docs, path, direction)
        elif op == "$limit":
            docs = docs[: max(0, int(arg))]
        elif op == "$project":
            docs = [{p: get_path(d, p) for p in arg} for d in docs]
        elif op == "$count":
            docs = [{str(arg): len(docs)}]
        else:
            raise DatabaseError(f"unknown pipeline stage {op!r}")
    return docs


#: Sentinel recorded when an indexed field holds an unhashable value.
_UNHASHABLE = object()


def _numeric(v: Any) -> bool:
    # NaN breaks total ordering (it would corrupt the sorted index) and
    # never satisfies any range operator, so it is not range-indexable
    return isinstance(v, (int, float)) and v == v


class ProvenanceDatabase:
    """Thread-safe in-memory document collection with secondary indexes.

    ``equality_index_fields`` get hash indexes (value -> doc-id set) used
    for implicit equality, ``$eq``, and ``$in``; ``range_index_fields``
    get a sorted index used for ``$gt``/``$gte``/``$lt``/``$lte``.  Pass
    empty tuples to disable indexing entirely (every query then scans,
    which is the seed behaviour — the benchmark uses this as baseline).
    """

    def __init__(
        self,
        *,
        equality_index_fields: Iterable[str] = DEFAULT_EQUALITY_INDEX_FIELDS,
        range_index_fields: Iterable[str] = DEFAULT_RANGE_INDEX_FIELDS,
        copy_docs: bool = True,
    ) -> None:
        self._docs: list[dict[str, Any]] = []
        self._by_key: dict[str, int] = {}
        self._lock = threading.RLock()
        # monotonic write stamp: bumped by every mutating call (including
        # clear), never reset — (key, version) cache entries stay correct
        self._version = 0
        #: with copy_docs=False the caller transfers ownership of every
        #: ingested dict (the sharded coordinator does: it stamps a
        #: fresh copy per document before handing it to a shard), which
        #: drops one copy per write from inside the lock.  Reads always
        #: return copies either way.
        self._copy_docs = copy_docs

        self._eq_fields = tuple(equality_index_fields)
        self._range_fields = tuple(range_index_fields)
        # dot-free fields resolve with one dict lookup; get_path is only
        # needed for nested paths (index maintenance is the write hot loop)
        self._eq_plain = tuple("." not in f for f in self._eq_fields)
        self._range_plain = tuple("." not in f for f in self._range_fields)
        # field -> value -> doc ids; unhashable values spill to overflow
        self._eq_index: dict[str, dict[Any, set[int]]] = {
            f: {} for f in self._eq_fields
        }
        self._eq_overflow: dict[str, set[int]] = {f: set() for f in self._eq_fields}
        # recorded indexed value per doc so updates can de-index precisely
        self._eq_vals: list[dict[str, Any]] = []
        # field -> sorted [(value, doc_id), ...]; rebuilt lazily when dirty
        self._range_entries: dict[str, list[tuple[Any, int]]] = {
            f: [] for f in self._range_fields
        }
        # non-numeric, non-null values can still answer range ops (string
        # ordering), so they stay reachable through a per-field overflow
        self._range_overflow: dict[str, set[int]] = {
            f: set() for f in self._range_fields
        }
        self._range_dirty: set[str] = set()

    # -- index maintenance -------------------------------------------------------
    def _eq_record(self, doc_id: int, doc: Mapping[str, Any]) -> dict[str, Any]:
        rec: dict[str, Any] = {}
        for f, plain in zip(self._eq_fields, self._eq_plain):
            v = doc.get(f) if plain else get_path(doc, f)
            try:
                # get-then-add instead of setdefault: this is the ingest
                # hot loop, and setdefault allocates a throwaway set on
                # every hit
                index = self._eq_index[f]
                ids = index.get(v)
                if ids is None:
                    index[v] = {doc_id}
                else:
                    ids.add(doc_id)
                rec[f] = v
            except TypeError:
                self._eq_overflow[f].add(doc_id)
                rec[f] = _UNHASHABLE
        return rec

    def _eq_unrecord(self, doc_id: int) -> None:
        rec = self._eq_vals[doc_id]
        for f, v in rec.items():
            self._eq_unrecord_field(doc_id, f, v)

    def _eq_unrecord_field(self, doc_id: int, f: str, v: Any) -> None:
        if v is _UNHASHABLE:
            self._eq_overflow[f].discard(doc_id)
        else:
            ids = self._eq_index[f].get(v)
            if ids is not None:
                ids.discard(doc_id)
                if not ids:
                    del self._eq_index[f][v]

    def _eq_update(
        self, doc_id: int, rec: dict[str, Any], doc: Mapping[str, Any]
    ) -> None:
        """Re-index one replaced doc, touching only fields that changed.

        Lifecycle re-deliveries leave most identifier fields untouched;
        skipping those keeps the write critical section short (this runs
        under the store lock on the concurrent-ingest hot path).
        """
        for f, plain in zip(self._eq_fields, self._eq_plain):
            v = doc.get(f) if plain else get_path(doc, f)
            cur = rec[f]
            if cur is not _UNHASHABLE and (
                v is cur or (type(v) is type(cur) and v == cur)
            ):
                continue
            self._eq_unrecord_field(doc_id, f, cur)
            try:
                index = self._eq_index[f]
                ids = index.get(v)
                if ids is None:
                    index[v] = {doc_id}
                else:
                    ids.add(doc_id)
                rec[f] = v
            except TypeError:
                self._eq_overflow[f].add(doc_id)
                rec[f] = _UNHASHABLE

    def _range_add(self, doc_id: int, doc: Mapping[str, Any]) -> None:
        """Incrementally index one new doc (clean fields only)."""
        for f, plain in zip(self._range_fields, self._range_plain):
            if f in self._range_dirty:
                continue
            v = doc.get(f) if plain else get_path(doc, f)
            # inlined _numeric: this runs per range field per ingested doc
            if isinstance(v, (int, float)) and v == v:
                insort(self._range_entries[f], (v, doc_id))
            elif v is not None:
                self._range_overflow[f].add(doc_id)

    def _range_update(self, doc_id: int, old: Mapping[str, Any], new: Mapping[str, Any]) -> None:
        """Re-index one replaced doc; falls back to a dirty mark on surprise."""
        for f in self._range_fields:
            if f in self._range_dirty:
                continue
            old_v, new_v = get_path(old, f), get_path(new, f)
            if old_v is new_v or (type(old_v) is type(new_v) and old_v == new_v):
                continue
            if _numeric(old_v):
                entries = self._range_entries[f]
                i = bisect_left(entries, (old_v, doc_id))
                if i < len(entries) and entries[i] == (old_v, doc_id):
                    entries.pop(i)
                else:
                    self._range_dirty.add(f)
                    continue
            elif old_v is not None:
                self._range_overflow[f].discard(doc_id)
            if _numeric(new_v):
                insort(self._range_entries[f], (new_v, doc_id))
            elif new_v is not None:
                self._range_overflow[f].add(doc_id)

    def _range_rebuild(self, field: str) -> None:
        entries: list[tuple[Any, int]] = []
        overflow: set[int] = set()
        for doc_id, doc in enumerate(self._docs):
            v = get_path(doc, field)
            if _numeric(v):
                entries.append((v, doc_id))
            elif v is not None:
                overflow.add(doc_id)
        entries.sort()
        self._range_entries[field] = entries
        self._range_overflow[field] = overflow
        self._range_dirty.discard(field)

    def _ensure_range_index(self, field: str) -> None:
        if field in self._range_dirty:
            self._range_rebuild(field)

    # -- writes -----------------------------------------------------------------
    def insert(self, doc: Mapping[str, Any]) -> None:
        with self._lock:
            self._version += 1
            stored = dict(doc) if self._copy_docs else doc  # type: ignore[assignment]
            doc_id = len(self._docs)
            self._docs.append(stored)
            self._eq_vals.append(self._eq_record(doc_id, stored))
            self._range_add(doc_id, stored)

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> int:
        with self._lock:
            self._version += 1
            n = 0
            for d in docs:
                stored = dict(d) if self._copy_docs else d  # type: ignore[assignment]
                doc_id = len(self._docs)
                self._docs.append(stored)
                self._eq_vals.append(self._eq_record(doc_id, stored))
                n += 1
            if n:
                # bulk loads skip per-doc insort; the sorted index is
                # rebuilt once on the next range query
                self._range_dirty.update(self._range_fields)
            return n

    def upsert(self, doc: Mapping[str, Any], key_field: str = "task_id") -> bool:
        """Insert or replace by key; returns True when it replaced.

        Later lifecycle messages for the same task (RUNNING then
        FINISHED) collapse into the freshest record, merging fields so a
        FINISHED update cannot erase telemetry captured at start.
        """
        with self._lock:
            self._version += 1
            return self._upsert_locked(doc, key_field)

    def upsert_many(
        self, docs: Iterable[Mapping[str, Any]], key_field: str = "task_id"
    ) -> int:
        """Upsert a batch under one lock acquisition; returns replace count.

        The streaming-hub flush path (buffer -> broker -> keeper) calls
        this so a batch of N lifecycle messages costs one lock round
        trip instead of N.
        """
        with self._lock:
            self._version += 1
            replaced = 0
            for d in docs:
                if self._upsert_locked(d, key_field):
                    replaced += 1
            return replaced

    def _upsert_locked(self, doc: Mapping[str, Any], key_field: str) -> bool:
        key = doc.get(key_field)
        if key is None:
            raise DatabaseError(f"upsert requires {key_field!r} in the document")
        k = key if type(key) is str else str(key)
        idx = self._by_key.get(k)
        if idx is None:
            doc_id = len(self._docs)
            self._by_key[k] = doc_id
            stored = dict(doc) if self._copy_docs else doc  # type: ignore[assignment]
            self._docs.append(stored)
            self._eq_vals.append(self._eq_record(doc_id, stored))
            self._range_add(doc_id, stored)
            return False
        old = self._docs[idx]
        merged = merge_upsert_doc(old, doc)
        self._docs[idx] = merged
        self._eq_update(idx, self._eq_vals[idx], merged)
        self._range_update(idx, old, merged)
        return True

    def version(self) -> int:
        """Monotonic write stamp; unchanged iff contents are unchanged.

        Contract notes (the :class:`~repro.storage.backend.StorageBackend`
        persistence clause): the stamp never resets — ``clear`` bumps it
        like any other write.  This backend is process-local, so its
        stamp dies with the process; a *persistent* backend must carry
        the stamp across reopen and restore it monotonically (see
        :meth:`repro.storage.durable.DurableStore.version`), because
        cached results and cursors keyed on a pre-restart stamp must
        never pair with a post-restart store.
        """
        with self._lock:
            return self._version

    # -- state transfer ----------------------------------------------------------
    def export_state(self) -> tuple[list[dict[str, Any]], dict[str, int]]:
        """Consistent copy of ``(documents, upsert-key -> doc index)``.

        The durable backend's snapshot writer and the sharded
        coordinator's routing rebuild both need the store's *full*
        logical state — the documents in insertion order plus which of
        them are addressable by an upsert key — without reaching into
        internals.  Documents are copied; mutating the result never
        touches the store.
        """
        with self._lock:
            return [dict(d) for d in self._docs], dict(self._by_key)

    def import_state(
        self, docs: Iterable[Mapping[str, Any]], keys: Mapping[str, int]
    ) -> None:
        """Replace contents with an :meth:`export_state`-shaped state.

        Rebuilds every index; counts as one write (version bumps, never
        resets).  ``keys`` maps upsert keys to positions in ``docs`` —
        exactly what a later ``upsert`` needs to find its merge target.
        """
        with self._lock:
            self.clear()  # one version bump covers the whole swap
            for doc in docs:
                doc_id = len(self._docs)
                stored = dict(doc)
                self._docs.append(stored)
                self._eq_vals.append(self._eq_record(doc_id, stored))
            n = len(self._docs)
            for key, idx in keys.items():
                if not 0 <= idx < n:
                    raise DatabaseError(
                        f"import_state: key {key!r} points at document "
                        f"{idx}, store has {n}"
                    )
                self._by_key[key] = idx
            # bulk load: sorted range indexes rebuild on first range query
            self._range_dirty.update(self._range_fields)

    def clear(self) -> None:
        with self._lock:
            self._version += 1
            self._docs.clear()
            self._by_key.clear()
            self._eq_vals.clear()
            for f in self._eq_fields:
                self._eq_index[f] = {}
                self._eq_overflow[f] = set()
            for f in self._range_fields:
                self._range_entries[f] = []
                self._range_overflow[f] = set()
            self._range_dirty.clear()

    # -- planner -----------------------------------------------------------------
    def _eq_lookup(self, field: str, arg: Any) -> set[int] | None:
        """Candidate ids for ``field == arg``; None when unusable.

        May return the live index set (callers only read candidate sets,
        and always under the lock) — copying a 100k-id set per lookup
        would cost more than the scan it replaces.
        """
        try:
            ids = self._eq_index[field].get(arg)
        except TypeError:  # unhashable argument: cannot probe the hash index
            return None
        overflow = self._eq_overflow[field]
        if ids is None:
            return set(overflow)
        return ids | overflow if overflow else ids

    def _in_lookup(self, field: str, arg: Any) -> set[int] | None:
        if not isinstance(arg, (list, tuple, set, frozenset)):
            return None  # matches_filter/validate_filter raise the real error
        out: set[int] = set(self._eq_overflow[field])
        for item in arg:
            try:
                out |= self._eq_index[field].get(item, set())
            except TypeError:
                # an unhashable probe can still equal a *hashable* stored
                # value (frozenset({1}) == {1}), which the overflow set
                # does not cover — only a scan is safe
                return None
        return out

    def _range_lookup(self, field: str, ops: Mapping[str, Any]) -> set[int]:
        """Candidates for all range ops on one field, as a single slice.

        Bounds combine before slicing so ``{"$gte": a, "$lt": b}`` costs
        O(log n + window) instead of two half-store slices.  Non-numeric
        arguments constrain nothing numeric (mixed-type comparisons are
        no-match), so they empty the numeric window; non-numeric stored
        values always ride along via the overflow set and get verified.
        """
        self._ensure_range_index(field)
        entries = self._range_entries[field]
        # ids are non-negative, so (arg, -1) sorts before every entry
        # with value == arg and (arg, n_docs) after them
        lo, hi = 0, len(entries)
        for op, arg in ops.items():
            if not _numeric(arg):
                lo, hi = 0, 0
                break
            if op == "$gt":
                lo = max(lo, bisect_right(entries, (arg, len(self._docs))))
            elif op == "$gte":
                lo = max(lo, bisect_left(entries, (arg, -1)))
            elif op == "$lt":
                hi = min(hi, bisect_left(entries, (arg, -1)))
            elif op == "$lte":
                hi = min(hi, bisect_right(entries, (arg, len(self._docs))))
        out = set(self._range_overflow[field])
        out.update(doc_id for _, doc_id in entries[lo:hi])
        return out

    def _candidates_for(self, path: str, cond: Any) -> list[tuple[str, set[int]]]:
        """Access paths usable for one ``path: cond`` entry."""
        out: list[tuple[str, set[int]]] = []
        if not (isinstance(cond, Mapping) and any(k.startswith("$") for k in cond)):
            if path in self._eq_index:
                ids = self._eq_lookup(path, cond)
                if ids is not None:
                    out.append((f"eq({path})", ids))
            return out
        range_ops: dict[str, Any] = {}
        for op, arg in cond.items():
            if op == "$eq" and path in self._eq_index:
                ids = self._eq_lookup(path, arg)
                if ids is not None:
                    out.append((f"eq({path})", ids))
            elif op == "$in" and path in self._eq_index:
                ids = self._in_lookup(path, arg)
                if ids is not None:
                    out.append((f"in({path})", ids))
            elif op in _RANGE_OPS and path in self._range_entries:
                range_ops[op] = arg
        if range_ops:
            out.append((f"range({path})", self._range_lookup(path, range_ops)))
        return out

    def _plan(self, filt: Mapping[str, Any]) -> tuple[set[int] | None, list[str]]:
        """Candidate doc ids (superset of matches) + the access paths used.

        None means no index applies and the query must scan.  Candidates
        are always re-verified with :func:`matches_filter`, so every
        access path only has to guarantee it never *misses* a matching
        doc.
        """
        sets: list[tuple[str, set[int]]] = []
        for path, cond in filt.items():
            if path == "$and":
                for sub in cond:
                    cand, used = self._plan(sub)
                    if cand is not None:
                        sets.append(("+".join(used), cand))
            elif path == "$or":
                branch_sets: list[set[int]] = []
                branch_used: list[str] = []
                for sub in cond:
                    cand, used = self._plan(sub)
                    if cand is None:
                        branch_sets = []
                        break
                    branch_sets.append(cand)
                    branch_used.extend(used)
                if branch_sets:  # every branch indexable -> union prunes
                    union: set[int] = set()
                    for s in branch_sets:
                        union |= s
                    sets.append((f"or({','.join(branch_used)})", union))
            else:
                sets.extend(self._candidates_for(path, cond))
        if not sets:
            return None, []
        # most selective (smallest) first; intersection can only shrink
        sets.sort(key=lambda pair: len(pair[1]))
        used_names = [name for name, _ in sets]
        cand = sets[0][1]
        for _, s in sets[1:]:
            cand = cand & s
            if not cand:
                break
        return cand, used_names

    def _execute_filter(self, filt: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Matching docs (internal references) in insertion order; lock held."""
        if not filt:
            return list(self._docs)
        validate_filter(filt)
        cand, _ = self._plan(filt)
        if cand is None:
            return [d for d in self._docs if matches_filter(d, filt)]
        return [
            self._docs[i] for i in sorted(cand) if matches_filter(self._docs[i], filt)
        ]

    def explain(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Describe how a filter would execute (without running it fully).

        Returns ``strategy`` ("index" or "scan"), the access paths the
        planner chose, the candidate count the indexes narrowed to, and
        the total document count.
        """
        filt = filt if filt is not None else {}
        with self._lock:
            total = len(self._docs)
            if not filt:
                return {
                    "strategy": "scan",
                    "access_paths": [],
                    "candidates": total,
                    "total_docs": total,
                }
            validate_filter(filt)
            cand, used = self._plan(filt)
            return {
                "strategy": "scan" if cand is None else "index",
                "access_paths": used,
                "candidates": total if cand is None else len(cand),
                "total_docs": total,
            }

    # -- reads ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def all(self) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(d) for d in self._docs]

    def find(
        self,
        filt: Mapping[str, Any] | None = None,
        *,
        sort: list[tuple[str, int]] | None = None,
        limit: int | None = None,
        projection: list[str] | None = None,
    ) -> list[dict[str, Any]]:
        with self._lock:
            docs = self._execute_filter(filt if filt is not None else {})
        if sort:
            docs = list(docs)
            for path, direction in reversed(sort):
                sort_documents(docs, path, direction)
        if limit is not None:
            docs = docs[: max(0, limit)]
        if projection:
            docs = [{p: get_path(d, p) for p in projection} for d in docs]
        else:
            docs = [dict(d) for d in docs]
        return docs

    def find_one(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        out = self.find(filt, limit=1)
        return out[0] if out else None

    def execute_partial(self, plan: Any) -> list[Any]:
        """Run a pushdown plan locally: one partial for the whole store.

        Optional-capability entry point (see ``StorageBackend``): the
        query engine folds terminal aggregations, local top-k, and
        column projection into the store instead of gathering full
        documents.  Documents are snapshotted by reference under the
        lock exactly like :meth:`find`, then processed outside it.
        """
        from repro.query.partial import execute_plan_on_docs

        with self._lock:
            docs = self._execute_filter(
            plan.filter if plan.filter is not None else {}
        )
        return [execute_plan_on_docs(docs, plan)]

    def count(self, filt: Mapping[str, Any] | None = None) -> int:
        with self._lock:
            return len(self._execute_filter(filt if filt is not None else {}))

    def distinct(self, path: str, filt: Mapping[str, Any] | None = None) -> list[Any]:
        """Distinct non-null values of ``path``, ordered by first holder.

        Unfiltered distinct over a hash-indexed field answers straight
        from the index's value map — O(distinct values) plus one pass
        over the id sets for ordering — instead of materialising every
        document.  ``QueryAPI.workflows()/campaigns()/activities()`` ride
        this path.  Any unhashable stored value (overflow) or filter
        falls back to the verified scan.
        """
        with self._lock:
            if not filt and path in self._eq_index and not self._eq_overflow[path]:
                # min(ids) is the first doc currently holding the value,
                # which is exactly the scan path's emission order
                pairs = sorted(
                    (min(ids), v)
                    for v, ids in self._eq_index[path].items()
                    if v is not None
                )
                return [v for _, v in pairs]
            seen: dict[Any, None] = {}
            for d in self._execute_filter(filt if filt is not None else {}):
                v = get_path(d, path)
                if v is not None:
                    try:
                        seen.setdefault(v, None)
                    except TypeError:
                        seen.setdefault(repr(v), None)
            return list(seen)

    def field_counts(
        self, path: str, filt: Mapping[str, Any] | None = None
    ) -> dict[Any, int]:
        """Document count per value of ``path`` (``None`` bucket included).

        The unfiltered indexed case reads ``len()`` of each value's id
        set — no document is touched.  Matches a
        ``$group: {_id: "$path", n: {$sum: 1}}`` aggregation exactly,
        including the ``None`` group and repr-folding of unhashables.
        """
        with self._lock:
            if not filt and path in self._eq_index and not self._eq_overflow[path]:
                pairs = sorted(
                    (min(ids), v, len(ids))
                    for v, ids in self._eq_index[path].items()
                )
                return {v: n for _, v, n in pairs}
            counts: dict[Any, int] = {}
            for d in self._execute_filter(filt if filt is not None else {}):
                v = get_path(d, path)
                try:
                    hash(v)
                except TypeError:
                    v = repr(v)
                counts[v] = counts.get(v, 0) + 1
            return counts

    # -- aggregation -----------------------------------------------------------------
    def aggregate(self, pipeline: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
        stages = list(pipeline)
        if stages and len(stages[0]) == 1:
            op, arg = next(iter(stages[0].items()))
            if op == "$match":
                # a leading $match goes through the planner fast path
                return apply_pipeline_stages(self.find(arg), stages[1:])
        return apply_pipeline_stages(self.all(), stages)
