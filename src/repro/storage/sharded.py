"""Hash-partitioned provenance store: N single-node shards + a coordinator.

"One or more distributed Provenance Keeper services" (paper §2.3) imply
a store whose write path scales with concurrent producers.  One
:class:`~repro.storage.memory.ProvenanceDatabase` serialises every
writer and query on a single lock, and its sorted range indexes grow
with the *whole* store; :class:`ShardedProvenanceStore` partitions
documents by ``workflow_id`` across N independent shards, so

* concurrent ingest contends on N locks instead of one, and each
  per-shard sorted index is ~N× smaller (incremental ``insort``
  maintenance moves N× less memory per out-of-order arrival);
* workflow-targeted queries route to exactly one shard;
* everything else scatter-gathers across shards in a thread pool, with
  ``$sort``/``$limit``/``$group`` merged at the coordinator.

Routing rules (``explain()`` reports the decision):

* a document's home shard is chosen from its ``workflow_id`` when first
  seen (hash-partitioned via CRC-32 of a type-canonical key, so ``1``
  and ``1.0`` route identically); keyed documents without one route by
  their upsert key, keyless ones by arrival sequence;
* **re-delivery of a key always lands on its home shard**, even when a
  later message changes (or first supplies) ``workflow_id`` — the
  coordinator tracks such strays so targeted queries for the new value
  also visit the old home shard (a superset, never a miss);
* filters constrain routing only through ``workflow_id`` equality —
  implicit, ``$eq``, ``$in``, and ``$and``/``$or`` combinations thereof;
  any other shape (ranges, ``$regex``, ``None``, unhashable or exotic
  literals) scatters to every shard.

Result parity with the single-node store is exact for ``find`` (order,
sort stability, limit), ``aggregate``, ``count``, and ``field_counts``:
every ingested document carries a coordinator-assigned global sequence
number (stripped on egress) so merged results reproduce global
insertion order, which is what stable sorts tie-break on.  ``distinct``
returns the same value *set* but groups emission order by shard.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from typing import Any, Callable, Iterable, Mapping

from repro.errors import DatabaseError
from repro.storage.documents import get_path, sort_documents
from repro.storage.memory import (
    DEFAULT_EQUALITY_INDEX_FIELDS,
    DEFAULT_RANGE_INDEX_FIELDS,
    ProvenanceDatabase,
    apply_pipeline_stages,
    validate_filter,
)

__all__ = ["ShardedProvenanceStore", "DEFAULT_NUM_SHARDS"]

DEFAULT_NUM_SHARDS = 4

#: Internal per-document field carrying the coordinator's global
#: insertion sequence; stripped from every result before it leaves the
#: store.  Reserved by the :class:`StorageBackend` contract — a user
#: field with this name would be discarded on ingest.
_SEQ_FIELD = "__shard_seq__"

#: Stripes for the key -> home-shard table.  Concurrent per-message
#: writers must not serialise on one coordinator lock (that would
#: re-create exactly the bottleneck sharding removes), so the routing
#: table is partitioned and each stripe has its own lock.
_N_STRIPES = 64


def _route_key(value: Any) -> bytes | None:
    """Type-canonical routing key; None when the value cannot route.

    Equal values must produce equal keys (``1 == 1.0 == True`` all hash
    together; ``-0.0`` folds onto ``0.0``), because a query literal must
    reach the shard its equal stored value was routed to.  Unroutable
    values (None, containers, exotic types) force scatter instead —
    pruning is only ever an optimisation.
    """
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, (bool, int, float)):
        try:
            f = float(value)
        except OverflowError:
            # ints beyond float range have no equal float, so a
            # text key cannot split an equal pair across shards
            return b"i:" + str(value).encode()
        if f == 0:
            f = 0.0  # -0.0 == 0.0 must share a shard
        return b"n:" + repr(f).encode()
    return None


class ShardedProvenanceStore:
    """Drop-in :class:`~repro.storage.backend.StorageBackend` over N shards."""

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        *,
        shard_key: str = "workflow_id",
        equality_index_fields: Iterable[str] = DEFAULT_EQUALITY_INDEX_FIELDS,
        range_index_fields: Iterable[str] = DEFAULT_RANGE_INDEX_FIELDS,
        scatter_parallel_min: int = 250_000,
        ingest_parallel_min: int = 64,
        shard_factory: Callable[[int], Any] | None = None,
    ) -> None:
        if num_shards < 1:
            raise DatabaseError(f"num_shards must be >= 1, got {num_shards}")
        self._shard_key = shard_key
        self._shard_key_plain = "." not in shard_key
        #: the shards are single-node backends; tests and the benchmark
        #: may *inspect* them, but all traffic goes through the
        #: coordinator so routing state stays consistent.  A
        #: ``shard_factory`` swaps the shard implementation — e.g. one
        #: :class:`~repro.storage.durable.DurableStore` per shard for a
        #: WAL-file-per-shard deployment; the factory's backend must
        #: expose the protocol plus ``_lock`` (an RLock guarding its
        #: write path, used for sequence stamping) and ``export_state``
        #: (used by :meth:`rebuild_routing` after recovery).
        if shard_factory is not None:
            self.shards = tuple(shard_factory(i) for i in range(num_shards))
        else:
            self.shards = tuple(
                ProvenanceDatabase(
                    equality_index_fields=equality_index_fields,
                    range_index_fields=range_index_fields,
                    # the coordinator stamps a fresh copy of every
                    # document, so shards take ownership instead of
                    # copying again inside their write lock
                    copy_docs=False,
                )
                for _ in range(num_shards)
            )
        # scatter queries run shards inline below this store size: the
        # in-memory shards hold the GIL while scanning, so pool dispatch
        # buys latency jitter, not parallelism, until per-shard work is
        # large enough to overlap lock waits (or a backend releases the
        # GIL).  Single-target routes always run inline.
        self._scatter_parallel_min = scatter_parallel_min
        self._ingest_parallel_min = ingest_parallel_min
        # upsert key -> [home shard, last routing key]; re-delivery must
        # land where the key lives, not where its new workflow_id
        # hashes.  Striped so concurrent writers rarely share a lock.
        self._key_stripes: list[dict[str, list[Any]]] = [
            {} for _ in range(_N_STRIPES)
        ]
        self._stripe_locks = [threading.Lock() for _ in range(_N_STRIPES)]
        # next() on itertools.count is a single C call — atomic under
        # the GIL, so sequence stamping needs no lock of its own
        self._seq_counter = itertools.count(1)
        # routing key -> extra shards hosting docs whose workflow_id
        # changed after placement (targeted queries visit these too);
        # written rarely, behind its own lock
        self._stray: dict[bytes, set[int]] = {}
        # shards hosting docs whose workflow_id is an *unroutable* type
        # (e.g. Decimal(5), which equals the routable literal 5): every
        # targeted query must visit them or it could miss a match
        self._unroutable_shards: set[int] = set()
        self._stray_lock = threading.Lock()
        self._admin_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def close(self) -> None:
        with self._admin_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for shard in self.shards:
            # durable shards flush their WAL on close; plain in-memory
            # shards have nothing to release
            closer = getattr(shard, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "ShardedProvenanceStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _get_pool(self) -> ThreadPoolExecutor:
        with self._admin_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_shards, thread_name_prefix="shard"
                )
            return self._pool

    # -- placement ---------------------------------------------------------------
    def _shard_of(self, route_key: bytes) -> int:
        return zlib.crc32(route_key) % len(self.shards)

    def _upsert_one(
        self, doc: Mapping[str, Any], key_field: str
    ) -> tuple[int, dict[str, Any] | None]:
        """Route one upsert; returns (home shard, stored-or-None).

        Takes only the key's stripe lock, so four concurrent
        per-message writers almost never collide here — the coordinator
        must not become the single lock sharding exists to remove.

        For a **new** key the document is stamped with its global
        sequence and inserted into the home shard *before* the routing
        entry becomes visible (the stripe lock is held across the shard
        call), which guarantees every later delivery of the key takes
        the shard's merge path.  Re-deliveries therefore return the
        caller's document as-is (``stored=None`` -> caller applies it):
        the merge path never retains its input, so no defensive copy is
        needed.
        """
        key = doc.get(key_field)
        if key is None:
            raise DatabaseError(f"upsert requires {key_field!r} in the document")
        k = key if type(key) is str else str(key)
        wf = (
            doc.get(self._shard_key)
            if self._shard_key_plain
            else get_path(doc, self._shard_key)
        )
        stripe = hash(k) & (_N_STRIPES - 1)
        with self._stripe_locks[stripe]:
            entry = self._key_stripes[stripe].get(k)
            if entry is None:
                rk = _route_key(wf) if wf is not None else None
                shard = self._shard_of(rk if rk is not None else b"k:" + k.encode())
                if wf is not None and rk is None:
                    with self._stray_lock:
                        self._unroutable_shards.add(shard)
                stored = dict(doc)
                target = self.shards[shard]
                # stamp under the shard's (re-entrant) write lock: lock
                # order then equals sequence order within a shard, which
                # is what makes per-shard limit pushdown a subsequence
                # of the global order even under concurrent writers
                with target._lock:
                    stored[_SEQ_FIELD] = next(self._seq_counter)
                    target.upsert(stored, key_field=key_field)
                self._key_stripes[stripe][k] = [shard, wf]
                return shard, None
            # re-delivery: stay home, but track a changed workflow_id so
            # targeted queries for the new value still find this shard
            if wf is not None and wf != entry[1]:
                entry[1] = wf
                rk = _route_key(wf)
                if rk is None:
                    with self._stray_lock:
                        self._unroutable_shards.add(entry[0])
                elif self._shard_of(rk) != entry[0]:
                    with self._stray_lock:
                        self._stray.setdefault(rk, set()).add(entry[0])
        if _SEQ_FIELD in doc:  # never trust external sequence stamps
            doc = {f: v for f, v in doc.items() if f != _SEQ_FIELD}
        return entry[0], doc  # type: ignore[return-value]

    # -- writes ------------------------------------------------------------------
    def upsert(self, doc: Mapping[str, Any], key_field: str = "task_id") -> bool:
        shard, redelivery = self._upsert_one(doc, key_field)
        if redelivery is None:
            return False  # first delivery: stored inside _upsert_one
        return self.shards[shard].upsert(redelivery, key_field=key_field)

    def upsert_many(
        self, docs: Iterable[Mapping[str, Any]], key_field: str = "task_id"
    ) -> int:
        """Group a batch per home shard and ingest the groups in parallel.

        Routing takes per-key stripe locks only (concurrent writers
        serialise just on colliding keys); first deliveries land during
        routing, and the re-delivery sub-batches then land through each
        shard's ``upsert_many`` — one shard-lock acquisition per group,
        dispatched concurrently when the batch is large enough to
        amortise pool overhead.
        """
        groups: dict[int, list[Mapping[str, Any]]] = {}
        total = 0
        for doc in docs:
            shard, redelivery = self._upsert_one(doc, key_field)
            total += 1
            if redelivery is None:
                continue
            group = groups.get(shard)
            if group is None:
                groups[shard] = group = []
            group.append(redelivery)
        if not groups:
            return 0
        if len(groups) == 1 or total < self._ingest_parallel_min:
            return sum(
                self.shards[s].upsert_many(batch, key_field=key_field)
                for s, batch in groups.items()
            )
        pool = self._get_pool()
        futures = [
            pool.submit(self.shards[s].upsert_many, batch, key_field)
            for s, batch in groups.items()
        ]
        return sum(f.result() for f in futures)

    def _route_keyless(self, doc: Mapping[str, Any], fallback: bytes) -> int:
        wf = get_path(doc, self._shard_key)
        rk = _route_key(wf) if wf is not None else None
        shard = self._shard_of(rk if rk is not None else fallback)
        if wf is not None and rk is None:
            with self._stray_lock:
                self._unroutable_shards.add(shard)
        return shard

    def insert(self, doc: Mapping[str, Any]) -> None:
        stored = dict(doc)
        # hash keyless docs by identity-ish content so they spread;
        # routing needs no sequence, the stamp happens under the lock
        shard = self._route_keyless(doc, b"k:%d" % id(stored))
        target = self.shards[shard]
        with target._lock:  # see _upsert_one: lock order == seq order
            stored[_SEQ_FIELD] = next(self._seq_counter)
            target.insert(stored)

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> int:
        """Bulk keyless load, stamped in argument order.

        All target shard locks are held (in sorted order, so bulk loads
        cannot deadlock each other) from stamping through landing: the
        position==sequence invariant that unsorted limit pushdown
        depends on must hold even when bulk loads race other writers.
        """
        groups: dict[int, list[dict[str, Any]]] = {}
        stamped: list[dict[str, Any]] = []
        for doc in docs:
            stored = dict(doc)
            stored.pop(_SEQ_FIELD, None)
            groups.setdefault(
                self._route_keyless(doc, b"k:%d" % id(stored)), []
            ).append(stored)
            stamped.append(stored)
        if not stamped:
            return 0
        targets = sorted(groups)
        with ExitStack() as stack:
            for s in targets:
                stack.enter_context(self.shards[s]._lock)
            for stored in stamped:
                stored[_SEQ_FIELD] = next(self._seq_counter)
            for s in targets:
                self.shards[s].insert_many(groups[s])
        return len(stamped)

    def clear(self) -> None:
        """Reset the store (not safe against concurrent writers, like
        any store-wide wipe)."""
        for stripe, lock in zip(self._key_stripes, self._stripe_locks):
            with lock:
                stripe.clear()
        with self._stray_lock:
            self._stray.clear()
            self._unroutable_shards.clear()
        self._seq_counter = itertools.count(1)
        for shard in self.shards:
            shard.clear()

    def rebuild_routing(self) -> int:
        """Reconstruct coordinator state from shard contents (cold start).

        The key→home-shard table, stray tracking, unroutable-shard set,
        and global sequence counter live only in coordinator memory; when
        the shards are *durable* backends recovered from disk, this
        rebuilds all four from what the shards actually hold, so routing
        decisions after a restart match the placement decisions made
        before it.  Returns the number of keyed documents re-registered.
        Like :meth:`clear`, not safe against concurrent writers.
        """
        for stripe, lock in zip(self._key_stripes, self._stripe_locks):
            with lock:
                stripe.clear()
        with self._stray_lock:
            self._stray.clear()
            self._unroutable_shards.clear()
        max_seq = 0
        keyed = 0
        for shard_idx, shard in enumerate(self.shards):
            exporter = getattr(shard, "export_state", None)
            if exporter is None:
                raise DatabaseError(
                    f"shard {shard_idx} backend "
                    f"({type(shard).__name__}) does not expose "
                    "export_state(); cannot rebuild routing"
                )
            docs, keys = exporter()
            by_index = {idx: key for key, idx in keys.items()}
            for idx, doc in enumerate(docs):
                seq = doc.get(_SEQ_FIELD)
                if isinstance(seq, int) and seq > max_seq:
                    max_seq = seq
                wf = (
                    doc.get(self._shard_key)
                    if self._shard_key_plain
                    else get_path(doc, self._shard_key)
                )
                key = by_index.get(idx)
                if key is not None:
                    stripe = hash(key) & (_N_STRIPES - 1)
                    with self._stripe_locks[stripe]:
                        self._key_stripes[stripe][key] = [shard_idx, wf]
                    keyed += 1
                if wf is None:
                    continue
                rk = _route_key(wf)
                with self._stray_lock:
                    if rk is None:
                        self._unroutable_shards.add(shard_idx)
                    elif self._shard_of(rk) != shard_idx:
                        # the document's current shard-key value hashes
                        # elsewhere (it changed after placement, or the
                        # key itself routed the doc): targeted queries
                        # for that value must still visit this shard
                        self._stray.setdefault(rk, set()).add(shard_idx)
        self._seq_counter = itertools.count(max_seq + 1)
        return keyed

    # -- routing -----------------------------------------------------------------
    def _routing_values(self, filt: Mapping[str, Any]) -> set[Any] | None:
        """Shard-key literals a matching doc could hold; None = any.

        Only conjuncts that *restrict* the shard key contribute; the
        result is a superset guarantee (every matching document's
        ``workflow_id`` is in the returned set), which is all pruning
        needs — candidates are still verified shard-side.
        """
        values: set[Any] | None = None
        for path, cond in filt.items():
            conj: set[Any] | None = None
            if path == "$and":
                for sub in cond:
                    sv = self._routing_values(sub)
                    if sv is not None:
                        conj = sv if conj is None else conj & sv
            elif path == "$or":
                union: set[Any] = set()
                routable = True
                for sub in cond:
                    sv = self._routing_values(sub)
                    if sv is None:
                        routable = False
                        break
                    union |= sv
                conj = union if routable else None
            elif path == self._shard_key:
                if isinstance(cond, Mapping) and any(
                    k.startswith("$") for k in cond
                ):
                    for op, arg in cond.items():
                        ov: set[Any] | None = None
                        if op == "$eq" and _route_key(arg) is not None:
                            ov = {arg}
                        elif op == "$in" and isinstance(
                            arg, (list, tuple, set, frozenset)
                        ):
                            if all(_route_key(v) is not None for v in arg):
                                ov = set(arg)
                        if ov is not None:
                            conj = ov if conj is None else conj & ov
                elif _route_key(cond) is not None:  # implicit equality
                    conj = {cond}
            if conj is not None:
                values = conj if values is None else values & conj
        return values

    def _targets(self, filt: Mapping[str, Any]) -> tuple[list[int], set[Any] | None]:
        values = self._routing_values(filt) if filt else None
        if values is None:
            return list(range(len(self.shards))), None
        targets: set[int] = set()
        with self._stray_lock:
            # any shard hosting an unroutable workflow_id might hold a
            # value equal to a routable literal (Decimal(5) == 5)
            targets.update(self._unroutable_shards)
            for v in values:
                rk = _route_key(v)
                assert rk is not None  # _routing_values only keeps routables
                targets.add(self._shard_of(rk))
                targets.update(self._stray.get(rk, ()))
        return sorted(targets), values

    def _map_shards(
        self, fn: Callable[[int], Any], targets: list[int]
    ) -> list[Any]:
        if len(targets) <= 1 or len(self) < self._scatter_parallel_min:
            return [fn(s) for s in targets]
        return list(self._get_pool().map(fn, targets))

    # -- reads -------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def all(self) -> list[dict[str, Any]]:
        parts = self._map_shards(
            lambda s: self.shards[s].all(), list(range(len(self.shards)))
        )
        return self._merge(parts)

    @staticmethod
    def _gather(parts: list[list[dict[str, Any]]]) -> list[dict[str, Any]]:
        """Concatenate per-shard results into global sequence order.

        Single-shard results are re-sorted too: two writers admitted
        concurrently to one shard can transpose neighbouring sequence
        numbers in the shard's local order, and every egress path must
        agree on one global ordering.  Documents still carry the
        sequence field — strip with :meth:`_strip` after any
        limit/projection has discarded what it will.
        """
        docs = parts[0] if len(parts) == 1 else [d for p in parts for d in p]
        docs.sort(key=lambda d: d.get(_SEQ_FIELD, 0))
        return docs

    @staticmethod
    def _strip(docs: list[dict[str, Any]]) -> list[dict[str, Any]]:
        for d in docs:
            d.pop(_SEQ_FIELD, None)
        return docs

    def _merge(self, parts: list[list[dict[str, Any]]]) -> list[dict[str, Any]]:
        return self._strip(self._gather(parts))

    def find(
        self,
        filt: Mapping[str, Any] | None = None,
        *,
        sort: list[tuple[str, int]] | None = None,
        limit: int | None = None,
        projection: list[str] | None = None,
    ) -> list[dict[str, Any]]:
        filt = filt if filt is not None else {}
        # validate up front: routing to zero/one shard must reject a
        # malformed filter exactly like a full scan would
        validate_filter(filt)
        targets, _ = self._targets(filt)
        if not targets:
            return []
        if sort is None and limit is not None:
            # each shard's first `limit` docs (a subsequence of global
            # order) is a superset of the global first `limit`
            parts = self._map_shards(
                lambda s: self.shards[s].find(filt, limit=limit), targets
            )
        else:
            # with a sort, per-shard limits could drop a global winner
            # when shards disagree on mixed-type ordering — fetch all
            # matches and order once at the coordinator
            parts = self._map_shards(lambda s: self.shards[s].find(filt), targets)
        docs = self._gather(parts)
        if sort:
            for path, direction in reversed(sort):
                sort_documents(docs, path, direction)
        if limit is not None:
            docs = docs[: max(0, limit)]
        self._strip(docs)  # after the limit: only survivors pay
        if projection:
            return [{p: get_path(d, p) for p in projection} for d in docs]
        return docs

    def find_one(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        out = self.find(filt, limit=1)
        return out[0] if out else None

    def count(self, filt: Mapping[str, Any] | None = None) -> int:
        filt = filt if filt is not None else {}
        validate_filter(filt)
        targets, _ = self._targets(filt)
        return sum(self._map_shards(lambda s: self.shards[s].count(filt), targets))

    def execute_partial(self, plan: Any) -> list[Any]:
        """Scatter a pushdown plan: one ``ShardPartial`` per targeted shard.

        The plan's filter routes exactly like :meth:`find` (an equality
        on the routing key still prunes shards), and each shard folds
        its terminal aggregation / local top-k / projection locally so
        only partial states or candidate documents cross the gather
        boundary.  Shards without a native ``execute_partial`` — e.g. a
        third-party backend mounted as a shard — are driven through
        plain ``find()``, the documented capability fallback.
        """
        from repro.query.partial import execute_plan_on_docs

        filt = plan.filter if plan.filter is not None else {}
        validate_filter(filt)
        targets, _ = self._targets(filt)

        def run(s: int) -> Any:
            shard = self.shards[s]
            native = getattr(shard, "execute_partial", None)
            if native is not None:
                parts = native(plan)
                if parts:
                    return parts[0]
            return execute_plan_on_docs(shard.find(filt), plan)

        return self._map_shards(run, targets)

    def distinct(self, path: str, filt: Mapping[str, Any] | None = None) -> list[Any]:
        """Distinct non-null values (same set as single-node; emission
        order groups by shard rather than global insertion)."""
        filt = filt if filt is not None else {}
        validate_filter(filt)
        targets, _ = self._targets(filt)
        parts = self._map_shards(
            lambda s: self.shards[s].distinct(path, filt or None), targets
        )
        seen: dict[Any, None] = {}
        for part in parts:
            for v in part:
                seen.setdefault(v, None)
        return list(seen)

    def field_counts(
        self, path: str, filt: Mapping[str, Any] | None = None
    ) -> dict[Any, int]:
        filt = filt if filt is not None else {}
        validate_filter(filt)
        targets, _ = self._targets(filt)
        parts = self._map_shards(
            lambda s: self.shards[s].field_counts(path, filt or None), targets
        )
        out: dict[Any, int] = {}
        for part in parts:
            for v, n in part.items():
                out[v] = out.get(v, 0) + n
        return out

    # -- aggregation / introspection ----------------------------------------------
    def aggregate(self, pipeline: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
        stages = list(pipeline)
        if stages and len(stages[0]) == 1:
            op, arg = next(iter(stages[0].items()))
            if op == "$match":
                # the leading $match routes + gathers through find(),
                # so targeted pipelines touch one shard only
                return apply_pipeline_stages(self.find(arg), stages[1:])
        return apply_pipeline_stages(self.all(), stages)

    def version(self) -> int:
        """Monotonic write stamp: the sum of all shard versions.

        Every write lands in exactly one shard (and bumps it), and shard
        versions never reset — including on :meth:`clear`, which bumps
        each shard — so the sum is monotonic and unchanged iff no shard
        accepted a write.  Reading the shards in order without a global
        lock is safe for cache use: a concurrent write can only make the
        sum *larger* than the value a cached result was stored under,
        never reproduce it.

        Persistence contract: with in-memory shards the stamp is
        process-local; with durable shards (``shard_factory`` +
        :func:`repro.storage.durable.open_durable_sharded`) each shard
        restores its own stamp across reopen — monotonic, never reset
        to 0 — so the sum inherits both properties.
        """
        return sum(shard.version() for shard in self.shards)

    def explain(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """The coordinator's routing decision plus each shard's plan."""
        filt = filt if filt is not None else {}
        validate_filter(filt)
        targets, values = self._targets(filt)
        per_shard = [
            dict(self.shards[s].explain(filt), shard=s) for s in targets
        ]
        access: dict[str, None] = {}
        for plan in per_shard:
            for name in plan["access_paths"]:
                access.setdefault(name, None)
        return {
            "backend": "sharded",
            "strategy": (
                "targeted" if len(targets) < len(self.shards) else "scatter"
            ),
            "shard_key": self._shard_key,
            "shards": targets,
            "total_shards": len(self.shards),
            "routing_values": (
                sorted(values, key=repr) if values is not None else None
            ),
            "access_paths": list(access),
            "candidates": sum(p["candidates"] for p in per_shard),
            "total_docs": len(self),
            "per_shard": per_shard,
        }
