"""Pluggable provenance storage backends.

The paper's provenance database is backend-agnostic (§2.3); this
package is the seam that makes it so in code:

* :mod:`repro.storage.backend` — :class:`StorageBackend`, the structural
  protocol every consumer (keeper, Query API, lineage, agent tools,
  query-IR pushdown) depends on;
* :mod:`repro.storage.documents` — the document-level semantics every
  backend shares (dotted-path access, the upsert merge rule, the stable
  nulls-last sort);
* :mod:`repro.storage.memory` — :class:`ProvenanceDatabase`, the
  single-node indexed reference backend;
* :mod:`repro.storage.sharded` — :class:`ShardedProvenanceStore`,
  hash-partitioned by ``workflow_id`` with single-shard routing for
  targeted queries and coordinator-merged scatter-gather for the rest;
* :mod:`repro.storage.durable` — :class:`DurableStore`, the
  crash-recoverable backend: CRC-framed write-ahead-log segments plus
  compacting snapshots around the in-memory reference store, with
  :func:`open_durable_sharded` composing one WAL per shard under the
  sharded coordinator.

All stores are drop-in interchangeable; the parity suites in
``tests/storage`` and ``benchmarks/bench_sharded_store.py`` /
``benchmarks/bench_durable_store.py`` hold them to identical results —
the durability suite additionally proves crash recovery by injecting a
kill at every write boundary.
"""

from repro.storage.backend import StorageBackend
from repro.storage.durable import (
    DurableStore,
    FileOps,
    open_durable_sharded,
)
from repro.storage.documents import (
    get_path,
    merge_upsert_doc,
    path_exists,
    sort_documents,
)
from repro.storage.memory import (
    DEFAULT_EQUALITY_INDEX_FIELDS,
    DEFAULT_RANGE_INDEX_FIELDS,
    ProvenanceDatabase,
    apply_pipeline_stages,
    matches_filter,
    validate_filter,
)
from repro.storage.sharded import DEFAULT_NUM_SHARDS, ShardedProvenanceStore

__all__ = [
    "StorageBackend",
    "ProvenanceDatabase",
    "ShardedProvenanceStore",
    "DurableStore",
    "FileOps",
    "open_durable_sharded",
    "DEFAULT_EQUALITY_INDEX_FIELDS",
    "DEFAULT_RANGE_INDEX_FIELDS",
    "DEFAULT_NUM_SHARDS",
    "get_path",
    "path_exists",
    "merge_upsert_doc",
    "sort_documents",
    "matches_filter",
    "validate_filter",
    "apply_pipeline_stages",
]
