"""Document-level helpers shared by every storage backend.

These are the pieces of the store's semantics that must stay *identical*
across backends for them to be drop-in interchangeable:

* :func:`get_path` / :func:`path_exists` — dotted-path resolution with
  the literal-key-wins rule the DataFrame layer's flattening depends on;
* :func:`merge_upsert_doc` — the upsert merge rule (non-``None`` fields
  win, ``None`` only fills gaps), shared with the lineage index whose
  parity with scan-built graphs depends on merging re-delivered
  documents exactly as the database does;
* :func:`sort_documents` — the stable, nulls-last sort every backend
  (and the sharded coordinator's merge step) applies.

``get_path`` sits on the hottest paths in the repository — index
maintenance runs it per indexed field per ingested document, and scan
verification runs it per filter entry per candidate — so it special
cases plain ``dict`` (the only type the stores ever hold) before paying
for an ABC ``isinstance`` check, and skips the dotted walk entirely for
top-level misses.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "get_path",
    "path_exists",
    "merge_upsert_doc",
    "sort_documents",
]


def get_path(doc: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted path inside a nested document (None if absent).

    A literal (pre-flattened) key wins over nested traversal so documents
    stored in flattened form match the same filters as nested ones — the
    DataFrame layer flattens both to the same column name.
    """
    # `type(...) is dict` first: abc.Mapping's __instancecheck__ costs
    # ~10x a plain dict check and this runs per field per document
    if type(doc) is dict or isinstance(doc, Mapping):
        if path in doc:
            return doc[path]
        if "." not in path:
            return None
    cur: Any = doc
    for part in path.split("."):
        if (type(cur) is dict or isinstance(cur, Mapping)) and part in cur:
            cur = cur[part]
        else:
            return None
    return cur


def path_exists(doc: Mapping[str, Any], path: str) -> bool:
    """Whether ``path`` resolves in ``doc`` (the ``$exists`` semantics)."""
    if type(doc) is dict or isinstance(doc, Mapping):
        if path in doc:
            return True
        if "." not in path:
            return False
    cur: Any = doc
    for part in path.split("."):
        if (type(cur) is dict or isinstance(cur, Mapping)) and part in cur:
            cur = cur[part]
        else:
            return False
    return True


def merge_upsert_doc(
    old: Mapping[str, Any], new: Mapping[str, Any]
) -> dict[str, Any]:
    """The upsert merge rule: non-None fields win, None only fills gaps.

    Shared with the lineage index (:mod:`repro.lineage`), whose parity
    with scan-built graphs depends on merging re-delivered documents
    exactly as the database does — keep one definition.
    """
    merged = dict(old)
    for k, v in new.items():
        if v is not None or k not in merged:
            merged[k] = v
    return merged


def sort_documents(
    docs: list[dict[str, Any]], path: str, direction: int
) -> None:
    """Stable in-place sort on a dotted path; nulls last in both directions."""

    def value_key(d: dict[str, Any]):
        v = get_path(d, path)
        return v if isinstance(v, (int, float, str)) else repr(v)

    def has_value(d: dict[str, Any]) -> bool:
        return get_path(d, path) is not None

    with_value = [d for d in docs if has_value(d)]
    without = [d for d in docs if not has_value(d)]
    try:
        with_value.sort(key=value_key, reverse=direction < 0)
    except TypeError:  # mixed types: fall back to string ordering
        with_value.sort(key=lambda d: str(value_key(d)), reverse=direction < 0)
    docs[:] = with_value + without
