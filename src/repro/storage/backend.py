"""The storage seam: the protocol every provenance backend implements.

The reference architecture's provenance database is backend-agnostic —
MongoDB, LMDB, Neo4j, or anything else that can answer the Query API
surface (paper §2.3).  :class:`StorageBackend` is that surface as a
structural :class:`typing.Protocol`: the keeper, the Query API, the
lineage subsystem, the agent's tools, and the query-IR pushdown all
depend on *this*, never on a concrete store, so single-node
(:class:`repro.storage.ProvenanceDatabase`) and sharded
(:class:`repro.storage.ShardedProvenanceStore`) deployments are drop-in
interchangeable — and a future persistent or remote backend only has to
implement these methods.

The protocol is ``runtime_checkable`` so wiring code (and the
conformance tests) can assert ``isinstance(store, StorageBackend)``;
being structural, third-party backends need no import of this module to
conform.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

__all__ = ["StorageBackend"]


@runtime_checkable
class StorageBackend(Protocol):
    """Read/write surface a provenance store must provide.

    Semantics every implementation must honour (the parity suites in
    ``tests/storage`` assert them against the single-node reference):

    * **upsert merge** — re-delivery of a key merges via
      :func:`repro.storage.documents.merge_upsert_doc` (non-``None``
      wins), so lifecycle updates collapse into one record;
    * **insertion order** — ``find`` without ``sort`` returns documents
      in global first-insertion order; sorts are stable with nulls last;
    * **exactness** — indexes and routing are pure accelerators: every
      result is verified against the full predicate, so no access path
      may change *what* is returned, only how fast;
    * **reserved field** — the key ``__shard_seq__`` belongs to the
      storage layer (the sharded coordinator records global insertion
      order in it and strips it on egress); documents must not use it;
    * **versioning** — :meth:`version` is monotonically non-decreasing
      and changes whenever a write *may* have changed store contents
      (including ``clear``; it must never reset).  Two calls returning
      the same value guarantee the store's readable contents did not
      change in between, which is what lets the query-result cache
      (:class:`repro.query.QueryCache`) serve repeated reads without
      re-executing them.

      **Persistence clause:** the stamp must be monotonic across the
      store's whole lifetime, *including reopen* — a persistent backend
      persists it alongside the data and must never restart it at 0 (a
      reused stamp could pair a pre-restart cache entry or pagination
      cursor with a post-restart store that holds different contents).
      The durable backend additionally bumps the stamp once on every
      recovery (the *recovery epoch bump*), so a version observed
      before a crash is guaranteed never to be observed again after
      one, even when every acknowledged write survived.

    **Optional capability — operator pushdown.**  A backend *may*
    additionally expose ``execute_partial(plan) -> list[ShardPartial]``
    (see :mod:`repro.query.partial`): given a
    :class:`~repro.query.partial.PushPlan` it runs the plan's filters
    and terminal decomposition locally and returns partial states
    instead of documents.  The query engine probes for the method with
    ``getattr`` and silently uses the classic ``find`` + gather path
    when it is absent, so third-party backends keep working unchanged;
    the sharded coordinator likewise falls back per shard via
    :func:`repro.query.partial.execute_plan_on_docs` over ``find``.
    Implementations must answer for exactly the documents ``find``
    would return for ``plan.filter``.
    """

    # -- writes ---------------------------------------------------------------
    def insert(self, doc: Mapping[str, Any]) -> None: ...

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> int: ...

    def upsert(self, doc: Mapping[str, Any], key_field: str = "task_id") -> bool: ...

    def upsert_many(
        self, docs: Iterable[Mapping[str, Any]], key_field: str = "task_id"
    ) -> int: ...

    def clear(self) -> None: ...

    # -- reads ----------------------------------------------------------------
    def __len__(self) -> int: ...

    def all(self) -> list[dict[str, Any]]: ...

    def find(
        self,
        filt: Mapping[str, Any] | None = None,
        *,
        sort: list[tuple[str, int]] | None = None,
        limit: int | None = None,
        projection: list[str] | None = None,
    ) -> list[dict[str, Any]]: ...

    def find_one(
        self, filt: Mapping[str, Any] | None = None
    ) -> dict[str, Any] | None: ...

    def count(self, filt: Mapping[str, Any] | None = None) -> int: ...

    def distinct(
        self, path: str, filt: Mapping[str, Any] | None = None
    ) -> list[Any]: ...

    def field_counts(
        self, path: str, filt: Mapping[str, Any] | None = None
    ) -> dict[Any, int]: ...

    # -- aggregation / introspection -------------------------------------------
    def aggregate(self, pipeline: list[Mapping[str, Any]]) -> list[dict[str, Any]]: ...

    def explain(self, filt: Mapping[str, Any] | None = None) -> dict[str, Any]: ...

    def version(self) -> int: ...
