"""repro — LLM Agents for Interactive Workflow Provenance.

Reproduction of "LLM Agents for Interactive Workflow Provenance:
Reference Architecture and Evaluation Methodology" (SC Workshops '25).

Top-level convenience exports cover the 90 % use case::

    from repro import CaptureContext, ProvenanceAgent, flow_task

    ctx = CaptureContext()
    agent = ProvenanceAgent(ctx)

    @flow_task()
    def step(x):
        return {"y": x * x}

    step(3, _ctx=ctx); ctx.flush()
    print(agent.chat("How many tasks have finished?").text)

Subsystem packages (see DESIGN.md for the full inventory):

- :mod:`repro.capture`     — instrumentation + observability adapters
- :mod:`repro.messaging`   — streaming hub (brokers, buffering, federation)
- :mod:`repro.provenance`  — message schema, W3C-PROV, keeper, Query API
- :mod:`repro.storage`     — pluggable storage backends (single-node, sharded)
- :mod:`repro.lineage`     — live-maintained lineage graph + traversal API
- :mod:`repro.agent`       — the provenance AI agent (paper §4)
- :mod:`repro.llm`         — simulated LLM service + adaptive routing
- :mod:`repro.evaluation`  — the §3/§5 evaluation methodology
- :mod:`repro.workflows`   — engine + synthetic / chemistry / LPBF workflows
- :mod:`repro.dataframe`   — mini columnar DataFrame engine
- :mod:`repro.query`       — pandas-style query IR
"""

from repro.agent.agent import AgentReply, ProvenanceAgent
from repro.agent.service import AgentService
from repro.agent.session import AgentSession
from repro.api.client import GatewayClient, RemoteClient
from repro.api.gateway import ProvenanceGateway
from repro.api.http import GatewayHTTPServer
from repro.capture.context import CaptureContext, WorkflowRun
from repro.capture.instrumentation import flow_task
from repro.dataframe import DataFrame
from repro.lineage import LineageIndex, LineageService
from repro.llm.service import ChatRequest, ChatResponse, LLMServer
from repro.messaging.broker import InProcessBroker
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI
from repro.query.cache import QueryCache
from repro.storage import (
    ProvenanceDatabase,
    ShardedProvenanceStore,
    StorageBackend,
)

__version__ = "0.9.0"

__all__ = [
    "AgentReply",
    "AgentService",
    "AgentSession",
    "QueryCache",
    "CaptureContext",
    "ChatRequest",
    "ChatResponse",
    "DataFrame",
    "GatewayClient",
    "GatewayHTTPServer",
    "InProcessBroker",
    "LLMServer",
    "ProvenanceGateway",
    "RemoteClient",
    "LineageIndex",
    "LineageService",
    "ProvenanceAgent",
    "ProvenanceDatabase",
    "ProvenanceKeeper",
    "QueryAPI",
    "ShardedProvenanceStore",
    "StorageBackend",
    "WorkflowRun",
    "flow_task",
    "__version__",
]
