"""DataFrame: an ordered collection of equal-length Columns.

Supports the pandas-flavoured subset the provenance agent's generated
query code uses::

    df[df["activity_id"] == "run_dft"]
    df.sort_values("started_at", ascending=False).head(5)
    df.groupby("bond_id")["bd_enthalpy"].mean()
    df[df["bond_id"].str.contains("C-H")]["bd_enthalpy"].mean()

Frames are immutable: every operation returns a new frame sharing column
storage where possible (views, not copies — filtering and sorting gather
with numpy fancy indexing once per column).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.dataframe import dtypes as dt
from repro.dataframe.column import Column
from repro.errors import ColumnNotFoundError, LengthMismatchError

__all__ = ["DataFrame", "concat", "flatten_record"]


def flatten_record(
    record: Mapping[str, Any],
    *,
    sep: str = ".",
    max_depth: int = 4,
) -> dict[str, Any]:
    """Flatten nested dicts into dot-separated keys.

    Provenance messages nest application data under ``used`` / ``generated``
    (see the paper's Listing 1); the in-memory context flattens them so the
    agent's flat column queries can reach e.g.
    ``used.frags.fragment1`` or ``telemetry_at_end.cpu.percent``.
    Lists are kept as opaque values.
    """
    out: dict[str, Any] = {}

    def walk(prefix: str, value: Any, depth: int) -> None:
        if isinstance(value, Mapping) and depth < max_depth:
            if not value:
                out[prefix] = {}
                return
            for k, v in value.items():
                key = f"{prefix}{sep}{k}" if prefix else str(k)
                walk(key, v, depth + 1)
        else:
            out[prefix] = value

    for k, v in record.items():
        walk(str(k), v, 0)
    return out


class DataFrame:
    """Immutable, column-oriented table."""

    def __init__(self, data: Mapping[str, Iterable[Any]] | None = None):
        self._cols: dict[str, Column] = {}
        if data:
            n = None
            for name, values in data.items():
                col = values if isinstance(values, Column) else Column(str(name), values)
                if col.name != name:
                    col = col.rename(str(name))
                if n is None:
                    n = len(col)
                elif len(col) != n:
                    raise LengthMismatchError(
                        f"column {name!r} has {len(col)} rows, expected {n}"
                    )
                self._cols[str(name)] = col
        self._nrows = len(next(iter(self._cols.values()))) if self._cols else 0

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, Any]],
        *,
        flatten: bool = False,
    ) -> "DataFrame":
        """Build a frame from row dicts, unioning keys across rows."""
        rows = [flatten_record(r) if flatten else dict(r) for r in records]
        keys: dict[str, None] = {}
        for r in rows:
            for k in r:
                keys.setdefault(k, None)
        data = {k: [r.get(k) for r in rows] for k in keys}
        return cls(data)

    @classmethod
    def _from_columns(cls, cols: dict[str, Column], nrows: int) -> "DataFrame":
        df = object.__new__(cls)
        df._cols = cols
        df._nrows = nrows
        return df

    # -- shape / access ----------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, len(self._cols))

    @property
    def empty(self) -> bool:
        return self._nrows == 0

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __iter__(self) -> Iterator[str]:
        return iter(self._cols)

    def column(self, name: str) -> Column:
        try:
            return self._cols[name]
        except KeyError:
            raise ColumnNotFoundError(name, tuple(self._cols)) from None

    def __getitem__(self, key: Any) -> Any:
        """Column access, projection, or boolean-mask filter (pandas-style)."""
        if isinstance(key, str):
            return self.column(key)
        if isinstance(key, (list, tuple)) and all(isinstance(k, str) for k in key):
            return self.select(list(key))
        if isinstance(key, (np.ndarray, list)):
            return self.filter(np.asarray(key, dtype=bool))
        raise TypeError(f"cannot index DataFrame with {type(key).__name__}")

    def select(self, names: Sequence[str]) -> "DataFrame":
        cols = {n: self.column(n) for n in names}
        return DataFrame._from_columns(cols, self._nrows)

    def drop(self, names: Sequence[str] | str) -> "DataFrame":
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise ColumnNotFoundError(missing[0], tuple(self._cols))
        cols = {n: c for n, c in self._cols.items() if n not in set(names)}
        return DataFrame._from_columns(cols, self._nrows)

    def assign(self, **new_cols: Any) -> "DataFrame":
        cols = dict(self._cols)
        for name, values in new_cols.items():
            col = values if isinstance(values, Column) else Column(name, values)
            if len(col) != self._nrows and self._nrows > 0:
                raise LengthMismatchError(
                    f"assigned column {name!r} has {len(col)} rows, expected {self._nrows}"
                )
            cols[name] = col.rename(name)
        n = self._nrows if self._cols else (len(next(iter(cols.values()))) if cols else 0)
        return DataFrame._from_columns(cols, n)

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        cols = {mapping.get(n, n): c.rename(mapping.get(n, n)) for n, c in self._cols.items()}
        return DataFrame._from_columns(cols, self._nrows)

    # -- row ops ---------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "DataFrame":
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._nrows:
            raise LengthMismatchError(
                f"mask length {len(mask)} != row count {self._nrows}"
            )
        cols = {n: c.mask(mask) for n, c in self._cols.items()}
        return DataFrame._from_columns(cols, int(mask.sum()))

    def take(self, indices: Sequence[int] | np.ndarray) -> "DataFrame":
        idx = np.asarray(indices, dtype=np.intp)
        cols = {n: c.take(idx) for n, c in self._cols.items()}
        return DataFrame._from_columns(cols, len(idx))

    def islice(self, start: int, stop: int | None = None) -> "DataFrame":
        """Contiguous row window ``[start:stop)`` as storage slices.

        Cheaper than :meth:`take` for pagination-shaped access: no index
        array is materialised and every column shares a slice view.
        """
        start = max(0, int(start))
        stop = self._nrows if stop is None else max(start, int(stop))
        cols = {n: c.slice(start, stop) for n, c in self._cols.items()}
        return DataFrame._from_columns(cols, min(stop, self._nrows) - min(start, self._nrows))

    def head(self, n: int = 5) -> "DataFrame":
        n = max(0, int(n))
        return self.take(np.arange(min(n, self._nrows)))

    def tail(self, n: int = 5) -> "DataFrame":
        n = max(0, int(n))
        return self.take(np.arange(max(0, self._nrows - n), self._nrows))

    def sort_values(
        self,
        by: str | Sequence[str],
        ascending: bool | Sequence[bool] = True,
    ) -> "DataFrame":
        keys = [by] if isinstance(by, str) else list(by)
        if isinstance(ascending, bool):
            dirs = [ascending] * len(keys)
        else:
            dirs = list(ascending)
            if len(dirs) != len(keys):
                raise ValueError("ascending must match number of sort keys")
        order = np.arange(self._nrows)
        # stable sort from least- to most-significant key
        for key, asc in reversed(list(zip(keys, dirs))):
            col = self.column(key).take(order)
            order = order[col.argsort(ascending=asc)]
        return self.take(order)

    def nlargest(self, n: int, column: str) -> "DataFrame":
        return self.sort_values(column, ascending=False).head(n)

    def nsmallest(self, n: int, column: str) -> "DataFrame":
        return self.sort_values(column, ascending=True).head(n)

    def drop_duplicates(self, subset: Sequence[str] | str | None = None) -> "DataFrame":
        names = (
            [subset]
            if isinstance(subset, str)
            else list(subset) if subset is not None else self.columns
        )
        seen: set[Any] = set()
        keep: list[int] = []
        cols = [self.column(n) for n in names]
        for i in range(self._nrows):
            key = tuple(_freeze(c[i]) for c in cols)
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return self.take(keep)

    def dropna(self, subset: Sequence[str] | None = None) -> "DataFrame":
        names = list(subset) if subset else self.columns
        mask = np.ones(self._nrows, dtype=bool)
        for n in names:
            mask &= self.column(n).notna()
        return self.filter(mask)

    # -- groupby ------------------------------------------------------------------------
    def groupby(self, by: str | Sequence[str]) -> "GroupBy":
        from repro.dataframe.groupby import GroupBy

        keys = [by] if isinstance(by, str) else list(by)
        for k in keys:
            self.column(k)  # raise early on missing key
        return GroupBy(self, keys)

    # -- whole-frame aggregation shortcuts --------------------------------------------------
    def count(self) -> dict[str, int]:
        return {n: c.count() for n, c in self._cols.items()}

    def agg(self, spec: Mapping[str, str | Sequence[str]]) -> dict[str, Any]:
        """``df.agg({"col": "mean", "other": ["min", "max"]})``."""
        out: dict[str, Any] = {}
        for name, aggs in spec.items():
            col = self.column(name)
            if isinstance(aggs, str):
                out[name] = col.agg(aggs)
            else:
                out[name] = {a: col.agg(a) for a in aggs}
        return out

    # -- export -----------------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.columns
        cols = [self._cols[n] for n in names]
        return [
            {n: c[i] for n, c in zip(names, cols)} for i in range(self._nrows)
        ]

    def to_dict_of_lists(self) -> dict[str, list[Any]]:
        return {n: c.to_list() for n, c in self._cols.items()}

    def row(self, i: int) -> dict[str, Any]:
        if not 0 <= i < self._nrows:
            raise IndexError(f"row {i} out of range (len={self._nrows})")
        return {n: c[i] for n, c in self._cols.items()}

    def itertuples(self) -> Iterator[tuple]:
        for i in range(self._nrows):
            yield tuple(c[i] for c in self._cols.values())

    # -- display ------------------------------------------------------------------------------
    def to_string(self, max_rows: int = 20) -> str:
        names = self.columns
        if not names:
            return "<empty DataFrame>"
        shown = self.head(max_rows)
        widths = {
            n: max(len(n), *(len(_fmt(v)) for v in shown.column(n).to_list()), 1)
            for n in names
        }
        header = "  ".join(n.ljust(widths[n]) for n in names)
        lines = [header, "  ".join("-" * widths[n] for n in names)]
        for r in shown.to_dicts():
            lines.append("  ".join(_fmt(r[n]).ljust(widths[n]) for n in names))
        if self._nrows > max_rows:
            lines.append(f"… ({self._nrows - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"DataFrame({self._nrows} rows x {len(self._cols)} cols)"

    # -- comparison (for tests) ---------------------------------------------------------------
    def equals(self, other: "DataFrame") -> bool:
        if self.columns != other.columns or len(self) != len(other):
            return False
        for n in self.columns:
            a, b = self.column(n).to_list(), other.column(n).to_list()
            for x, y in zip(a, b):
                if x is None and y is None:
                    continue
                if isinstance(x, float) and isinstance(y, float):
                    if not (abs(x - y) <= 1e-12 * max(1.0, abs(x), abs(y))):
                        return False
                elif x != y:
                    return False
        return True

    def apply_rows(self, fn: Callable[[dict[str, Any]], Any], name: str = "result") -> Column:
        return Column(name, [fn(r) for r in self.to_dicts()])


def concat(frames: Sequence[DataFrame]) -> DataFrame:
    """Row-wise concatenation with column union (missing values -> null)."""
    frames = [f for f in frames if f is not None]
    if not frames:
        return DataFrame()
    keys: dict[str, None] = {}
    for f in frames:
        for c in f.columns:
            keys.setdefault(c, None)
    data: dict[str, list[Any]] = {k: [] for k in keys}
    for f in frames:
        n = len(f)
        for k in keys:
            if k in f:
                data[k].extend(f.column(k).to_list())
            else:
                data[k].extend([None] * n)
    return DataFrame(data)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    if v is None:
        return "·"
    return str(v)


def _freeze(v: Any) -> Any:
    try:
        hash(v)
        return v
    except TypeError:
        return repr(v)
