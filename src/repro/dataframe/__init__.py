"""A small columnar DataFrame engine.

This package stands in for Pandas (not installable in this environment) as
the agent's *in-memory context*: recent workflow-task provenance messages
are flattened into columns, and the LLM-generated query code — rendered in
a pandas-like surface syntax — executes directly against
:class:`~repro.dataframe.frame.DataFrame`.

The engine is deliberately a subset: boolean-mask filtering, sorting,
head/tail, groupby + aggregation, column arithmetic/comparison, string
predicates, and duplicate dropping — the operations the paper's golden
query set exercises.  Columns are numpy-backed where the dtype allows,
falling back to object arrays for nested provenance values.
"""

from repro.dataframe.column import Column
from repro.dataframe.frame import DataFrame, concat, flatten_record
from repro.dataframe.groupby import GroupBy, SeriesGroupBy

__all__ = [
    "Column",
    "DataFrame",
    "GroupBy",
    "SeriesGroupBy",
    "concat",
    "flatten_record",
]
