"""Named aggregation registry.

Maps the aggregation names that appear in generated query code
(``"mean"``, ``"count"``, ...) onto :class:`~repro.dataframe.column.Column`
methods.  Centralising the mapping keeps the query executor, the groupby
engine, and the judges' semantic comparison in agreement about what each
name means.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AggregationError

AGGREGATIONS: dict[str, Callable[[Any], Any]] = {
    "sum": lambda c: c.sum(),
    "mean": lambda c: c.mean(),
    "avg": lambda c: c.mean(),
    "median": lambda c: c.median(),
    "min": lambda c: c.min(),
    "max": lambda c: c.max(),
    "std": lambda c: c.std(),
    "var": lambda c: c.var(),
    "count": lambda c: c.count(),
    "nunique": lambda c: c.nunique(),
    "first": lambda c: c[0] if len(c) else None,
    "last": lambda c: c[len(c) - 1] if len(c) else None,
}

#: Aggregations whose result has the same scale/unit as the input column.
#: Used by the judges when deciding whether two aggregation choices are
#: semantically interchangeable (``min`` vs ``idxmin`` is not; ``mean`` vs
#: ``median`` is "close but different").
VALUE_PRESERVING = frozenset({"min", "max", "first", "last", "median", "mean"})


def apply_aggregation(column: Any, name: str) -> Any:
    """Apply the named aggregation to a Column."""
    try:
        fn = AGGREGATIONS[name]
    except KeyError:
        raise AggregationError(f"unknown aggregation {name!r}") from None
    return fn(column)


def is_known(name: str) -> bool:
    return name in AGGREGATIONS
