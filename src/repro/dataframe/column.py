"""Column: a named, typed, immutable 1-D vector.

Comparison operators return boolean numpy masks so that
``df[df["cpu"] > 50]`` works exactly like the pandas idiom the agent's
generated code uses.  Numeric columns vectorise through numpy; object
columns fall back to per-element Python loops (provenance payloads can
contain dicts and lists, which numpy ufuncs cannot compare).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.dataframe import dtypes as dt
from repro.errors import AggregationError

__all__ = ["Column", "StringAccessor"]


class Column:
    """An immutable named vector with a storage dtype.

    Parameters
    ----------
    name:
        Column label.
    values:
        Any iterable of Python values; storage class is inferred unless
        ``dtype`` is given.
    """

    __slots__ = ("name", "dtype", "_data")

    def __init__(self, name: str, values: Iterable[Any], dtype: str | None = None):
        vals = list(values) if not isinstance(values, np.ndarray) else values.tolist()
        self.name = name
        self.dtype = dtype if dtype is not None else dt.infer_dtype(vals)
        self._data = dt.to_storage(vals, self.dtype)

    # -- construction helpers ------------------------------------------------
    @classmethod
    def _from_storage(cls, name: str, data: np.ndarray, dtype: str) -> "Column":
        col = object.__new__(cls)
        object.__setattr__(col, "name", name)
        object.__setattr__(col, "dtype", dtype)
        object.__setattr__(col, "_data", data)
        return col

    def rename(self, name: str) -> "Column":
        return Column._from_storage(name, self._data, self.dtype)

    # -- basic container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        if self.dtype == dt.FLOAT:
            for v in self._data:
                yield None if math.isnan(v) else float(v)
        elif self.dtype == dt.INT:
            for v in self._data:
                yield int(v)
        elif self.dtype == dt.BOOL:
            for v in self._data:
                yield bool(v)
        else:
            yield from self._data

    def __getitem__(self, idx: int) -> Any:
        v = self._data[idx]
        if self.dtype == dt.FLOAT:
            return None if math.isnan(v) else float(v)
        if self.dtype == dt.INT:
            return int(v)
        if self.dtype == dt.BOOL:
            return bool(v)
        return v

    def to_list(self) -> list[Any]:
        return list(self)

    def to_numpy(self) -> np.ndarray:
        """The raw storage array (a view; do not mutate)."""
        return self._data

    @property
    def values(self) -> np.ndarray:
        return self._data

    def take(self, indices: Sequence[int] | np.ndarray) -> "Column":
        idx = np.asarray(indices, dtype=np.intp)
        return Column._from_storage(self.name, self._data[idx], self.dtype)

    def mask(self, mask: np.ndarray) -> "Column":
        m = np.asarray(mask, dtype=bool)
        return Column._from_storage(self.name, self._data[m], self.dtype)

    def slice(self, start: int, stop: int | None = None) -> "Column":
        """Contiguous row window as a storage-level slice (no index list)."""
        return Column._from_storage(self.name, self._data[start:stop], self.dtype)

    # -- null handling ---------------------------------------------------------
    def isna(self) -> np.ndarray:
        if self.dtype == dt.FLOAT:
            return np.isnan(self._data)
        if self.dtype == dt.OBJECT:
            return np.array([v is None for v in self._data], dtype=bool)
        return np.zeros(len(self._data), dtype=bool)

    def notna(self) -> np.ndarray:
        return ~self.isna()

    def dropna(self) -> "Column":
        return self.mask(self.notna())

    # -- comparisons -> boolean masks -------------------------------------------
    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> np.ndarray:
        if isinstance(other, Column):
            other = other._data
        if self.dtype in (dt.FLOAT, dt.INT, dt.BOOL) and not isinstance(other, str):
            try:
                with np.errstate(invalid="ignore"):
                    out = op(self._data, other)
                return np.asarray(out, dtype=bool)
            except TypeError:
                pass
        result = np.zeros(len(self._data), dtype=bool)
        for i, v in enumerate(self._data):
            if v is None:
                continue
            try:
                result[i] = bool(op(v, other))
            except TypeError:
                result[i] = False
        return result

    def __eq__(self, other: Any) -> np.ndarray:  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> np.ndarray:  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> np.ndarray:
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> np.ndarray:
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> np.ndarray:
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> np.ndarray:
        return self._compare(other, lambda a, b: a >= b)

    def __hash__(self) -> int:  # __eq__ overridden; keep identity hashing
        return id(self)

    def isin(self, values: Iterable[Any]) -> np.ndarray:
        pool = set(values)
        return np.array([v in pool for v in self], dtype=bool)

    def between(self, low: Any, high: Any, inclusive: bool = True) -> np.ndarray:
        if inclusive:
            return (self >= low) & (self <= high)
        return (self > low) & (self < high)

    # -- arithmetic ---------------------------------------------------------------
    def _arith(self, other: Any, op: Callable, name: str) -> "Column":
        if isinstance(other, Column):
            other_data = other._data
        else:
            other_data = other
        if self.dtype not in (dt.FLOAT, dt.INT):
            raise AggregationError(
                f"arithmetic on non-numeric column {self.name!r} ({self.dtype})"
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            data = op(self._data.astype(np.float64), other_data)
        return Column._from_storage(name, np.asarray(data, dtype=np.float64), dt.FLOAT)

    def __add__(self, other: Any) -> "Column":
        return self._arith(other, lambda a, b: a + b, self.name)

    def __sub__(self, other: Any) -> "Column":
        return self._arith(other, lambda a, b: a - b, self.name)

    def __rsub__(self, other: Any) -> "Column":
        return self._arith(other, lambda a, b: b - a, self.name)

    def __mul__(self, other: Any) -> "Column":
        return self._arith(other, lambda a, b: a * b, self.name)

    def __truediv__(self, other: Any) -> "Column":
        return self._arith(other, lambda a, b: a / b, self.name)

    __radd__ = __add__
    __rmul__ = __mul__

    # -- aggregations ----------------------------------------------------------------
    def _numeric_or_raise(self, agg: str) -> np.ndarray:
        if self.dtype == dt.BOOL:
            return self._data.astype(np.float64)
        if self.dtype not in (dt.FLOAT, dt.INT):
            if len(self._data) == 0 or all(v is None for v in self._data):
                # empty/all-null object columns aggregate like empty numerics
                return np.array([], dtype=np.float64)
            raise AggregationError(
                f"cannot {agg} non-numeric column {self.name!r} ({self.dtype})"
            )
        return self._data.astype(np.float64)

    def _valid(self, agg: str) -> np.ndarray:
        arr = self._numeric_or_raise(agg)
        return arr[~np.isnan(arr)]

    def sum(self) -> float:
        v = self._valid("sum")
        return _exact_sum(v) if v.size else 0.0

    def mean(self) -> float | None:
        v = self._valid("mean")
        return _exact_sum(v) / v.size if v.size else None

    def median(self) -> float | None:
        v = self._valid("median")
        return float(np.median(v)) if v.size else None

    def std(self) -> float | None:
        v = self._valid("std")
        return float(v.std(ddof=1)) if v.size > 1 else None

    def var(self) -> float | None:
        v = self._valid("var")
        return float(v.var(ddof=1)) if v.size > 1 else None

    def min(self) -> Any:
        if self.dtype in (dt.FLOAT, dt.INT, dt.BOOL):
            v = self._valid("min")
            return float(v.min()) if v.size else None
        vals = [v for v in self._data if v is not None]
        return min(vals) if vals else None

    def max(self) -> Any:
        if self.dtype in (dt.FLOAT, dt.INT, dt.BOOL):
            v = self._valid("max")
            return float(v.max()) if v.size else None
        vals = [v for v in self._data if v is not None]
        return max(vals) if vals else None

    def count(self) -> int:
        """Number of non-null entries (pandas semantics)."""
        return int(self.notna().sum())

    def nunique(self) -> int:
        return len({_hashable(v) for v in self if v is not None})

    def unique(self) -> list[Any]:
        seen: dict[Any, Any] = {}
        for v in self:
            if v is None:
                continue
            key = _hashable(v)
            if key not in seen:
                seen[key] = v
        return list(seen.values())

    def idxmin(self) -> int | None:
        if self.dtype in (dt.FLOAT, dt.INT):
            arr = self._data.astype(np.float64)
            if np.all(np.isnan(arr)):
                return None
            return int(np.nanargmin(arr))
        best_i, best_v = None, None
        for i, v in enumerate(self):
            if v is None:
                continue
            if best_v is None or v < best_v:
                best_i, best_v = i, v
        return best_i

    def idxmax(self) -> int | None:
        if self.dtype in (dt.FLOAT, dt.INT):
            arr = self._data.astype(np.float64)
            if np.all(np.isnan(arr)):
                return None
            return int(np.nanargmax(arr))
        best_i, best_v = None, None
        for i, v in enumerate(self):
            if v is None:
                continue
            if best_v is None or v > best_v:
                best_i, best_v = i, v
        return best_i

    def agg(self, name: str) -> Any:
        """Dispatch a named aggregation (``"mean"``, ``"count"``, ...)."""
        from repro.dataframe.aggregations import apply_aggregation

        return apply_aggregation(self, name)

    # -- ordering -----------------------------------------------------------------
    def argsort(self, ascending: bool = True) -> np.ndarray:
        """Stable sort order with nulls last regardless of direction."""
        n = len(self._data)
        if self.dtype in (dt.FLOAT, dt.INT, dt.BOOL):
            arr = self._data.astype(np.float64)
            nan_mask = np.isnan(arr)
            keys = np.where(nan_mask, np.inf if ascending else -np.inf, arr)
            order = np.argsort(-keys if not ascending else keys, kind="stable")
        else:
            decorated = []
            for i, v in enumerate(self._data):
                null = v is None
                try:
                    key = v if not null else ""
                    decorated.append((null, key, i))
                except TypeError:
                    decorated.append((null, str(v), i))
            try:
                decorated.sort(key=lambda t: (t[0], t[1]), reverse=not ascending)
            except TypeError:
                decorated.sort(key=lambda t: (t[0], str(t[1])), reverse=not ascending)
            if not ascending:  # keep nulls last after reverse
                decorated.sort(key=lambda t: t[0])
            order = np.array([i for _, _, i in decorated], dtype=np.intp)
        # nulls last in both directions
        if self.dtype in (dt.FLOAT, dt.INT, dt.BOOL):
            return order
        return order if len(order) == n else order

    # -- string accessor --------------------------------------------------------------
    @property
    def str(self) -> "StringAccessor":
        return StringAccessor(self)

    # -- misc -----------------------------------------------------------------------
    def apply(self, fn: Callable[[Any], Any]) -> "Column":
        return Column(self.name, [None if v is None else fn(v) for v in self])

    def astype(self, dtype: str) -> "Column":
        return Column(self.name, self.to_list(), dtype=dtype)

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.to_list()[:6])
        more = "…" if len(self) > 6 else ""
        return f"Column({self.name!r}, dtype={self.dtype}, [{preview}{more}])"


class StringAccessor:
    """Vectorised string predicates, mirroring ``Series.str``."""

    def __init__(self, column: Column):
        self._col = column

    def _map_bool(self, fn: Callable[[str], bool]) -> np.ndarray:
        return np.array(
            [bool(fn(v)) if isinstance(v, str) else False for v in self._col],
            dtype=bool,
        )

    def contains(self, pattern: str, case: bool = True) -> np.ndarray:
        if case:
            return self._map_bool(lambda s: pattern in s)
        low = pattern.lower()
        return self._map_bool(lambda s: low in s.lower())

    def startswith(self, prefix: str) -> np.ndarray:
        return self._map_bool(lambda s: s.startswith(prefix))

    def endswith(self, suffix: str) -> np.ndarray:
        return self._map_bool(lambda s: s.endswith(suffix))

    def lower(self) -> Column:
        return self._col.apply(lambda v: v.lower() if isinstance(v, str) else v)

    def upper(self) -> Column:
        return self._col.apply(lambda v: v.upper() if isinstance(v, str) else v)

    def len(self) -> Column:
        return self._col.apply(lambda v: len(v) if isinstance(v, str) else None)


def _exact_sum(v: np.ndarray) -> float:
    """Correctly rounded sum, independent of partitioning and order.

    ``math.fsum`` makes SUM/AVG reproducible whether a column is summed
    whole at the coordinator or as per-shard partials that are merged
    later — numpy's pairwise summation rounds differently depending on
    how the values are split.  Infinities (and the pathological case of
    an exact total overflowing float64) keep numpy's answer.
    """
    if not np.isfinite(v).all():
        return float(v.sum())
    try:
        return math.fsum(v)
    except OverflowError:
        return float(v.sum())


def _hashable(v: Any) -> Any:
    """Fold unhashable payloads (dict/list) to a stable key for uniqueness."""
    try:
        hash(v)
        return v
    except TypeError:
        return repr(v)
