"""Dtype inference and promotion for the mini DataFrame engine.

The engine supports four storage classes:

* ``float64`` / ``int64`` — numpy-backed numeric columns,
* ``bool``                — numpy boolean columns,
* ``object``              — anything else (strings, dicts, lists, mixed).

Missing values: numeric columns store ``nan`` (ints are promoted to float
when a null appears, mirroring pandas); object columns store ``None``.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

FLOAT = "float64"
INT = "int64"
BOOL = "bool"
OBJECT = "object"

_NUMERIC = (FLOAT, INT)


def is_numeric_dtype(dtype: str) -> bool:
    return dtype in _NUMERIC


def is_null(value: Any) -> bool:
    """True for None and float NaN (the two null spellings we accept)."""
    if value is None:
        return True
    return isinstance(value, float) and math.isnan(value)


def infer_dtype(values: Iterable[Any]) -> str:
    """Infer the narrowest storage class that holds all ``values``.

    Bools are not ints here (unlike raw Python): a column of True/False
    stays ``bool``.  A single non-numeric, non-null value forces
    ``object``.  All-null columns default to ``float64`` so they behave
    like empty numeric columns under aggregation.
    """
    saw_float = saw_int = saw_bool = saw_null = saw_value = False
    for v in values:
        saw_value = True
        if is_null(v):
            saw_null = True
        elif isinstance(v, bool) or isinstance(v, np.bool_):
            saw_bool = True
        elif isinstance(v, (int, np.integer)):
            saw_int = True
        elif isinstance(v, (float, np.floating)):
            saw_float = True
        else:
            return OBJECT
    if not saw_value:
        return OBJECT
    if saw_bool:
        if saw_int or saw_float:
            return OBJECT
        return BOOL if not saw_null else OBJECT
    if saw_float or (saw_int and saw_null):
        return FLOAT
    if saw_int:
        return INT
    return FLOAT  # all nulls


def to_storage(values: list[Any], dtype: str) -> np.ndarray:
    """Materialise ``values`` as a numpy array of the storage class."""
    if dtype == FLOAT:
        return np.array(
            [np.nan if is_null(v) else float(v) for v in values], dtype=np.float64
        )
    if dtype == INT:
        return np.array([int(v) for v in values], dtype=np.int64)
    if dtype == BOOL:
        return np.array([bool(v) for v in values], dtype=np.bool_)
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = None if is_null(v) else v
    return arr


def promote(a: str, b: str) -> str:
    """Common dtype for combining two columns."""
    if a == b:
        return a
    pair = {a, b}
    if pair <= {INT, FLOAT}:
        return FLOAT
    return OBJECT
