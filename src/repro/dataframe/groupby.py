"""Group-by engine.

``df.groupby("bond_id")["bd_enthalpy"].mean()`` — the canonical shape in
the agent's generated code — returns a new :class:`DataFrame` with one row
per group, columns ``[*keys, value]``.  Multi-aggregation via ``agg`` is
supported both at the frame level and the selected-column level.

Group order is first-appearance order (stable), matching what a scientist
sees when tasks stream in execution order.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.dataframe.column import Column
from repro.dataframe.aggregations import apply_aggregation
from repro.errors import ColumnNotFoundError

__all__ = ["GroupBy", "SeriesGroupBy"]


class GroupBy:
    """Lazy grouping of a DataFrame by one or more key columns."""

    def __init__(self, frame: Any, keys: list[str]):
        self._frame = frame
        self._keys = keys
        self._groups: dict[tuple, list[int]] | None = None

    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    def _build(self) -> dict[tuple, list[int]]:
        if self._groups is None:
            groups: dict[tuple, list[int]] = {}
            key_cols = [self._frame.column(k) for k in self._keys]
            for i in range(len(self._frame)):
                key = tuple(_freeze(c[i]) for c in key_cols)
                groups.setdefault(key, []).append(i)
            self._groups = groups
        return self._groups

    def __len__(self) -> int:
        return len(self._build())

    def __getitem__(self, column: str | Sequence[str]) -> "SeriesGroupBy":
        if isinstance(column, str):
            if column not in self._frame:
                raise ColumnNotFoundError(column, tuple(self._frame.columns))
            return SeriesGroupBy(self, column)
        raise TypeError("groupby selection supports a single column name")

    def groups(self) -> dict[tuple, list[int]]:
        """Mapping of group key tuple -> row indices."""
        return {k: list(v) for k, v in self._build().items()}

    def size(self) -> Any:
        """Row count per group as a DataFrame [*keys, 'size']."""
        from repro.dataframe.frame import DataFrame

        groups = self._build()
        data: dict[str, list[Any]] = {k: [] for k in self._keys}
        sizes: list[int] = []
        for key, idx in groups.items():
            for name, part in zip(self._keys, key):
                data[name].append(part)
            sizes.append(len(idx))
        data["size"] = sizes
        return DataFrame(data)

    def agg(self, spec: Mapping[str, str | Sequence[str]]) -> Any:
        """Per-group aggregation: ``gb.agg({"col": "mean"})``.

        Output columns are named ``col`` for single aggs and
        ``col_<agg>`` when several aggregations are requested per column.
        """
        from repro.dataframe.frame import DataFrame

        groups = self._build()
        data: dict[str, list[Any]] = {k: [] for k in self._keys}
        out_cols: dict[str, list[Any]] = {}

        plan: list[tuple[str, str, str]] = []  # (src, agg, out_name)
        for src, aggs in spec.items():
            if isinstance(aggs, str):
                plan.append((src, aggs, src))
            else:
                for a in aggs:
                    plan.append((src, a, f"{src}_{a}"))
        for _, _, out_name in plan:
            out_cols[out_name] = []

        for key, idx in groups.items():
            for name, part in zip(self._keys, key):
                data[name].append(part)
            sub = self._frame.take(idx)
            for src, agg, out_name in plan:
                out_cols[out_name].append(apply_aggregation(sub.column(src), agg))
        data.update(out_cols)
        return DataFrame(data)

    def _agg_all(self, agg: str) -> Any:
        """Apply one aggregation to every non-key numeric-capable column."""
        from repro.dataframe import dtypes as dt
        from repro.dataframe.frame import DataFrame

        value_cols = [
            n
            for n in self._frame.columns
            if n not in self._keys
            and self._frame.column(n).dtype in (dt.FLOAT, dt.INT, dt.BOOL)
        ]
        if agg in ("count", "nunique", "first", "last"):
            value_cols = [n for n in self._frame.columns if n not in self._keys]
        spec = {n: agg for n in value_cols}
        if not spec:
            return self.size()
        return self.agg(spec)

    def mean(self) -> Any:
        return self._agg_all("mean")

    def sum(self) -> Any:
        return self._agg_all("sum")

    def min(self) -> Any:
        return self._agg_all("min")

    def max(self) -> Any:
        return self._agg_all("max")

    def median(self) -> Any:
        return self._agg_all("median")

    def std(self) -> Any:
        return self._agg_all("std")

    def count(self) -> Any:
        return self._agg_all("count")

    def first(self) -> Any:
        return self._agg_all("first")

    def last(self) -> Any:
        return self._agg_all("last")

    def nunique(self) -> Any:
        return self._agg_all("nunique")


class SeriesGroupBy:
    """A single column selected from a GroupBy."""

    def __init__(self, parent: GroupBy, column: str):
        self._parent = parent
        self._column = column

    def _aggregate(self, agg: str) -> Any:
        from repro.dataframe.frame import DataFrame

        groups = self._parent._build()
        keys = self._parent.keys
        data: dict[str, list[Any]] = {k: [] for k in keys}
        values: list[Any] = []
        frame = self._parent._frame
        for key, idx in groups.items():
            for name, part in zip(keys, key):
                data[name].append(part)
            values.append(apply_aggregation(frame.take(idx).column(self._column), agg))
        data[self._column] = values
        return DataFrame(data)

    def mean(self) -> Any:
        return self._aggregate("mean")

    def sum(self) -> Any:
        return self._aggregate("sum")

    def min(self) -> Any:
        return self._aggregate("min")

    def max(self) -> Any:
        return self._aggregate("max")

    def median(self) -> Any:
        return self._aggregate("median")

    def std(self) -> Any:
        return self._aggregate("std")

    def count(self) -> Any:
        return self._aggregate("count")

    def nunique(self) -> Any:
        return self._aggregate("nunique")

    def first(self) -> Any:
        return self._aggregate("first")

    def last(self) -> Any:
        return self._aggregate("last")

    def agg(self, agg: str) -> Any:
        return self._aggregate(agg)


def _freeze(v: Any) -> Any:
    try:
        hash(v)
        return v
    except TypeError:
        return repr(v)
