"""Exception hierarchy for the ``repro`` package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch the library's failures without masking genuine Python bugs
(``TypeError`` from bad plumbing stays distinct from a user-facing
``ColumnNotFoundError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# DataFrame engine
# ---------------------------------------------------------------------------
class DataFrameError(ReproError):
    """Base class for DataFrame engine errors."""


class ColumnNotFoundError(DataFrameError, KeyError):
    """A referenced column does not exist in the frame."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.column = name
        self.available = available
        msg = f"column {name!r} not found"
        if available:
            msg += f" (available: {', '.join(available)})"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


class LengthMismatchError(DataFrameError):
    """Columns of different lengths were combined."""


class AggregationError(DataFrameError):
    """An unknown or inapplicable aggregation was requested."""


# ---------------------------------------------------------------------------
# Query IR
# ---------------------------------------------------------------------------
class QueryError(ReproError):
    """Base class for query IR errors."""


class QuerySyntaxError(QueryError):
    """The textual query code could not be parsed into an AST."""


class QueryExecutionError(QueryError):
    """A structurally valid query failed while executing."""


# ---------------------------------------------------------------------------
# Messaging
# ---------------------------------------------------------------------------
class MessagingError(ReproError):
    """Base class for streaming-hub errors."""


class BrokerClosedError(MessagingError):
    """Operation attempted on a closed broker."""


class TopicError(MessagingError):
    """Invalid topic name or pattern."""


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------
class ProvenanceError(ReproError):
    """Base class for provenance subsystem errors."""


class SchemaViolationError(ProvenanceError):
    """A provenance message does not satisfy the common schema."""


class DatabaseError(ProvenanceError):
    """Provenance database operation failed."""


# ---------------------------------------------------------------------------
# Workflows
# ---------------------------------------------------------------------------
class WorkflowError(ReproError):
    """Base class for workflow engine errors."""


class CyclicDependencyError(WorkflowError):
    """The task graph contains a cycle."""


class TaskFailedError(WorkflowError):
    """A task raised during execution."""

    def __init__(self, task_id: str, cause: BaseException):
        self.task_id = task_id
        self.cause = cause
        super().__init__(f"task {task_id!r} failed: {cause!r}")


# ---------------------------------------------------------------------------
# Chemistry
# ---------------------------------------------------------------------------
class ChemistryError(ReproError):
    """Base class for the chemistry substrate."""


class SmilesParseError(ChemistryError):
    """A SMILES string could not be parsed."""


class ValenceError(ChemistryError):
    """An atom exceeds its allowed valence."""


# ---------------------------------------------------------------------------
# LLM simulation
# ---------------------------------------------------------------------------
class LLMError(ReproError):
    """Base class for the simulated LLM service."""


class ContextWindowExceededError(LLMError):
    """Prompt + completion would not fit in the model's context window."""

    def __init__(self, model: str, needed: int, window: int):
        self.model = model
        self.needed = needed
        self.window = window
        super().__init__(
            f"model {model!r}: prompt needs {needed} tokens "
            f"but context window is {window}"
        )


class UnknownModelError(LLMError):
    """Requested model name is not registered."""


# ---------------------------------------------------------------------------
# Agent
# ---------------------------------------------------------------------------
class AgentError(ReproError):
    """Base class for provenance agent errors."""


class ToolNotFoundError(AgentError):
    """The MCP tool registry has no tool with the requested name."""


class ToolExecutionError(AgentError):
    """A tool raised during dispatch."""


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------
class EvaluationError(ReproError):
    """Base class for the evaluation methodology."""


class QuerySetError(EvaluationError):
    """The golden query set is malformed."""
