"""Execute a query Pipeline against a DataFrame.

The in-memory query tool and the post-hoc DB tool both funnel through
:func:`execute_query`; the judges also use it for result-based
(functional-equivalence) comparison.  Execution failures — e.g. a
hallucinated column name — raise
:class:`~repro.errors.QueryExecutionError`, which the agent surfaces in
its GUI just like the paper's implementation shows runtime errors.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dataframe import DataFrame
from repro.errors import (
    ColumnNotFoundError,
    DataFrameError,
    QueryExecutionError,
)
from repro.query import ast as q

__all__ = ["execute_query", "evaluate_predicate"]


def evaluate_predicate(pred: q.Predicate, frame: DataFrame) -> np.ndarray:
    """Evaluate a predicate tree to a boolean row mask."""
    if isinstance(pred, q.Compare):
        col = frame.column(pred.field.name)
        op = pred.op
        if op == "==":
            return col == pred.value
        if op == "!=":
            return col != pred.value
        if op == "<":
            return col < pred.value
        if op == "<=":
            return col <= pred.value
        if op == ">":
            return col > pred.value
        if op == ">=":
            return col >= pred.value
        raise QueryExecutionError(f"bad operator {op!r}")
    if isinstance(pred, q.StrContains):
        return frame.column(pred.field.name).str.contains(pred.pattern, case=pred.case)
    if isinstance(pred, q.StrStartsWith):
        return frame.column(pred.field.name).str.startswith(pred.prefix)
    if isinstance(pred, q.StrEndsWith):
        return frame.column(pred.field.name).str.endswith(pred.suffix)
    if isinstance(pred, q.IsIn):
        return frame.column(pred.field.name).isin(pred.values)
    if isinstance(pred, q.Between):
        return frame.column(pred.field.name).between(pred.low, pred.high)
    if isinstance(pred, q.NotNull):
        return frame.column(pred.field.name).notna()
    if isinstance(pred, q.IsNull):
        return frame.column(pred.field.name).isna()
    if isinstance(pred, q.And):
        return evaluate_predicate(pred.left, frame) & evaluate_predicate(
            pred.right, frame
        )
    if isinstance(pred, q.Or):
        return evaluate_predicate(pred.left, frame) | evaluate_predicate(
            pred.right, frame
        )
    if isinstance(pred, q.Not):
        return ~evaluate_predicate(pred.operand, frame)
    raise QueryExecutionError(f"unknown predicate node {type(pred).__name__}")


def execute_query(pipeline: q.Pipeline, frame: DataFrame) -> Any:
    """Run the pipeline; returns a DataFrame, scalar, int, or list.

    Raises
    ------
    QueryExecutionError
        On missing columns, bad aggregations, or any frame-level failure;
        the original error is chained as ``__cause__``.
    """
    current: Any = frame
    try:
        for step in pipeline.steps:
            if isinstance(step, q.Filter):
                current = current.filter(evaluate_predicate(step.predicate, current))
            elif isinstance(step, q.Project):
                current = current.select(list(step.columns))
            elif isinstance(step, q.Sort):
                current = current.sort_values(list(step.keys), list(step.ascending))
            elif isinstance(step, q.Head):
                current = current.head(step.n)
            elif isinstance(step, q.Tail):
                current = current.tail(step.n)
            elif isinstance(step, q.Skip):
                current = current.islice(max(0, step.n))
            elif isinstance(step, q.GroupAgg):
                gb = current.groupby(list(step.keys))
                current = gb[step.column].agg(step.agg)
            elif isinstance(step, q.Agg):
                current = current.column(step.column).agg(step.agg)
            elif isinstance(step, q.Unique):
                current = current.column(step.column).unique()
            elif isinstance(step, q.DropDuplicates):
                current = current.drop_duplicates(
                    subset=list(step.subset) or None
                )
            elif isinstance(step, q.RowCount):
                current = len(current)
            else:
                raise QueryExecutionError(f"unknown step {type(step).__name__}")
    except ColumnNotFoundError as exc:
        raise QueryExecutionError(str(exc)) from exc
    except DataFrameError as exc:
        raise QueryExecutionError(str(exc)) from exc
    except (TypeError, ValueError) as exc:
        # e.g. numpy refusing to broadcast a column against a list
        # literal the model emitted — an execution failure the agent
        # must surface in the reply, not an escaping crash
        raise QueryExecutionError(str(exc)) from exc
    return current
