"""Render a query AST to canonical pandas-like code.

The renderer is the inverse of :mod:`repro.query.parser`:
``parse_query(render_query(p)) == p`` for every valid pipeline (this
round-trip is property-tested).  The generated surface syntax matches
what the paper's agent displays in its GUI — plain chained DataFrame
operations on a frame named ``df``.
"""

from __future__ import annotations

from typing import Any

from repro.query import ast as q

__all__ = ["render_query", "render_predicate", "render_literal"]


def render_literal(value: Any) -> str:
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, bool):
        return "True" if value else "False"
    if value is None:
        return "None"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(render_literal(v) for v in value) + "]"
    return repr(value)


def _series(field: q.Field) -> str:
    return f'df[{render_literal(field.name)}]'


def render_predicate(pred: q.Predicate, *, top: bool = True) -> str:
    """Render a predicate tree; nested boolean ops get parentheses."""
    if isinstance(pred, q.Compare):
        s = f"{_series(pred.field)} {pred.op} {render_literal(pred.value)}"
        return s if top else f"({s})"
    if isinstance(pred, q.StrContains):
        s = f"{_series(pred.field)}.str.contains({render_literal(pred.pattern)})"
        return s if top else f"({s})"
    if isinstance(pred, q.StrStartsWith):
        s = f"{_series(pred.field)}.str.startswith({render_literal(pred.prefix)})"
        return s if top else f"({s})"
    if isinstance(pred, q.StrEndsWith):
        s = f"{_series(pred.field)}.str.endswith({render_literal(pred.suffix)})"
        return s if top else f"({s})"
    if isinstance(pred, q.IsIn):
        s = f"{_series(pred.field)}.isin({render_literal(list(pred.values))})"
        return s if top else f"({s})"
    if isinstance(pred, q.Between):
        s = (
            f"{_series(pred.field)}.between({render_literal(pred.low)}, "
            f"{render_literal(pred.high)})"
        )
        return s if top else f"({s})"
    if isinstance(pred, q.NotNull):
        s = f"{_series(pred.field)}.notna()"
        return s if top else f"({s})"
    if isinstance(pred, q.IsNull):
        s = f"{_series(pred.field)}.isna()"
        return s if top else f"({s})"
    if isinstance(pred, q.And):
        s = (
            f"{render_predicate(pred.left, top=False)} & "
            f"{render_predicate(pred.right, top=False)}"
        )
        return s if top else f"({s})"
    if isinstance(pred, q.Or):
        s = (
            f"{render_predicate(pred.left, top=False)} | "
            f"{render_predicate(pred.right, top=False)}"
        )
        return s if top else f"({s})"
    if isinstance(pred, q.Not):
        return f"~{render_predicate(pred.operand, top=False)}"
    raise TypeError(f"not a predicate: {pred!r}")


def render_query(pipeline: q.Pipeline) -> str:
    """Render a full pipeline as a single chained expression on ``df``."""
    code = "df"
    wrap_len = False
    for step in pipeline.steps:
        if isinstance(step, q.Filter):
            code += f"[{render_predicate(step.predicate)}]"
        elif isinstance(step, q.Project):
            cols = ", ".join(render_literal(c) for c in step.columns)
            code += f"[[{cols}]]"
        elif isinstance(step, q.Sort):
            keys = list(step.keys)
            asc = list(step.ascending)
            if len(keys) == 1:
                key_part = render_literal(keys[0])
                asc_part = "True" if asc[0] else "False"
            else:
                key_part = "[" + ", ".join(render_literal(k) for k in keys) + "]"
                asc_part = "[" + ", ".join("True" if a else "False" for a in asc) + "]"
            code += f".sort_values({key_part}, ascending={asc_part})"
        elif isinstance(step, q.Head):
            code += f".head({step.n})"
        elif isinstance(step, q.Tail):
            code += f".tail({step.n})"
        elif isinstance(step, q.Skip):
            code += f".iloc[{step.n}:]"
        elif isinstance(step, q.GroupAgg):
            if len(step.keys) == 1:
                key_part = render_literal(step.keys[0])
            else:
                key_part = "[" + ", ".join(render_literal(k) for k in step.keys) + "]"
            code += (
                f".groupby({key_part})[{render_literal(step.column)}].{step.agg}()"
            )
        elif isinstance(step, q.Agg):
            code += f"[{render_literal(step.column)}].{step.agg}()"
        elif isinstance(step, q.Unique):
            code += f"[{render_literal(step.column)}].unique()"
        elif isinstance(step, q.DropDuplicates):
            if step.subset:
                cols = "[" + ", ".join(render_literal(c) for c in step.subset) + "]"
                code += f".drop_duplicates(subset={cols})"
            else:
                code += ".drop_duplicates()"
        elif isinstance(step, q.RowCount):
            wrap_len = True
        else:
            raise TypeError(f"unknown step {step!r}")
    if wrap_len:
        code = f"len({code})"
    return code
