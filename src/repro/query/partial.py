"""Shard-side operator execution: plans, per-shard partials, exact combine.

Filter pushdown (:mod:`repro.query.pushdown`) shrinks *which* documents
cross the shard -> coordinator boundary; this module shrinks *what*
crosses it.  A :class:`PushPlan` describes work each shard can do
locally — prune documents to the columns a pipeline touches, fold a
terminal ``RowCount``/``Agg``/``GroupAgg`` into per-shard partial
states, or pre-select a local top-k for a Sort+Head/Tail pipeline —
and :func:`combine_partials` merges the per-shard
:class:`ShardPartial` results into exactly the answer the single-store
path produces.

Byte-identical parity with the coordinator path is the contract, and it
is enforced two ways:

* **exact combine rules** — SUM/AVG carry Shewchuk exact partial sums
  (``math.fsum`` semantics, so the result is independent of how rows
  are partitioned); MIN/MAX/COUNT combine trivially; FIRST/LAST and
  group emission order ride the store's global ingest sequence number;
  per-column dtype reports are folded so the coordinator knows the
  dtype the *global* frame would have inferred and can coerce local
  values through it;
* **guarded fallback** — whenever a shard-local computation could
  diverge from the global one (float64 rounding of >=2**53 ints, mixed
  object-dtype sort comparators, representative-value drift, a used
  column missing from every matching document), the combine refuses
  and the engine re-runs the classic gather-everything path, so an
  unsupported pipeline is never wrong, only unaccelerated.

The module deliberately depends only on the query IR and the DataFrame
engine — never on a concrete storage backend.  Backends opt in by
exposing ``execute_partial(plan) -> list[ShardPartial]``; any backend
(or shard) without it is driven through plain ``find()`` by
:func:`execute_plan_on_docs`, the documented fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.dataframe import DataFrame
from repro.dataframe import dtypes as dt
from repro.dataframe.column import Column, _hashable
from repro.dataframe.frame import _freeze, flatten_record
from repro.query import ast as q
from repro.query.executor import evaluate_predicate, execute_query

__all__ = [
    "SEQ_FIELD",
    "PushPlan",
    "ColumnReport",
    "ShardPartial",
    "Combined",
    "execute_plan_on_docs",
    "combine_partials",
    "step_label",
]

#: The sharded store's per-document global ingest sequence field.
#: Mirrored here (rather than imported) so the query layer stays
#: independent of any concrete backend; the value is part of the
#: StorageBackend contract.
SEQ_FIELD = "__shard_seq__"

#: Pseudo-dtype for "column absent on a shard that has matching rows":
#: those rows contribute nulls to the global column.
_NULL = "null"

#: ints at or beyond this are exact in int64/object storage but rounded
#: in a float64 column — the one place shard-local and global
#: evaluation can disagree per-row.
_BIG_INT = 2**53

_MISSING = object()

#: Aggregations with a per-shard decomposition.  median/std/var/nunique
#: need the full value multiset and stay coordinator-side.
DECOMPOSABLE_AGGS = frozenset(
    {"count", "sum", "mean", "avg", "min", "max", "first", "last"}
)

#: Aggregations whose result does not depend on row order (a Sort in
#: the pipeline prefix may be skipped shard-side for these).
ORDER_INSENSITIVE_AGGS = frozenset({"count", "sum", "mean", "avg", "min", "max"})


def step_label(step: q.Step) -> str:
    """One-token step description, matching ``Pipeline.describe()``."""
    if isinstance(step, q.Filter):
        return f"filter[{len(q.conjuncts(step.predicate))} conj]"
    if isinstance(step, q.GroupAgg):
        return f"groupby({','.join(step.keys)}).{step.agg}({step.column})"
    if isinstance(step, q.Agg):
        return f"{step.agg}({step.column})"
    if isinstance(step, q.Sort):
        return f"sort({','.join(step.keys)})"
    if isinstance(step, (q.Head, q.Tail, q.Skip)):
        return f"{type(step).__name__.lower()}({step.n})"
    return type(step).__name__.lower()


# ---------------------------------------------------------------------------
# Plan / partial shapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PushPlan:
    """What each shard executes locally, and how the results merge.

    ``mode`` selects the shard-side strategy:

    * ``"partial"`` — replay the prefix filters, then fold ``terminal``
      (RowCount/Agg/GroupAgg/Unique) into a partial state; ``suffix``
      steps run at the coordinator on the merged result;
    * ``"topk"`` — replay prefix filters+sorts, keep the local
      head/tail named by ``fetch``, and ship only those documents as
      merge candidates; the coordinator rebuilds a candidate frame and
      re-runs the full pipeline on it;
    * ``"project"`` — no local execution; ship documents pruned to
      ``fields``.

    ``filter`` is the merged Mongo prefilter (base filter + pushable
    pipeline conjuncts) each shard's ``find``/index path answers, so
    routing and index pruning engage exactly as on the classic path.
    """

    mode: str
    filter: Mapping[str, Any]
    pipeline: q.Pipeline
    fields: tuple[str, ...] | None  # payload projection; None = all columns
    local_columns: tuple[str, ...] = ()  # columns materialised shard-side
    local_steps: tuple[q.Step, ...] = ()  # Filter/Sort steps replayed locally
    terminal: q.Step | None = None  # mode="partial"
    suffix: tuple[q.Step, ...] = ()  # coordinator steps after the terminal
    fetch: tuple[str, int] | None = None  # ("head"|"tail", k) for mode="topk"
    guard_types: tuple[str, ...] = ()  # columns needing a python-type report
    filter_fields: tuple[str, ...] = ()
    present_fields: tuple[str, ...] = ()  # must exist somewhere, or fall back
    sort_fields: tuple[str, ...] = ()
    group_fields: tuple[str, ...] = ()
    value_field: str | None = None
    agg: str | None = None
    pushed_steps: tuple[str, ...] = ()  # explain: what runs shard-side
    coordinator_steps: tuple[str, ...] = ()  # explain: what stays here


@dataclass
class ColumnReport:
    """Per-shard per-column facts the combine needs for exactness."""

    dtype: str  # locally inferred storage dtype
    first_seq: int  # global sequence of the first row carrying the key
    first_pos: int  # key position within that first document
    n_present: int = 0  # rows carrying the key (even with a null value)
    n_valid: int = 0  # rows with a non-null value
    big_int: bool = False  # any raw int with abs() >= 2**53
    types: frozenset = frozenset()  # python type names (guarded columns only)


@dataclass
class ShardPartial:
    """One shard's contribution: counts, states, candidates, reports."""

    rows: int = 0  # documents matching the plan filter on this shard
    reports: dict[str, ColumnReport] = field(default_factory=dict)
    error: str | None = None  # local failure -> coordinator falls back
    count: int | None = None  # RowCount partial
    agg_state: dict[str, Any] | None = None  # scalar Agg partial
    groups: list[dict[str, Any]] | None = None  # GroupAgg partials
    unique: list[tuple[int, Any]] | None = None  # (first_seq, value)
    docs: list[tuple[int, dict[str, Any]]] = field(default_factory=list)
    payload_docs: int = 0
    payload_cells: int = 0


@dataclass
class Combined:
    """Outcome of merging shard partials: a result or a fallback reason."""

    ok: bool
    result: Any = None
    reason: str | None = None
    stats: dict[str, Any] = field(default_factory=dict)


class _Unsupported(Exception):
    """Shard-local condition the combine cannot merge exactly."""


# ---------------------------------------------------------------------------
# Exact summation (fsum-compatible partials)
# ---------------------------------------------------------------------------


def _exact_partials(values: Iterable[float]) -> list[float]:
    """Shewchuk exact partial sums: ``fsum(partials) == fsum(values)``.

    The returned non-overlapping partials represent the exact
    (error-free) sum of the inputs, so concatenating every shard's
    partials and ``math.fsum``-ing once reproduces the correctly
    rounded global sum bit-for-bit — the same answer ``Column.sum``
    computes over the unpartitioned column.
    """
    partials: list[float] = []
    for x in values:
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]
    if any(not math.isfinite(p) for p in partials):
        raise _Unsupported("non-finite partial sum")
    return partials


# ---------------------------------------------------------------------------
# Shard-side execution
# ---------------------------------------------------------------------------


def execute_plan_on_docs(
    docs: Iterable[Mapping[str, Any]], plan: PushPlan
) -> ShardPartial:
    """Run a plan over one backend's matching documents.

    This is both the in-process shard implementation and the documented
    fallback for backends without a native ``execute_partial``: any
    object whose ``find(filter)`` yields the matching documents (with
    or without the ``__shard_seq__`` stamp) can be driven through it.
    Never raises — local failures return an ``error`` partial, which
    makes the coordinator fall back to the classic path.
    """
    try:
        return _execute(docs, plan)
    except Exception as exc:  # noqa: BLE001 - fallback boundary
        return ShardPartial(error=f"{type(exc).__name__}: {exc}")


def _ancestors(field: str) -> list[str]:
    parts = field.split(".")
    return [".".join(parts[:i]) for i in range(1, len(parts))]


def _project_flat(
    record: Mapping[str, Any],
    wanted: frozenset,
    ancestors: frozenset,
    max_depth: int = 4,
) -> dict[str, Any]:
    """``{k: v for k, v in flatten_record(record) if k in wanted}``,
    without flattening the unwanted subtrees.

    Byte-compatible with :func:`repro.dataframe.frame.flatten_record`
    (same traversal order, same ``max_depth`` opaque-value cutoff, same
    empty-dict leaves), but per document it touches only the keys on a
    wanted field's path — the difference between O(doc width) and
    O(used fields) per scanned document, which is most of the scatter
    path's win on wide documents.
    """
    out: dict[str, Any] = {}

    def walk(prefix: str, value: Any, depth: int) -> None:
        if isinstance(value, Mapping) and depth < max_depth:
            if not value:
                if prefix in wanted:
                    out[prefix] = {}
                return
            if prefix in ancestors:
                for k, v in value.items():
                    walk(f"{prefix}.{k}", v, depth + 1)
            return
        if prefix in wanted:
            out[prefix] = value

    for k, v in record.items():
        key = str(k)
        if key in wanted or key in ancestors:
            walk(key, v, 0)
    return out


def _execute(docs: Iterable[Mapping[str, Any]], plan: PushPlan) -> ShardPartial:
    flats: list[tuple[int, dict[str, Any]]] = []
    if plan.fields is not None:
        wanted = frozenset(plan.fields)
        ancestors = frozenset(
            a for f in plan.fields for a in _ancestors(f)
        )
        for i, doc in enumerate(docs):
            seq = doc.get(SEQ_FIELD, i)
            flats.append((seq, _project_flat(doc, wanted, ancestors)))
    else:
        for i, doc in enumerate(docs):
            flat = flatten_record(doc)
            seq = flat.pop(SEQ_FIELD, i)
            flats.append((seq, flat))
    # local frame order must equal global order restricted to this
    # shard: concurrent writers can transpose neighbours in raw shard
    # order, exactly like the store's own gather path re-sorts
    flats.sort(key=lambda t: t[0])

    part = ShardPartial(rows=len(flats))
    if plan.mode != "project":
        part.reports = _build_reports(flats, plan)
    if plan.mode == "project":
        _run_project(flats, plan, part)
    elif plan.mode == "topk":
        _run_topk(flats, plan, part)
    else:
        _run_partial(flats, plan, part)
    return part


def _build_reports(
    flats: list[tuple[int, dict[str, Any]]], plan: PushPlan
) -> dict[str, ColumnReport]:
    """One linear scan producing the per-column facts the combine needs.

    With a field projection only the projected columns are inspected
    (O(used) per document); without one every column is walked so the
    coordinator can rebuild candidate frames with globally correct
    dtypes and first-appearance column order.
    """
    guard = set(plan.guard_types)
    # acc: name -> [first_seq, first_pos, saw_bool, saw_int, saw_float,
    #              saw_other, saw_null, n_present, n_valid, big, types]
    acc: dict[str, list[Any]] = {}

    def observe(name: str, v: Any, seq: int, pos: int) -> None:
        a = acc.get(name)
        if a is None:
            a = acc[name] = [
                seq, pos, False, False, False, False, False, 0, 0, False, None,
            ]
            if name in guard:
                a[10] = set()
        a[7] += 1
        if v is None or (isinstance(v, float) and v != v):
            a[6] = True
            return
        a[8] += 1
        if isinstance(v, (bool, np.bool_)):
            a[2] = True
        elif isinstance(v, (int, np.integer)):
            a[3] = True
            if v >= _BIG_INT or v <= -_BIG_INT:
                a[9] = True
        elif isinstance(v, (float, np.floating)):
            a[4] = True
        else:
            a[5] = True
        if a[10] is not None:
            a[10].add(type(v).__name__)

    if plan.fields is None:
        for seq, flat in flats:
            for pos, (k, v) in enumerate(flat.items()):
                observe(k, v, seq, pos)
    else:
        for seq, flat in flats:
            for k in plan.fields:
                v = flat.get(k, _MISSING)
                if v is not _MISSING:
                    observe(k, v, seq, 0)

    rows = len(flats)
    reports: dict[str, ColumnReport] = {}
    for name, a in acc.items():
        saw_null = a[6] or a[7] < rows
        if a[5]:
            dtype = dt.OBJECT
        elif a[2]:
            dtype = dt.OBJECT if (a[3] or a[4] or saw_null) else dt.BOOL
        elif a[4] or (a[3] and saw_null):
            dtype = dt.FLOAT
        elif a[3]:
            dtype = dt.INT
        else:
            dtype = dt.FLOAT  # all nulls
        reports[name] = ColumnReport(
            dtype=dtype,
            first_seq=a[0],
            first_pos=a[1],
            n_present=a[7],
            n_valid=a[8],
            big_int=a[9],
            types=frozenset(a[10]) if a[10] is not None else frozenset(),
        )
    return reports


def _local_frame(
    flats: list[tuple[int, dict[str, Any]]], plan: PushPlan
) -> DataFrame:
    """Materialise only the columns local execution touches.

    A used column absent from every local document becomes an all-null
    column (the rows it would contribute to the global frame are nulls
    there too); the combine separately falls back when a used column is
    absent from *every* shard, because the classic path raises then.
    """
    cols: dict[str, Column] = {}
    for name in plan.local_columns:
        cols[name] = Column(name, [flat.get(name) for _, flat in flats])
    cols[SEQ_FIELD] = Column(SEQ_FIELD, [s for s, _ in flats], dtype=dt.INT)
    return DataFrame._from_columns(cols, len(flats))


def _prune(flat: dict[str, Any], plan: PushPlan) -> dict[str, Any]:
    if plan.fields is None:
        return flat
    fields = set(plan.fields)
    return {k: v for k, v in flat.items() if k in fields}


def _run_project(
    flats: list[tuple[int, dict[str, Any]]], plan: PushPlan, part: ShardPartial
) -> None:
    part.docs = [(seq, _prune(flat, plan)) for seq, flat in flats]
    part.payload_docs = len(part.docs)
    part.payload_cells = sum(len(d) for _, d in part.docs)


def _run_topk(
    flats: list[tuple[int, dict[str, Any]]], plan: PushPlan, part: ShardPartial
) -> None:
    work = _local_frame(flats, plan)
    for st in plan.local_steps:
        if isinstance(st, q.Filter):
            work = work.filter(evaluate_predicate(st.predicate, work))
        elif isinstance(st, q.Sort):
            work = work.sort_values(list(st.keys), list(st.ascending))
    direction, k = plan.fetch if plan.fetch is not None else ("head", 0)
    work = work.head(k) if direction == "head" else work.tail(k)
    by_seq = dict(flats)
    part.docs = [
        (int(sv), _prune(by_seq[int(sv)], plan))
        for sv in work.column(SEQ_FIELD).to_numpy()
    ]
    part.payload_docs = len(part.docs)
    part.payload_cells = sum(len(d) for _, d in part.docs)


def _run_partial(
    flats: list[tuple[int, dict[str, Any]]], plan: PushPlan, part: ShardPartial
) -> None:
    work = _local_frame(flats, plan)
    for st in plan.local_steps:
        if isinstance(st, q.Filter):
            work = work.filter(evaluate_predicate(st.predicate, work))
    term = plan.terminal
    seqs = work.column(SEQ_FIELD)
    if isinstance(term, q.RowCount):
        part.count = len(work)
        part.payload_cells = 1
    elif isinstance(term, q.Agg):
        part.agg_state = _agg_state(
            work.column(term.column), term.agg, seqs
        )
        part.payload_cells = len(part.agg_state.get("partials", ())) or 1
    elif isinstance(term, q.Unique):
        col = work.column(term.column)
        seen: dict[Any, tuple[int, Any]] = {}
        for i, v in enumerate(col):
            if v is None:
                continue
            key = _hashable(v)
            if key not in seen:
                seen[key] = (int(seqs[i]), v)
        part.unique = sorted(seen.values(), key=lambda t: t[0])
        part.payload_cells = len(part.unique)
    elif isinstance(term, q.GroupAgg):
        key_cols = [work.column(k) for k in term.keys]
        val_col = work.column(term.column)
        groups: dict[tuple, list[int]] = {}
        for i in range(len(work)):
            groups.setdefault(
                tuple(_freeze(c[i]) for c in key_cols), []
            ).append(i)
        part.groups = []
        cells = 0
        for key, idx in groups.items():
            gseqs = seqs.take(idx)
            state = _agg_state(val_col.take(idx), term.agg, gseqs)
            part.groups.append(
                {"parts": key, "first_seq": int(gseqs[0]), "state": state}
            )
            cells += len(key) + (len(state.get("partials", ())) or 1)
        part.payload_cells = cells
    else:  # pragma: no cover - planner never emits other terminals
        raise _Unsupported(f"bad terminal {type(term).__name__}")


def _agg_state(col: Column, agg: str, seqs: Column) -> dict[str, Any]:
    """Shard-local partial state for one decomposable aggregation."""
    if agg == "count":
        return {"count": col.count()}
    if agg in ("sum", "mean", "avg"):
        v = col._valid(agg)
        if v.size and not np.isfinite(v).all():
            raise _Unsupported("non-finite aggregation input")
        return {"partials": _exact_partials(v.tolist()), "n": int(v.size)}
    if agg == "min":
        return {"value": col.min()}
    if agg == "max":
        return {"value": col.max()}
    if agg == "first":
        if len(col):
            return {"seq": int(seqs[0]), "value": col[0]}
        return {"seq": None, "value": None}
    if agg == "last":
        if len(col):
            return {"seq": int(seqs[len(col) - 1]), "value": col[len(col) - 1]}
        return {"seq": None, "value": None}
    raise _Unsupported(f"non-decomposable aggregation {agg!r}")


# ---------------------------------------------------------------------------
# Coordinator-side combine
# ---------------------------------------------------------------------------


def combine_partials(plan: PushPlan, partials: list[ShardPartial]) -> Combined:
    """Merge shard partials into the single-store answer, or refuse.

    A refusal (``ok=False``) carries the reason and means the caller
    must run the classic gather-everything path; it is never an error.
    """
    try:
        return _combine(plan, partials)
    except Exception as exc:  # noqa: BLE001 - fallback boundary
        return Combined(ok=False, reason=f"{type(exc).__name__}: {exc}")


def _combine(plan: PushPlan, partials: list[ShardPartial]) -> Combined:
    if not partials:
        return Combined(ok=False, reason="no shard answered")
    for p in partials:
        if p.error:
            return Combined(ok=False, reason=f"shard error: {p.error}")
    stats = {
        "shards": len(partials),
        "rows_scanned": sum(p.rows for p in partials),
        "payload_docs": sum(p.payload_docs for p in partials),
        "payload_cells": sum(p.payload_cells for p in partials),
    }
    if stats["rows_scanned"] == 0:
        # zero matching documents: the classic path is as cheap as any
        # merge and reproduces empty-frame behaviour (including the
        # exact missing-column errors) by construction
        return Combined(ok=False, reason="no matching rows", stats=stats)

    if plan.mode == "project":
        docs = [d for _, d in sorted(
            (c for p in partials for c in p.docs), key=lambda t: t[0]
        )]
        result = _execute_over(plan.pipeline, _frame_from_docs(docs))
        return _done(result, stats)

    merged = {
        name: _merged_dtype(name, partials)
        for name in {n for p in partials for n in p.reports}
    }
    # steps skipped shard-side (prefix Project / order-irrelevant Sort)
    # still raise on the classic path when their column is missing
    for name in plan.present_fields:
        if merged.get(name) is None:
            return Combined(
                ok=False, reason=f"column {name!r} absent", stats=stats
            )
    for name in plan.filter_fields:
        if merged.get(name) is None:
            return Combined(
                ok=False, reason=f"filter column {name!r} absent", stats=stats
            )
        reason = _filter_guard(name, partials, merged[name])
        if reason:
            return Combined(ok=False, reason=reason, stats=stats)

    if plan.mode == "topk":
        for name in plan.sort_fields:
            reason = _sort_guard(name, partials, merged.get(name))
            if reason:
                return Combined(ok=False, reason=reason, stats=stats)
        result = _execute_over(
            plan.pipeline, _candidate_frame(plan, partials, merged)
        )
        return _done(result, stats)

    return _combine_partial_mode(plan, partials, merged, stats)


def _done(result: Any, stats: dict[str, Any]) -> Combined:
    if result is None:
        return Combined(ok=False, reason="execution failed on merged frame",
                        stats=stats)
    return Combined(ok=True, result=result[0], stats=stats)


def _execute_over(pipeline: q.Pipeline, frame: DataFrame) -> tuple[Any] | None:
    """Run the pipeline; ``None`` signals fall-back-to-classic.

    Wrapped in a 1-tuple so a legitimate ``None`` result (e.g. a mean
    of no values) is distinguishable from a refusal.
    """
    from repro.errors import QueryExecutionError

    try:
        return (execute_query(pipeline, frame),)
    except QueryExecutionError:
        # the classic path reproduces the identical error (its frame
        # can only have more columns/rows than the merged one)
        return None


def _frame_from_docs(docs: list[dict[str, Any]]) -> DataFrame:
    """``DataFrame.from_records`` semantics without re-copying row dicts."""
    keys: dict[str, None] = {}
    for d in docs:
        for k in d:
            keys.setdefault(k, None)
    return DataFrame({k: [d.get(k) for d in docs] for k in keys})


# -- dtype folding -----------------------------------------------------------


def _fold(a: str | None, b: str) -> str:
    if a is None or a == b:
        return b
    pair = {a, b}
    if _NULL in pair:
        other = next(iter(pair - {_NULL}))
        if other == dt.INT:
            return dt.FLOAT
        if other == dt.BOOL:
            return dt.OBJECT
        return other
    if pair <= {dt.INT, dt.FLOAT}:
        return dt.FLOAT
    return dt.OBJECT


def _merged_dtype(name: str, partials: list[ShardPartial]) -> str | None:
    """The dtype the *global* frame would infer for this column.

    ``None`` when the column is absent from every matching document
    (the classic path would raise on any reference to it).
    """
    merged: str | None = None
    for p in partials:
        if p.rows == 0:
            continue
        r = p.reports.get(name)
        merged = _fold(merged, r.dtype if r is not None else _NULL)
    if merged is None or merged == _NULL:
        return None
    return merged


def _exactness_ok(
    name: str, partials: list[ShardPartial], merged: str
) -> bool:
    """False when >=2**53 ints make local and global evaluation differ.

    Predicate and sort evaluation happen on the *local* dtype; a raw
    big int is exact in int64/object storage but rounded in float64, so
    any shard whose local exactness differs from the merged column's
    could keep/order rows the global frame would not.
    """
    for p in partials:
        r = p.reports.get(name)
        if r is not None and r.big_int and (
            (r.dtype == dt.FLOAT) != (merged == dt.FLOAT)
        ):
            return False
    return True


def _all_null_numeric(r: ColumnReport) -> bool:
    return r.dtype == dt.FLOAT and r.n_valid == 0


def _filter_guard(
    name: str, partials: list[ShardPartial], merged: str
) -> str | None:
    """Reason local predicate evaluation may differ from global, or None.

    Filters are replayed shard-side against the *locally* inferred
    dtype, while the classic path evaluates them on the globally
    inferred one.  Identical dtypes evaluate identically; an int64
    local under a float64 global is safe while every int is exactly
    representable.  Anything else (most importantly a float local under
    an object global, where ``!=`` keeps NaN rows but drops None rows)
    falls back.
    """
    for p in partials:
        if p.rows == 0:
            continue
        r = p.reports.get(name)
        local = r.dtype if r is not None else dt.FLOAT  # absent -> all-null
        if local == merged:
            continue
        if local == dt.INT and merged == dt.FLOAT and not (r and r.big_int):
            continue
        return (
            f"filter column {name!r} evaluates as {local} locally "
            f"but {merged} globally"
        )
    return None


def _sort_guard(
    name: str, partials: list[ShardPartial], merged: str | None
) -> str | None:
    """Reason the local sort order may not match the global one, or None."""
    if merged is None:
        return f"sort column {name!r} absent"
    if merged in (dt.INT, dt.FLOAT):
        if not _exactness_ok(name, partials, merged):
            return f"big-int rounding risk on sort column {name!r}"
        return None
    if merged == dt.BOOL:
        return None  # folding to bool implies every local is bool
    for p in partials:  # object: only all-string columns order portably
        r = p.reports.get(name)
        if r is None or _all_null_numeric(r):
            continue
        if r.dtype != dt.OBJECT or (r.types - {"str"}):
            return f"mixed-type sort column {name!r}"
    return None


def _value_parity_ok(name: str, partials: list[ShardPartial], merged: str) -> bool:
    """True when locally converted values equal the global raw values.

    For numeric/bool merged dtypes the combine coerces through the
    merged dtype, so any numeric local is fine.  For object columns the
    global frame keeps raw values; a float-typed local converts raw
    ints to floats, which no coercion can undo.
    """
    if merged in (dt.INT, dt.FLOAT, dt.BOOL):
        return True
    for p in partials:
        r = p.reports.get(name)
        if r is None:
            continue
        if r.dtype == dt.FLOAT and "int" in r.types and r.n_valid:
            return False
    return True


def _coerce(v: Any, merged: str | None) -> Any:
    if merged == dt.FLOAT and v is not None:
        return float(v)
    return v


# -- partial-mode merge ------------------------------------------------------


def _combine_partial_mode(
    plan: PushPlan,
    partials: list[ShardPartial],
    merged: dict[str, str | None],
    stats: dict[str, Any],
) -> Combined:
    term = plan.terminal
    if isinstance(term, q.RowCount):
        return Combined(
            ok=True,
        result=sum(p.count if p.count is not None else 0 for p in partials),
        stats=stats,
        )

    def refuse(reason: str) -> Combined:
        return Combined(ok=False, reason=reason, stats=stats)

    if isinstance(term, q.Unique):
        name = term.column
        mdtype = merged.get(name)
        if mdtype is None:
            return refuse(f"unique column {name!r} absent")
        if not _value_parity_ok(name, partials, mdtype):
            return refuse(f"value drift risk on {name!r}")
        seen: dict[Any, Any] = {}
        entries = sorted(
            (e for p in partials for e in (p.unique if p.unique is not None else ())),
        key=lambda t: t[0],
        )
        for _, v in entries:
            v = _coerce(v, mdtype)
            key = _hashable(v)
            if key not in seen:
                seen[key] = v
        return Combined(ok=True, result=list(seen.values()), stats=stats)

    if isinstance(term, q.Agg):
        name = term.column
        mdtype = merged.get(name)
        reason = _agg_value_guard(name, term.agg, partials, mdtype)
        if reason:
            return refuse(reason)
        states = [p.agg_state for p in partials if p.agg_state is not None]
        value = _merge_states(states, term.agg)
        if term.agg != "count":  # a count is an int whatever the dtype
            value = _coerce(value, mdtype)
        return Combined(ok=True, result=value, stats=stats)

    # GroupAgg
    assert isinstance(term, q.GroupAgg)
    for kname in term.keys:
        kdtype = merged.get(kname)
        if kdtype is None:
            return refuse(f"group key {kname!r} absent")
        if not _value_parity_ok(kname, partials, kdtype):
            return refuse(f"value drift risk on group key {kname!r}")
    vname = term.column
    vdtype = merged.get(vname)
    reason = _agg_value_guard(vname, term.agg, partials, vdtype)
    if reason:
        return refuse(reason)

    key_dtypes = [merged.get(k) for k in term.keys]
    # per-group counts stay ints whatever the value column's dtype
    value_dtype = None if term.agg == "count" else vdtype
    groups: dict[tuple, dict[str, Any]] = {}
    for p in partials:
        for g in p.groups if p.groups is not None else ():
            parts = tuple(
                _coerce(v, kd) for v, kd in zip(g["parts"], key_dtypes)
            )
            cur = groups.get(parts)
            if cur is None:
                groups[parts] = {
                    "first_seq": g["first_seq"],
                    "parts": parts,
                    "states": [g["state"]],
                }
            else:
                cur["states"].append(g["state"])
                if g["first_seq"] < cur["first_seq"]:
                    # global group order AND the representative key
                    # values come from the globally-first row
                    cur["first_seq"] = g["first_seq"]
                    cur["parts"] = parts
    data: dict[str, list[Any]] = {k: [] for k in term.keys}
    values: list[Any] = []
    for g in sorted(groups.values(), key=lambda g: g["first_seq"]):
        for kname, part in zip(term.keys, g["parts"]):
            data[kname].append(part)
        values.append(
            _coerce(_merge_states(g["states"], term.agg), value_dtype)
        )
    # same-name value column replaces the key column, as in SeriesGroupBy
    data[vname] = values
    gframe = DataFrame(data)
    if not plan.suffix:
        return Combined(ok=True, result=gframe, stats=stats)
    result = _execute_over(q.Pipeline(tuple(plan.suffix)), gframe)
    return _done(result, stats)


def _agg_value_guard(
    name: str,
    agg: str,
    partials: list[ShardPartial],
    merged: str | None,
) -> str | None:
    """Reason this aggregation's value column cannot merge exactly."""
    if merged is None:
        return f"aggregation column {name!r} absent"
    if agg == "count":
        return None  # per-row nullness is value-determined on any dtype
    if agg in ("sum", "mean", "avg"):
        if merged in (dt.INT, dt.FLOAT, dt.BOOL):
            return None
        return f"cannot sum object column {name!r} shard-side"
    if agg in ("min", "max"):
        if merged in (dt.INT, dt.FLOAT, dt.BOOL):
            return None
        for p in partials:  # object min/max: portable only for all-strings
            r = p.reports.get(name)
            if r is None or _all_null_numeric(r):
                continue
            if r.dtype != dt.OBJECT or (r.types - {"str"}):
                return f"mixed-type {agg} on {name!r}"
        return None
    if agg in ("first", "last"):
        if not _value_parity_ok(name, partials, merged):
            return f"value drift risk on {name!r}"
        return None
    return f"non-decomposable aggregation {agg!r}"


def _merge_states(states: list[dict[str, Any]], agg: str) -> Any:
    if agg == "count":
        return sum(s["count"] for s in states)
    if agg in ("sum", "mean", "avg"):
        parts = [x for s in states for x in s["partials"]]
        if agg == "sum":
            return math.fsum(parts)  # fsum([]) == 0.0, matching Column.sum
        n = sum(s["n"] for s in states)
        return math.fsum(parts) / n if n else None
    if agg in ("min", "max"):
        vals = [s["value"] for s in states if s["value"] is not None]
        if not vals:
            return None
        return min(vals) if agg == "min" else max(vals)
    if agg in ("first", "last"):
        stamped = [s for s in states if s["seq"] is not None]
        if not stamped:
            return None
        pick = min if agg == "first" else max
        return pick(stamped, key=lambda s: s["seq"])["value"]
    raise _Unsupported(f"non-decomposable aggregation {agg!r}")


# -- top-k candidate frame ---------------------------------------------------


def _candidate_frame(
    plan: PushPlan,
    partials: list[ShardPartial],
    merged: dict[str, str | None],
) -> DataFrame:
    """Global-order candidate frame with globally correct dtypes.

    Candidates are a superset of the global top-k (each shard's local
    order equals the global order restricted to that shard, so its
    local top-k contains every global winner it hosts); re-running the
    full pipeline over this frame therefore reproduces the exact
    result.  Columns are coerced through the merged dtype so a column
    that happens to be all-null (or all-int) among the candidates still
    gets the dtype the full frame would have.
    """
    candidates = sorted(
        (c for p in partials for c in p.docs), key=lambda t: t[0]
    )
    order: dict[str, tuple[int, int]] = {}
    for p in partials:
        for name, r in p.reports.items():
            pos = (r.first_seq, r.first_pos)
            cur = order.get(name)
            if cur is None or pos < cur:
                order[name] = pos
    names = sorted(order, key=lambda n: order[n])
    if plan.fields is not None:
        allowed = set(plan.fields)
        names = [n for n in names if n in allowed]
    cols: dict[str, Column] = {}
    for name in names:
        vals = [doc.get(name) for _, doc in candidates]
        cols[name] = Column(name, vals, dtype=merged[name])
    return DataFrame._from_columns(cols, len(candidates))
