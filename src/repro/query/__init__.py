"""Query intermediate representation (IR) for DataFrame query code.

The provenance agent's LLM emits *pandas-style query code strings* (the
paper's output-format strategy: "return the query, not the result", which
keeps token usage independent of provenance volume).  This package defines:

* :mod:`repro.query.ast` — a pipeline AST (filter/sort/head/groupby/agg/...)
  with predicate trees;
* :mod:`repro.query.render` — AST -> canonical pandas-like code string;
* :mod:`repro.query.parser` — code string -> AST (tokeniser + recursive
  descent; raises :class:`~repro.errors.QuerySyntaxError` on bad code);
* :mod:`repro.query.executor` — AST -> result against a
  :class:`~repro.dataframe.DataFrame`;
* :mod:`repro.query.compare` — structural/semantic diff between two
  queries, the shared core of rule-based scoring and the simulated
  LLM-as-a-judge;
* :mod:`repro.query.pushdown` — leading pipeline filters -> Mongo-style
  prefilters answered by the provenance store's indexes, plus
  :func:`~repro.query.pushdown.plan_pushdown`, which upgrades eligible
  pipelines to full operator pushdown;
* :mod:`repro.query.partial` — shard-side operator execution: partial
  aggregation states, local top-k, projected payloads, and the exact
  coordinator merge with its guarded fallback;
* :mod:`repro.query.cache` — :class:`QueryCache`, the versioned query
  result cache fronting the Query API and the agent's database tool.

The full step/predicate/aggregation grammar is documented in
``docs/query_surface.md``.
"""

from repro.query.ast import (
    Agg,
    And,
    Between,
    Compare,
    DropDuplicates,
    Field,
    Filter,
    GroupAgg,
    Head,
    IsIn,
    IsNull,
    Not,
    NotNull,
    Or,
    Pipeline,
    Project,
    RowCount,
    Skip,
    Sort,
    StrContains,
    StrEndsWith,
    StrStartsWith,
    Tail,
    Unique,
)
from repro.query.cache import MISS, QueryCache, canonical_filter_key
from repro.query.partial import (
    Combined,
    PushPlan,
    ShardPartial,
    combine_partials,
    execute_plan_on_docs,
)
from repro.query.pushdown import plan_pushdown
from repro.query.parser import parse_query
from repro.query.render import render_query
from repro.query.executor import execute_query
from repro.query.compare import QueryDiff, compare_queries

__all__ = [
    "Agg",
    "And",
    "Between",
    "Compare",
    "DropDuplicates",
    "Field",
    "Filter",
    "GroupAgg",
    "Head",
    "IsIn",
    "IsNull",
    "Not",
    "NotNull",
    "Or",
    "Pipeline",
    "Project",
    "RowCount",
    "Skip",
    "Sort",
    "StrContains",
    "StrEndsWith",
    "StrStartsWith",
    "Tail",
    "Unique",
    "parse_query",
    "render_query",
    "execute_query",
    "compare_queries",
    "QueryDiff",
    "QueryCache",
    "canonical_filter_key",
    "MISS",
    "PushPlan",
    "ShardPartial",
    "Combined",
    "plan_pushdown",
    "combine_partials",
    "execute_plan_on_docs",
]
