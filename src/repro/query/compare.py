"""Structural + functional comparison of two query pipelines.

This module is the analytical core shared by the evaluation methodology's
two scoring strategies (paper §3 "Evaluation"):

* **rule-based** scoring calls :func:`compare_queries` and uses the
  weighted rubric score directly;
* the **simulated LLM-as-a-judge** starts from the same diff but applies
  its own leniency, self-preference and noise profile (see
  :mod:`repro.evaluation.judges`).

The diff inspects: referenced fields (to spot hallucinated columns),
filter predicates (order-insensitively), the terminal operation
(aggregation kind and column), groupby keys, sort/limit behaviour, and
projection.  When a context frame is supplied, both pipelines are also
*executed* and their results compared — this catches structurally
different but functionally equivalent formulations (e.g.
``sort desc + head(1)`` vs ``.max()``), which the paper's judge prompt
explicitly rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any

from repro.dataframe import DataFrame
from repro.dataframe.aggregations import VALUE_PRESERVING
from repro.errors import QueryExecutionError
from repro.query import ast as q
from repro.query.executor import execute_query

__all__ = ["QueryDiff", "compare_queries", "results_equivalent"]

#: Aggregation pairs considered "close" (partial credit, not equivalence).
_CLOSE_AGGS = {
    frozenset({"mean", "median"}),
    frozenset({"sum", "mean"}),
    frozenset({"count", "nunique"}),
}


@dataclass
class QueryDiff:
    """Component-wise differences between a gold and a generated query."""

    # field usage
    gold_fields: set[str] = dc_field(default_factory=set)
    gen_fields: set[str] = dc_field(default_factory=set)
    hallucinated_fields: set[str] = dc_field(default_factory=set)

    # filters
    filter_jaccard: float = 1.0
    filter_exact: bool = True
    value_mismatches: int = 0

    # terminal operation
    terminal_match: bool = True
    terminal_close: bool = False
    terminal_column_match: bool = True
    groupby_keys_match: bool = True

    # ordering / limiting / projection
    sort_match: bool = True
    sort_direction_flipped: bool = False
    limit_match: bool = True
    projection_jaccard: float = 1.0

    # functional equivalence (only set when a frame was provided)
    executed: bool = False
    gen_execution_error: str | None = None
    results_match: bool | None = None

    notes: list[str] = dc_field(default_factory=list)

    # -- scoring -------------------------------------------------------------
    def rubric_score(self) -> float:
        """Weighted rubric in [0, 1].

        Functional equivalence dominates: if both executed and results
        match, the structural differences are forgiven down to a floor of
        0.9 (the paper's judge prompt "emphasizes functional equivalence
        over syntactic similarity").  Otherwise the structural components
        are combined with weights renormalised over the components the
        gold query actually exercises.
        """
        if self.gen_execution_error is not None:
            # executable correctness is a hard requirement
            return min(0.2, self._structural_score() * 0.4)
        if self.results_match:
            return max(0.9, self._structural_score())
        score = self._structural_score()
        if self.results_match is False and self.executed:
            score = min(score, 0.75)
        return score

    def _structural_score(self) -> float:
        parts: list[tuple[float, float]] = []  # (weight, component score)

        # fields: hallucinations are disqualifying errors per the judge prompt
        if self.gold_fields or self.gen_fields:
            union = self.gold_fields | self.gen_fields
            inter = self.gold_fields & self.gen_fields
            fscore = len(inter) / len(union) if union else 1.0
            if self.hallucinated_fields:
                fscore *= 0.3
            parts.append((0.25, fscore))

        # filters
        f = self.filter_jaccard
        if self.value_mismatches:
            f *= max(0.3, 1.0 - 0.35 * self.value_mismatches)
        parts.append((0.30, f))

        # terminal op
        if self.terminal_match:
            t = 1.0 if self.terminal_column_match else 0.5
        elif self.terminal_close:
            t = 0.6 if self.terminal_column_match else 0.3
        else:
            t = 0.0
        if not self.groupby_keys_match:
            t *= 0.5
        parts.append((0.25, t))

        # ordering / limit
        s = 1.0
        if not self.sort_match:
            s = 0.2 if self.sort_direction_flipped else 0.4
        if not self.limit_match:
            s *= 0.6
        parts.append((0.10, s))

        # projection
        parts.append((0.10, self.projection_jaccard))

        total_w = sum(w for w, _ in parts)
        return max(0.0, min(1.0, sum(w * v for w, v in parts) / total_w))


def _predicate_loose_key(pred: Any) -> Any:
    """Key for 'same constraint, maybe different value' matching."""
    if isinstance(pred, q.Compare):
        return ("cmp", pred.field.name, pred.op)
    if isinstance(pred, q.StrContains):
        return ("contains", pred.field.name)
    if isinstance(pred, q.StrStartsWith):
        return ("startswith", pred.field.name)
    if isinstance(pred, q.StrEndsWith):
        return ("endswith", pred.field.name)
    if isinstance(pred, q.IsIn):
        return ("isin", pred.field.name)
    if isinstance(pred, q.Between):
        return ("between", pred.field.name)
    if isinstance(pred, (q.NotNull, q.IsNull)):
        return (type(pred).__name__.lower(), pred.field.name)
    return ("complex", repr(pred))


def _canonical_leaf(pred: Any) -> Any:
    """Equate spellings that mean the same thing (== v  vs  isin([v]))."""
    if isinstance(pred, q.IsIn) and len(pred.values) == 1:
        return q.Compare(pred.field, "==", pred.values[0])
    return pred


def compare_queries(
    gold: q.Pipeline,
    generated: q.Pipeline,
    *,
    frame: DataFrame | None = None,
    known_fields: set[str] | None = None,
) -> QueryDiff:
    """Diff two pipelines; optionally check functional equivalence on ``frame``."""
    diff = QueryDiff()
    diff.gold_fields = gold.fields_used()
    diff.gen_fields = generated.fields_used()
    if known_fields is not None:
        diff.hallucinated_fields = {
            f for f in diff.gen_fields if f not in known_fields
        }
        if diff.hallucinated_fields:
            diff.notes.append(
                "hallucinated fields: " + ", ".join(sorted(diff.hallucinated_fields))
            )

    # --- filters -----------------------------------------------------------
    gold_parts = {_canonical_leaf(p) for p in _all_conjuncts(gold)}
    gen_parts = {_canonical_leaf(p) for p in _all_conjuncts(generated)}
    if gold_parts or gen_parts:
        inter = gold_parts & gen_parts
        union = gold_parts | gen_parts
        diff.filter_jaccard = len(inter) / len(union) if union else 1.0
        diff.filter_exact = gold_parts == gen_parts
        # count loose matches with differing values (e.g. wrong threshold)
        gold_loose = {_predicate_loose_key(p) for p in gold_parts - inter}
        gen_loose = {_predicate_loose_key(p) for p in gen_parts - inter}
        matched_loose = gold_loose & gen_loose
        diff.value_mismatches = len(matched_loose)
        if matched_loose:
            # loose matches are better than nothing: bump jaccard halfway
            bonus = len(matched_loose) / (len(union) or 1)
            diff.filter_jaccard = min(1.0, diff.filter_jaccard + 0.5 * bonus)
            diff.notes.append(f"{len(matched_loose)} filter(s) with wrong value")
    else:
        diff.filter_jaccard = 1.0
        diff.filter_exact = True

    # --- terminal ------------------------------------------------------------
    gt, nt = gold.terminal(), generated.terminal()
    if type(gt) is type(nt):
        if isinstance(gt, q.Agg) and isinstance(nt, q.Agg):
            diff.terminal_match = gt.agg == nt.agg
            diff.terminal_close = (
                not diff.terminal_match
                and frozenset({gt.agg, nt.agg}) in _CLOSE_AGGS
            )
            diff.terminal_column_match = gt.column == nt.column
        elif isinstance(gt, q.GroupAgg) and isinstance(nt, q.GroupAgg):
            diff.terminal_match = gt.agg == nt.agg
            diff.terminal_close = (
                not diff.terminal_match
                and frozenset({gt.agg, nt.agg}) in _CLOSE_AGGS
            )
            diff.terminal_column_match = gt.column == nt.column
            diff.groupby_keys_match = set(gt.keys) == set(nt.keys)
        elif isinstance(gt, q.Unique) and isinstance(nt, q.Unique):
            diff.terminal_match = True
            diff.terminal_column_match = gt.column == nt.column
        else:  # both None or both RowCount
            diff.terminal_match = True
    else:
        diff.terminal_match = False
        diff.terminal_close = _terminal_functionally_close(gt, nt, gold, generated)
        diff.terminal_column_match = _terminal_columns_overlap(gt, nt)
        if diff.terminal_close:
            diff.notes.append("different but possibly equivalent terminal operation")

    # --- sort / limit -----------------------------------------------------------
    gs, ns = gold.sort(), generated.sort()
    if gs is None and ns is None:
        diff.sort_match = True
    elif gs is not None and ns is not None:
        keys_ok = gs.keys == ns.keys
        dirs_ok = gs.ascending == ns.ascending
        diff.sort_match = keys_ok and dirs_ok
        diff.sort_direction_flipped = keys_ok and not dirs_ok
    else:
        # a missing sort only matters if gold had one (or vice versa) and
        # the terminal op doesn't subsume ordering
        diff.sort_match = _sort_subsumed(gold, generated)

    gl, nl = gold.limit(), generated.limit()
    if gl is None and nl is None:
        diff.limit_match = True
    elif gl is not None and nl is not None:
        diff.limit_match = type(gl) is type(nl) and gl.n == nl.n
    else:
        diff.limit_match = False

    # --- projection --------------------------------------------------------------
    gp, np_ = gold.projection(), generated.projection()
    if gp is None and np_ is None:
        diff.projection_jaccard = 1.0
    elif gp is not None and np_ is not None:
        a, b = set(gp.columns), set(np_.columns)
        diff.projection_jaccard = len(a & b) / len(a | b) if a | b else 1.0
    elif gp is None and np_ is not None:
        diff.projection_jaccard = 0.8  # extra projection: mild penalty
    else:
        diff.projection_jaccard = 0.5  # missing requested projection

    # --- functional equivalence -----------------------------------------------------
    if frame is not None:
        diff.executed = True
        try:
            gen_result = execute_query(generated, frame)
        except QueryExecutionError as exc:
            diff.gen_execution_error = str(exc)
            diff.results_match = False
            return diff
        try:
            gold_result = execute_query(gold, frame)
        except QueryExecutionError as exc:  # a broken gold query is a test bug
            diff.notes.append(f"gold query failed to execute: {exc}")
            diff.results_match = None
            return diff
        ordered = gold.sort() is not None
        diff.results_match = results_equivalent(gold_result, gen_result, ordered=ordered)
        if not diff.results_match:
            diff.results_match = _scalar_vs_row_equivalent(
                gold.terminal(), gold_result, gen_result
            ) or _scalar_vs_row_equivalent(generated.terminal(), gen_result, gold_result)
    return diff


def _scalar_vs_row_equivalent(terminal: Any, scalar_result: Any, frame_result: Any) -> bool:
    """Scalar ``df[c].max()`` vs 1-row ``sort+head(1)`` frame carrying column c.

    The two formulations answer the same question; the paper's judge prompt
    rewards this kind of functional equivalence.
    """
    if not isinstance(terminal, q.Agg):
        return False
    if not isinstance(scalar_result, (int, float)):
        return False
    if not isinstance(frame_result, DataFrame) or len(frame_result) != 1:
        return False
    if terminal.column not in frame_result:
        return False
    cell = frame_result.column(terminal.column)[0]
    if not isinstance(cell, (int, float)):
        return False
    return abs(float(cell) - float(scalar_result)) <= 1e-9 * max(
        1.0, abs(float(cell)), abs(float(scalar_result))
    )


def _all_conjuncts(p: q.Pipeline) -> list[Any]:
    out: list[Any] = []
    for f in p.filters():
        out.extend(q.conjuncts(f.predicate))
    return out


def _terminal_functionally_close(
    gt: Any, nt: Any, gold: q.Pipeline, gen: q.Pipeline
) -> bool:
    """Recognise sort+head(1) <-> min/max style equivalences structurally."""
    # gold Agg(min/max) vs generated sort+head(1)
    if isinstance(gt, q.Agg) and nt is None:
        lim = gen.limit()
        srt = gen.sort()
        if lim is not None and lim.n == 1 and srt is not None and gt.column in srt.keys:
            return True
    if isinstance(nt, q.Agg) and gt is None:
        lim = gold.limit()
        srt = gold.sort()
        if lim is not None and lim.n == 1 and srt is not None and nt.column in srt.keys:
            return True
    # RowCount vs Agg(count) on any column
    if isinstance(gt, q.RowCount) and isinstance(nt, q.Agg) and nt.agg == "count":
        return True
    if isinstance(nt, q.RowCount) and isinstance(gt, q.Agg) and gt.agg == "count":
        return True
    if isinstance(gt, q.Unique) and isinstance(nt, q.GroupAgg):
        return True
    return False


def _terminal_columns_overlap(gt: Any, nt: Any) -> bool:
    def cols(t: Any) -> set[str]:
        if isinstance(t, (q.Agg, q.Unique)):
            return {t.column}
        if isinstance(t, q.GroupAgg):
            return {t.column}
        return set()

    a, b = cols(gt), cols(nt)
    if not a and not b:
        return True
    return bool(a & b)


def _sort_subsumed(gold: q.Pipeline, gen: q.Pipeline) -> bool:
    """A missing sort is harmless when the terminal op makes order moot."""
    t = gold.terminal() or gen.terminal()
    return isinstance(t, (q.Agg, q.RowCount, q.GroupAgg, q.Unique))


# ---------------------------------------------------------------------------
# Result equivalence
# ---------------------------------------------------------------------------


def results_equivalent(a: Any, b: Any, *, ordered: bool = False, tol: float = 1e-9) -> bool:
    """Compare two execution results for analytical equivalence.

    Scalars compare with tolerance; a 1x1 frame equals its scalar; frames
    compare as row multisets unless ``ordered``; unique-lists compare as
    sets.  Column naming differences are ignored for single-column frames
    (renames don't change the analytical content).
    """
    a, b = _simplify(a), _simplify(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(float(a) - float(b)) <= tol * max(1.0, abs(float(a)), abs(float(b)))
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return False
        if ordered:
            return all(_value_eq(x, y, tol) for x, y in zip(a, b))
        return _multiset_eq(a, b, tol)
    if isinstance(a, DataFrame) and isinstance(b, DataFrame):
        return _frames_equivalent(a, b, ordered=ordered, tol=tol)
    if isinstance(a, DataFrame) and isinstance(b, list):
        if len(a.columns) == 1:
            return results_equivalent(a.column(a.columns[0]).to_list(), b, ordered=ordered, tol=tol)
        return False
    if isinstance(b, DataFrame) and isinstance(a, list):
        return results_equivalent(b, a, ordered=ordered, tol=tol)
    return _value_eq(a, b, tol)


def _simplify(x: Any) -> Any:
    if isinstance(x, DataFrame) and x.shape == (1, 1):
        return x.column(x.columns[0])[0]
    return x


def _frames_equivalent(a: DataFrame, b: DataFrame, *, ordered: bool, tol: float) -> bool:
    if len(a) != len(b):
        return False
    if len(a.columns) == 1 and len(b.columns) == 1:
        return results_equivalent(
            a.column(a.columns[0]).to_list(),
            b.column(b.columns[0]).to_list(),
            ordered=ordered,
            tol=tol,
        )
    shared = [c for c in a.columns if c in set(b.columns)]
    if not shared or len(shared) < min(len(a.columns), len(b.columns)):
        return False
    rows_a = [tuple(r[c] for c in shared) for r in a.select(shared).to_dicts()]
    rows_b = [tuple(r[c] for c in shared) for r in b.select(shared).to_dicts()]
    if ordered:
        return all(
            len(x) == len(y) and all(_value_eq(u, v, tol) for u, v in zip(x, y))
            for x, y in zip(rows_a, rows_b)
        )
    return _multiset_eq(rows_a, rows_b, tol)


def _multiset_eq(a: list, b: list, tol: float) -> bool:
    remaining = list(b)
    for x in a:
        for i, y in enumerate(remaining):
            if _value_eq(x, y, tol):
                remaining.pop(i)
                break
        else:
            return False
    return not remaining


def _value_eq(x: Any, y: Any, tol: float) -> bool:
    if isinstance(x, tuple) and isinstance(y, tuple):
        return len(x) == len(y) and all(_value_eq(u, v, tol) for u, v in zip(x, y))
    if isinstance(x, (int, float)) and isinstance(y, (int, float)):
        return abs(float(x) - float(y)) <= tol * max(1.0, abs(float(x)), abs(float(y)))
    return x == y
