"""Pipeline AST for DataFrame queries.

A query is a :class:`Pipeline`: an ordered list of steps applied to the
in-memory context frame ``df``.  Predicates form their own small
expression tree.  All nodes are frozen dataclasses so they hash and
compare structurally — the judges rely on that.

Example — "average bond dissociation enthalpy for C-H bonds"::

    Pipeline(steps=(
        Filter(StrContains(Field("generated.bond_id"), "C-H")),
        Agg("generated.bd_enthalpy", "mean"),
    ))

renders as::

    df[df["generated.bond_id"].str.contains("C-H")]["generated.bd_enthalpy"].mean()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Union

# ---------------------------------------------------------------------------
# Predicate expression tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Field:
    """A column reference inside a predicate."""

    name: str


@dataclass(frozen=True)
class Compare:
    """``df[field] <op> value`` where op is one of == != < <= > >=."""

    field: Field
    op: str
    value: Any

    OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self.OPS:
            raise ValueError(f"bad comparison operator {self.op!r}")


@dataclass(frozen=True)
class StrContains:
    field: Field
    pattern: str
    case: bool = True


@dataclass(frozen=True)
class StrStartsWith:
    field: Field
    prefix: str


@dataclass(frozen=True)
class StrEndsWith:
    field: Field
    suffix: str


@dataclass(frozen=True)
class IsIn:
    field: Field
    values: tuple


@dataclass(frozen=True)
class Between:
    field: Field
    low: Any
    high: Any


@dataclass(frozen=True)
class NotNull:
    field: Field


@dataclass(frozen=True)
class IsNull:
    field: Field


@dataclass(frozen=True)
class And:
    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class Or:
    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class Not:
    operand: "Predicate"


Predicate = Union[
    Compare,
    StrContains,
    StrStartsWith,
    StrEndsWith,
    IsIn,
    Between,
    NotNull,
    IsNull,
    And,
    Or,
    Not,
]

_LEAF_PREDICATES = (
    Compare,
    StrContains,
    StrStartsWith,
    StrEndsWith,
    IsIn,
    Between,
    NotNull,
    IsNull,
)


def predicate_fields(pred: Predicate) -> set[str]:
    """All column names referenced by a predicate tree."""
    if isinstance(pred, _LEAF_PREDICATES):
        return {pred.field.name}
    if isinstance(pred, (And, Or)):
        return predicate_fields(pred.left) | predicate_fields(pred.right)
    if isinstance(pred, Not):
        return predicate_fields(pred.operand)
    raise TypeError(f"not a predicate: {pred!r}")


def conjuncts(pred: Predicate) -> list[Predicate]:
    """Flatten a conjunction into its AND-ed parts (order-insensitive form)."""
    if isinstance(pred, And):
        return conjuncts(pred.left) + conjuncts(pred.right)
    return [pred]


def normalize_predicate(pred: Predicate) -> frozenset:
    """Order-insensitive canonical form of an AND-only predicate.

    Conjunctions become frozensets of leaves; OR/NOT subtrees are kept
    whole (recursively normalised) since they are rarer and order inside
    them matters less for the scoring rubric.
    """
    parts = []
    for c in conjuncts(pred):
        if isinstance(c, Or):
            parts.append(("or", normalize_predicate(c.left), normalize_predicate(c.right)))
        elif isinstance(c, Not):
            parts.append(("not", normalize_predicate(c.operand)))
        else:
            parts.append(c)
    return frozenset(parts)


# ---------------------------------------------------------------------------
# Pipeline steps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Filter:
    """Boolean-mask row filter: ``df[<predicate>]``."""

    predicate: Predicate


@dataclass(frozen=True)
class Project:
    """Column projection: ``df[["a", "b"]]``."""

    columns: tuple[str, ...]


@dataclass(frozen=True)
class Sort:
    """``df.sort_values([...], ascending=[...])``."""

    keys: tuple[str, ...]
    ascending: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.ascending):
            raise ValueError("sort keys and directions must align")


@dataclass(frozen=True)
class Head:
    n: int


@dataclass(frozen=True)
class Tail:
    n: int


@dataclass(frozen=True)
class Skip:
    """Drop the first ``n`` rows: ``df.iloc[n:]`` (SQL OFFSET)."""

    n: int


@dataclass(frozen=True)
class GroupAgg:
    """``df.groupby(keys)[column].agg()`` — one aggregated value per group.

    Yields a frame of ``[*keys, column]``, so Sort/Head/Project steps may
    follow it (e.g. "which host had the highest mean CPU" sorts the
    grouped result and takes head(1)).
    """

    keys: tuple[str, ...]
    column: str
    agg: str


@dataclass(frozen=True)
class Agg:
    """Whole-column scalar aggregation: ``df["col"].mean()``."""

    column: str
    agg: str


@dataclass(frozen=True)
class Unique:
    """``df["col"].unique()`` — distinct non-null values."""

    column: str


@dataclass(frozen=True)
class DropDuplicates:
    subset: tuple[str, ...] = ()


@dataclass(frozen=True)
class RowCount:
    """``len(df...)`` — row count of the piped frame."""


Step = Union[
    Filter, Project, Sort, Head, Tail, Skip, GroupAgg, Agg, Unique,
    DropDuplicates, RowCount,
]

#: Steps that terminate a pipeline (their output is no longer a frame).
#: GroupAgg is NOT terminal: its output is a per-group frame.
TERMINAL_STEPS = (Agg, Unique, RowCount)

#: Steps that characterise a query's analytical core for comparison.
ANALYTICAL_STEPS = (GroupAgg, Agg, Unique, RowCount)


@dataclass(frozen=True)
class Pipeline:
    """An ordered sequence of steps applied to ``df``."""

    steps: tuple[Step, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for i, step in enumerate(self.steps[:-1]):
            if isinstance(step, TERMINAL_STEPS):
                raise ValueError(
                    f"terminal step {type(step).__name__} at position {i} "
                    "must be last in the pipeline"
                )

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    # -- introspection helpers used by compare/judges ------------------------
    def filters(self) -> list[Filter]:
        return [s for s in self.steps if isinstance(s, Filter)]

    def terminal(self) -> Step | None:
        """The analytical core step (last GroupAgg/Agg/Unique/RowCount)."""
        for step in reversed(self.steps):
            if isinstance(step, ANALYTICAL_STEPS):
                return step
        return None

    def sort(self) -> Sort | None:
        for s in self.steps:
            if isinstance(s, Sort):
                return s
        return None

    def limit(self) -> Head | Tail | None:
        for s in self.steps:
            if isinstance(s, (Head, Tail)):
                return s
        return None

    def projection(self) -> Project | None:
        for s in self.steps:
            if isinstance(s, Project):
                return s
        return None

    def fields_used(self) -> set[str]:
        """Every column name the pipeline touches."""
        out: set[str] = set()
        for s in self.steps:
            if isinstance(s, Filter):
                out |= predicate_fields(s.predicate)
            elif isinstance(s, Project):
                out |= set(s.columns)
            elif isinstance(s, Sort):
                out |= set(s.keys)
            elif isinstance(s, GroupAgg):
                out |= set(s.keys) | {s.column}
            elif isinstance(s, (Agg, Unique)):
                out.add(s.column)
            elif isinstance(s, DropDuplicates):
                out |= set(s.subset)
        return out

    def required_fields(self) -> set[str] | None:
        """Columns the *source* frame must provide, or ``None`` for all.

        A backward pass over the steps: each step's referenced columns
        are added to the need-set, and steps that *replace* the frame's
        column space (``Project``, ``GroupAgg``, terminals) reset it to
        exactly what they consume.  ``None`` means the final result
        exposes whatever columns the source has (no projection narrows
        it), so nothing can be pruned.  Used by projection pushdown:
        shards may drop any column outside this set without changing
        the pipeline's observable behaviour.
        """
        need: set[str] | None = None  # None = every source column
        for s in reversed(self.steps):
            if isinstance(s, Filter):
                if need is not None:
                    need |= predicate_fields(s.predicate)
            elif isinstance(s, Sort):
                if need is not None:
                    need |= set(s.keys)
            elif isinstance(s, Project):
                need = set(s.columns)
            elif isinstance(s, GroupAgg):
                need = set(s.keys) | {s.column}
            elif isinstance(s, (Agg, Unique)):
                need = {s.column}
            elif isinstance(s, RowCount):
                need = set()
            elif isinstance(s, DropDuplicates):
                if not s.subset:
                    need = None  # dedup over all columns: nothing prunable
                elif need is not None:
                    need |= set(s.subset)
            # Head/Tail/Skip reference no columns
        return need

    def combined_predicate_normal_form(self) -> frozenset:
        """All filters folded together, order-insensitively."""
        parts: frozenset = frozenset()
        for f in self.filters():
            parts |= normalize_predicate(f.predicate)
        return parts

    def describe(self) -> str:
        """One-line structural summary (used in logs and judge feedback)."""
        bits = []
        for s in self.steps:
            name = type(s).__name__
            if isinstance(s, Filter):
                bits.append(f"filter[{len(conjuncts(s.predicate))} conj]")
            elif isinstance(s, GroupAgg):
                bits.append(f"groupby({','.join(s.keys)}).{s.agg}({s.column})")
            elif isinstance(s, Agg):
                bits.append(f"{s.agg}({s.column})")
            elif isinstance(s, Sort):
                bits.append(f"sort({','.join(s.keys)})")
            elif isinstance(s, (Head, Tail, Skip)):
                bits.append(f"{name.lower()}({s.n})")
            else:
                bits.append(name.lower())
        return " -> ".join(bits) if bits else "identity"
