"""Versioned query-result cache for interactive serving.

Interactive provenance analysis is extremely repetitive: many sessions
ask the same handful of questions ("how many tasks failed?", "average
duration per activity") against a store that only changes when new
provenance arrives.  :class:`QueryCache` memoises query results keyed on
``(normalized query key, store version)``:

* the **key** canonicalises the query — a parsed query-IR
  :class:`~repro.query.ast.Pipeline` (frozen dataclasses, hashes
  structurally) or a Mongo-style filter document via
  :func:`canonical_filter_key` — so textual re-phrasings that parse to
  the same IR share one entry;
* the **version** is the storage backend's monotonic
  :meth:`~repro.storage.backend.StorageBackend.version` stamp.  New
  provenance bumps it, so every entry cached before the write misses
  from then on — invalidation is free and exact, with no TTLs and no
  write hooks.

Usage discipline (what makes this race-free against concurrent
writers): read ``store.version()`` **before** executing the query and
store the result under that pre-read stamp.  A write that lands during
execution bumps the version, so the (possibly torn) result is cached
under a stamp that can never match again — stale entries are
unreachable by construction, at worst a superfluous re-execution.

The cache is shared infrastructure (one per served store, many
sessions), so it is thread-safe and LRU-bounded.

Restart semantics: the same discipline survives crashes.  A persistent
backend (:class:`repro.storage.DurableStore`) restores ``version()``
monotonically across reopen and bumps it once per recovery, so an entry
cached against the pre-crash store can never match the post-recovery
version — a cache object outliving its store (same process, reopened
backend) re-executes instead of serving pre-crash results
(``tests/api/test_restart_semantics.py`` holds it to that).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Mapping

__all__ = ["QueryCache", "canonical_filter_key", "MISS"]


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache miss>"


MISS = _Miss()


def canonical_filter_key(filt: Mapping[str, Any] | None) -> Hashable | None:
    """Order-insensitive hashable form of a Mongo-style filter document.

    ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}`` collapse to the same
    key; ``$and``/``$or`` argument *order* is preserved (it is
    semantically order-free but normalising it is not worth the cost).
    Returns ``None`` for filters containing unhashable leaf values
    (regex patterns compare by identity, sets are unordered) — such
    queries simply bypass the cache.
    """
    try:
        return _canon(dict(filt) if filt else {})
    except TypeError:
        return None


def _canon(value: Any) -> Hashable:
    if isinstance(value, Mapping):
        return ("d",) + tuple(
            sorted(((str(k), _canon(v)) for k, v in value.items()))
        )
    if isinstance(value, (list, tuple)):
        return ("l",) + tuple(_canon(v) for v in value)
    hash(value)  # raises TypeError for sets, patterns, arrays, ...
    # type-tag scalars so 1, 1.0 and True (equal, same hash) cannot
    # collide into one entry while rendering different results
    return (type(value).__name__, value)


class QueryCache:
    """Thread-safe LRU cache of query results keyed by (key, version).

    One instance fronts one store.  ``get``/``put`` take the store
    version explicitly so the caller controls the read-before-execute
    ordering (see module docstring).  A stale entry (same key, older
    version) is evicted on sight and counted as an invalidation.
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    # -- core ------------------------------------------------------------------
    def get(self, key: Hashable | None, version: int) -> Any:
        """Cached value for ``key`` at ``version``, or :data:`MISS`."""
        if key is None:
            return MISS
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == version:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry[1]
            if entry is not None:
                # new provenance arrived since this was cached
                del self._entries[key]
                self._invalidations += 1
            self._misses += 1
            return MISS

    def peek(self, key: Hashable | None, version: int) -> bool:
        """Whether ``key`` is cached at ``version`` — no counter or LRU
        mutation, so explain-style introspection doesn't distort stats."""
        if key is None:
            return False
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry[0] == version

    def put(self, key: Hashable | None, version: int, value: Any) -> None:
        if key is None:
            return
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing[0] > version:
                # a fresher result landed while we executed; keep it
                return
            self._entries[key] = (version, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        """Snapshot: hits, misses, hit rate, invalidations, size."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "invalidations": self._invalidations,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }
