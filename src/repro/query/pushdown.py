"""Predicate pushdown: query-IR pipelines -> Mongo-style prefilters.

The agent's post-hoc database tool executes generated pipelines over a
DataFrame built from *every* stored document.  Most generated queries
start with row filters, and any
:class:`~repro.storage.backend.StorageBackend` can answer exactly those
predicates through its indexes — so the leading filters are translated
into a Mongo-style filter document and pushed down into the backend's
``find`` before the frame is built.  Against a sharded store the same
prefilter doubles as the shard router: an equality on ``workflow_id``
sends the whole pipeline to a single shard.

Correctness rules (see ``docs/query_surface.md``):

* Only filters in the pipeline *prefix* are pushed — translation stops
  at the first step that changes row membership semantics (``Head``,
  ``Tail``, ``GroupAgg``, aggregations, ...).  ``Sort`` and ``Project``
  are membership-neutral and do not stop the walk.
* Only conjuncts with a faithful Mongo translation are pushed
  (comparisons, ``isin``, ``between``, null checks).  ``$regex``-shaped
  string predicates, OR/NOT trees, and ``None`` literals stay behind.
* The full pipeline still executes unchanged over the reduced frame;
  pushed predicates are re-applied there, so pushdown may only ever
  *shrink* the scanned document set, never change the result.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.query import ast as q

__all__ = ["pipeline_prefilter", "merge_filters"]

#: Steps that do not change which rows exist; the pushdown walk may pass
#: them.  Anything else ends the pushable prefix.
_MEMBERSHIP_NEUTRAL = (q.Filter, q.Sort, q.Project)

_COMPARE_TO_MONGO = {
    "==": "$eq",
    "!=": "$ne",
    "<": "$lt",
    "<=": "$lte",
    ">": "$gt",
    ">=": "$gte",
}


_FLOAT_EXACT_MAX = 2**53  # ints beyond this lose precision as float64


def _operator_shaped(v: Any) -> bool:
    """True when a literal would be misread as an operator document.

    ``{"f": {"$gt": 5}}`` is a range clause, so an equality against a
    mapping that *contains* ``$``-keys must keep the explicit ``$eq``
    wrapper to stay a literal comparison.
    """
    return isinstance(v, Mapping) and any(
        isinstance(k, str) and k.startswith("$") for k in v
    )


def _unsafe_literal(v: Any) -> bool:
    """True when the literal compares differently as doc value vs column.

    ``None`` null semantics differ between the frame engine and the
    document store, and ints at or beyond 2**53 are exact in the store
    but rounded in a float64 column (2**53 + 1 rounds onto 2**53), so
    either could prune rows the frame predicate would keep.
    """
    return v is None or (
        isinstance(v, int) and not isinstance(v, bool) and abs(v) >= _FLOAT_EXACT_MAX
    )


def _conjunct_clause(pred: q.Predicate) -> dict[str, Any] | None:
    """Translate one AND-conjunct into a Mongo clause, or None to skip."""
    if isinstance(pred, q.Compare):
        if _unsafe_literal(pred.value):
            return None
        if pred.op == "==" and not _operator_shaped(pred.value):
            # bare form: same semantics as {"$eq": v} but the cheapest
            # clause for the store to verify per candidate document
            return {pred.field.name: pred.value}
        return {pred.field.name: {_COMPARE_TO_MONGO[pred.op]: pred.value}}
    if isinstance(pred, q.IsIn):
        if any(_unsafe_literal(v) for v in pred.values):
            return None
        return {pred.field.name: {"$in": list(pred.values)}}
    if isinstance(pred, q.Between):
        if _unsafe_literal(pred.low) or _unsafe_literal(pred.high):
            return None
        return {pred.field.name: {"$gte": pred.low, "$lte": pred.high}}
    if isinstance(pred, q.NotNull):
        return {pred.field.name: {"$ne": None}}
    # StrContains / StrStartsWith / StrEndsWith / IsNull / Or / Not:
    # either no faithful document-store translation or not selective
    # enough to be worth pushing — the executor re-applies them anyway.
    return None


def _contains_neq(pred: q.Predicate) -> bool:
    if isinstance(pred, q.Compare):
        return pred.op == "!="
    if isinstance(pred, (q.And, q.Or)):
        return _contains_neq(pred.left) or _contains_neq(pred.right)
    if isinstance(pred, q.Not):
        return _contains_neq(pred.operand)
    return False


def pipeline_prefilter(pipeline: q.Pipeline) -> dict[str, Any]:
    """Mongo-style filter document implied by a pipeline's leading filters.

    Returns ``{}`` when nothing can be pushed down.  The returned filter
    is guaranteed to be a *superset* predicate: every row the pipeline
    would keep satisfies it.

    Pipelines containing any ``!=`` comparison are never pushed:
    pruning documents can flip a column's inferred dtype (object vs
    float), and ``!=`` is the one predicate whose missing-value rows
    evaluate differently under each (NaN != x is kept, None is dropped),
    so the same query could return different rows.
    """
    if any(
        _contains_neq(step.predicate)
        for step in pipeline.steps
        if isinstance(step, q.Filter)
    ):
        return {}
    clauses: list[dict[str, Any]] = []
    for step in pipeline.steps:
        if not isinstance(step, _MEMBERSHIP_NEUTRAL):
            break
        if isinstance(step, q.Filter):
            for conj in q.conjuncts(step.predicate):
                clause = _conjunct_clause(conj)
                if clause:
                    clauses.append(clause)
    if not clauses:
        return {}
    if len(clauses) == 1:
        return clauses[0]
    return {"$and": clauses}


def merge_filters(
    base: Mapping[str, Any] | None, extra: Mapping[str, Any] | None
) -> dict[str, Any]:
    """AND-combine two Mongo-style filter documents.

    A filter document is already a conjunction of its entries, so when
    the two sides constrain disjoint keys they merge *flat* instead of
    under ``$and``.  The flat form is cheaper to verify per candidate
    document (one clause walk instead of a nested conjunction per doc),
    which matters because every pushed-down pipeline/sql query pays this
    on its ``find``.  Colliding keys — including both sides carrying a
    ``$and``/``$or`` — fall back to the nested form, which preserves
    both constraints.
    """
    base = dict(base or {})
    extra = dict(extra or {})
    if not base:
        return extra
    if not extra:
        return base
    if base.keys() & extra.keys():
        return {"$and": [base, extra]}
    return {**base, **extra}
