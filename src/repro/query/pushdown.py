"""Predicate pushdown: query-IR pipelines -> Mongo-style prefilters.

The agent's post-hoc database tool executes generated pipelines over a
DataFrame built from *every* stored document.  Most generated queries
start with row filters, and any
:class:`~repro.storage.backend.StorageBackend` can answer exactly those
predicates through its indexes — so the leading filters are translated
into a Mongo-style filter document and pushed down into the backend's
``find`` before the frame is built.  Against a sharded store the same
prefilter doubles as the shard router: an equality on ``workflow_id``
sends the whole pipeline to a single shard.

Correctness rules (see ``docs/query_surface.md``):

* Only filters in the pipeline *prefix* are pushed — translation stops
  at the first step that changes row membership semantics (``Head``,
  ``Tail``, ``GroupAgg``, aggregations, ...).  ``Sort`` and ``Project``
  are membership-neutral and do not stop the walk.
* Only conjuncts with a faithful Mongo translation are pushed
  (comparisons, ``isin``, ``between``, null checks).  ``$regex``-shaped
  string predicates, OR/NOT trees, and ``None`` literals stay behind.
* The full pipeline still executes unchanged over the reduced frame;
  pushed predicates are re-applied there, so pushdown may only ever
  *shrink* the scanned document set, never change the result.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.query import ast as q

__all__ = ["pipeline_prefilter", "merge_filters", "plan_pushdown"]

#: Steps that do not change which rows exist; the pushdown walk may pass
#: them.  Anything else ends the pushable prefix.
_MEMBERSHIP_NEUTRAL = (q.Filter, q.Sort, q.Project)

_COMPARE_TO_MONGO = {
    "==": "$eq",
    "!=": "$ne",
    "<": "$lt",
    "<=": "$lte",
    ">": "$gt",
    ">=": "$gte",
}


_FLOAT_EXACT_MAX = 2**53  # ints beyond this lose precision as float64


def _operator_shaped(v: Any) -> bool:
    """True when a literal would be misread as an operator document.

    ``{"f": {"$gt": 5}}`` is a range clause, so an equality against a
    mapping that *contains* ``$``-keys must keep the explicit ``$eq``
    wrapper to stay a literal comparison.
    """
    return isinstance(v, Mapping) and any(
        isinstance(k, str) and k.startswith("$") for k in v
    )


def _unsafe_literal(v: Any) -> bool:
    """True when the literal compares differently as doc value vs column.

    ``None`` null semantics differ between the frame engine and the
    document store, and ints at or beyond 2**53 are exact in the store
    but rounded in a float64 column (2**53 + 1 rounds onto 2**53), so
    either could prune rows the frame predicate would keep.
    """
    return v is None or (
        isinstance(v, int) and not isinstance(v, bool) and abs(v) >= _FLOAT_EXACT_MAX
    )


def _conjunct_clause(pred: q.Predicate) -> dict[str, Any] | None:
    """Translate one AND-conjunct into a Mongo clause, or None to skip."""
    if isinstance(pred, q.Compare):
        if _unsafe_literal(pred.value):
            return None
        if pred.op == "==" and not _operator_shaped(pred.value):
            # bare form: same semantics as {"$eq": v} but the cheapest
            # clause for the store to verify per candidate document
            return {pred.field.name: pred.value}
        return {pred.field.name: {_COMPARE_TO_MONGO[pred.op]: pred.value}}
    if isinstance(pred, q.IsIn):
        if any(_unsafe_literal(v) for v in pred.values):
            return None
        return {pred.field.name: {"$in": list(pred.values)}}
    if isinstance(pred, q.Between):
        if _unsafe_literal(pred.low) or _unsafe_literal(pred.high):
            return None
        return {pred.field.name: {"$gte": pred.low, "$lte": pred.high}}
    if isinstance(pred, q.NotNull):
        return {pred.field.name: {"$ne": None}}
    # StrContains / StrStartsWith / StrEndsWith / IsNull / Or / Not:
    # either no faithful document-store translation or not selective
    # enough to be worth pushing — the executor re-applies them anyway.
    return None


def _contains_neq(pred: q.Predicate) -> bool:
    if isinstance(pred, q.Compare):
        return pred.op == "!="
    if isinstance(pred, (q.And, q.Or)):
        return _contains_neq(pred.left) or _contains_neq(pred.right)
    if isinstance(pred, q.Not):
        return _contains_neq(pred.operand)
    return False


def pipeline_prefilter(pipeline: q.Pipeline) -> dict[str, Any]:
    """Mongo-style filter document implied by a pipeline's leading filters.

    Returns ``{}`` when nothing can be pushed down.  The returned filter
    is guaranteed to be a *superset* predicate: every row the pipeline
    would keep satisfies it.

    Pipelines containing any ``!=`` comparison are never pushed:
    pruning documents can flip a column's inferred dtype (object vs
    float), and ``!=`` is the one predicate whose missing-value rows
    evaluate differently under each (NaN != x is kept, None is dropped),
    so the same query could return different rows.
    """
    if any(
        _contains_neq(step.predicate)
        for step in pipeline.steps
        if isinstance(step, q.Filter)
    ):
        return {}
    clauses: list[dict[str, Any]] = []
    for step in pipeline.steps:
        if not isinstance(step, _MEMBERSHIP_NEUTRAL):
            break
        if isinstance(step, q.Filter):
            for conj in q.conjuncts(step.predicate):
                clause = _conjunct_clause(conj)
                if clause:
                    clauses.append(clause)
    if not clauses:
        return {}
    if len(clauses) == 1:
        return clauses[0]
    return {"$and": clauses}


def merge_filters(
    base: Mapping[str, Any] | None, extra: Mapping[str, Any] | None
) -> dict[str, Any]:
    """AND-combine two Mongo-style filter documents.

    A filter document is already a conjunction of its entries, so when
    the two sides constrain disjoint keys they merge *flat* instead of
    under ``$and``.  The flat form is cheaper to verify per candidate
    document (one clause walk instead of a nested conjunction per doc),
    which matters because every pushed-down pipeline/sql query pays this
    on its ``find``.  Colliding keys — including both sides carrying a
    ``$and``/``$or`` — fall back to the nested form, which preserves
    both constraints.
    """
    base = dict(base if base is not None else {})
    extra = dict(extra if extra is not None else {})
    if not base:
        return extra
    if not extra:
        return base
    if base.keys() & extra.keys():
        return {"$and": [base, extra]}
    return {**base, **extra}


# ---------------------------------------------------------------------------
# Operator pushdown planning
# ---------------------------------------------------------------------------
#
# Beyond the prefilter, three pipeline shapes can run (mostly) shard-side
# and ship partials instead of documents:
#
# * ``partial``  — ``(Filter|Project|Sort)* (RowCount|Agg|Unique|GroupAgg)
#   suffix*``: shards fold the terminal into a partial state (count,
#   exact sum partials, min/max, seq-stamped first/last, per-group
#   states) and the coordinator merges them exactly;
# * ``topk``     — ``(Filter|Project|Sort)* Skip* (Head|Tail) suffix*``:
#   shards replay filters+sorts and return only their local top
#   ``sum(skips)+n`` rows; the coordinator k-way-merges candidates by
#   global sequence and re-runs the full pipeline over them;
# * ``project``  — anything with a non-trivial ``required_fields()``:
#   shards strip documents to the columns the pipeline can observe.
#
# Planning is purely structural; all data-dependent hazards (dtype
# divergence, 2**53 ints, missing columns) are guarded at combine time
# by :func:`repro.query.partial.combine_partials`, which falls back to
# the classic path rather than risk a divergent answer.

from repro.query.partial import (  # noqa: E402  (import cycle: none — partial never imports pushdown)
    DECOMPOSABLE_AGGS,
    ORDER_INSENSITIVE_AGGS,
    PushPlan,
    step_label,
)

_PREFIX_STEPS = (q.Filter, q.Project, q.Sort)


def _statically_resolvable(pipeline: q.Pipeline) -> bool:
    """False when a step references a column an earlier step removed.

    Those pipelines raise on the classic path; the shard-side plans
    would silently skip the offending step, so they are never planned.
    """
    avail: set[str] | None = None  # None = unknown source columns
    for s in pipeline.steps:
        if isinstance(s, q.Filter):
            refs = q.predicate_fields(s.predicate)
        elif isinstance(s, q.Sort):
            refs = set(s.keys)
        elif isinstance(s, q.Project):
            refs = set(s.columns)
        elif isinstance(s, q.GroupAgg):
            refs = set(s.keys) | {s.column}
        elif isinstance(s, (q.Agg, q.Unique)):
            refs = {s.column}
        elif isinstance(s, q.DropDuplicates):
            refs = set(s.subset)
        else:
            refs = set()
        if avail is not None and not refs <= avail:
            return False
        if isinstance(s, q.Project):
            avail = set(s.columns)
        elif isinstance(s, q.GroupAgg):
            avail = set(s.keys) | {s.column}
    return True


def _plan_partial(
    pipeline: q.Pipeline, filt: dict[str, Any]
) -> PushPlan | None:
    steps = pipeline.steps
    term_at = next(
        (
            i
            for i, s in enumerate(steps)
            if isinstance(s, (q.RowCount, q.Agg, q.Unique, q.GroupAgg))
        ),
        None,
    )
    if term_at is None:
        return None
    term = steps[term_at]
    prefix, suffix = steps[:term_at], steps[term_at + 1 :]
    if not all(isinstance(s, _PREFIX_STEPS) for s in prefix):
        return None
    # a Sort in the prefix is skippable only when the terminal ignores
    # row order entirely (Unique, GroupAgg emission order, and
    # first/last are all order-sensitive)
    sorts = [s for s in prefix if isinstance(s, q.Sort)]
    if sorts and not (
        isinstance(term, q.RowCount)
        or (isinstance(term, q.Agg) and term.agg in ORDER_INSENSITIVE_AGGS)
    ):
        return None
    agg = getattr(term, "agg", None)
    if agg is not None and agg not in DECOMPOSABLE_AGGS:
        return None

    filters = [s for s in prefix if isinstance(s, q.Filter)]
    filter_fields: set[str] = set()
    for f in filters:
        filter_fields |= q.predicate_fields(f.predicate)
    if isinstance(term, q.GroupAgg):
        term_fields = set(term.keys) | {term.column}
        guard_types = tuple(sorted(term_fields))
    elif isinstance(term, (q.Agg, q.Unique)):
        term_fields = {term.column}
        guard_types = (term.column,)
    else:
        term_fields, guard_types = set(), ()
    # columns only touched by steps that are *skipped* shard-side:
    # their absence must still raise via the classic path
    present: set[str] = {k for s in sorts for k in s.keys}
    for s in prefix:
        if isinstance(s, q.Project):
            present |= set(s.columns)
    local_columns = tuple(sorted(filter_fields | term_fields))
    fields = tuple(sorted(filter_fields | term_fields | present))

    pushed = tuple(step_label(s) for s in filters) + (
        f"partial:{step_label(term)}",
    )
    coordinator = (f"merge:{step_label(term)}",) + tuple(
        step_label(s) for s in suffix
    )
    return PushPlan(
        mode="partial",
        filter=filt,
        pipeline=pipeline,
        fields=fields,
        local_columns=local_columns,
        local_steps=tuple(filters),
        terminal=term,
        suffix=tuple(suffix),
        guard_types=guard_types,
        filter_fields=tuple(sorted(filter_fields)),
        present_fields=tuple(sorted(present - filter_fields - term_fields)),
        group_fields=tuple(term.keys) if isinstance(term, q.GroupAgg) else (),
        value_field=getattr(term, "column", None),
        agg=agg,
        pushed_steps=pushed,
        coordinator_steps=coordinator,
    )


def _plan_topk(pipeline: q.Pipeline, filt: dict[str, Any]) -> PushPlan | None:
    steps = pipeline.steps
    i = 0
    while i < len(steps) and isinstance(steps[i], _PREFIX_STEPS):
        i += 1
    skip_total = 0
    j = i
    while j < len(steps) and isinstance(steps[j], q.Skip):
        skip_total += max(0, steps[j].n)
        j += 1
    if j >= len(steps):
        return None
    limit = steps[j]
    if isinstance(limit, q.Head):
        fetch = ("head", skip_total + max(0, limit.n))
    elif isinstance(limit, q.Tail) and j == i:
        # Skip-then-Tail needs the global row count to resolve; not pushed
        fetch = ("tail", max(0, limit.n))
    else:
        return None
    if not any(isinstance(s, q.Sort) for s in steps[:i]):
        # unsorted Head/Tail is pure pagination — the project plan (or
        # classic path) handles it; shipping per-shard candidates would
        # still be correct but saves nothing over projection
        return None

    prefix = steps[:i]
    local_steps = tuple(
        s for s in prefix if isinstance(s, (q.Filter, q.Sort))
    )
    filter_fields: set[str] = set()
    sort_fields: set[str] = set()
    for s in prefix:
        if isinstance(s, q.Filter):
            filter_fields |= q.predicate_fields(s.predicate)
        elif isinstance(s, q.Sort):
            sort_fields |= set(s.keys)
    req = pipeline.required_fields()
    fields = tuple(sorted(req)) if req else None
    present: set[str] = set()
    for s in prefix:
        if isinstance(s, q.Project):
            present |= set(s.columns)

    pushed = tuple(step_label(s) for s in local_steps) + (
        f"local-{fetch[0]}({fetch[1]})",
    )
    coordinator = ("k-way-merge",) + tuple(step_label(s) for s in steps)
    return PushPlan(
        mode="topk",
        filter=filt,
        pipeline=pipeline,
        fields=fields,
        local_columns=tuple(sorted(filter_fields | sort_fields)),
        local_steps=local_steps,
        fetch=fetch,
        guard_types=tuple(sorted(sort_fields)),
        filter_fields=tuple(sorted(filter_fields)),
        present_fields=tuple(
            sorted(present - filter_fields - sort_fields)
        ),
        sort_fields=tuple(sorted(sort_fields)),
        pushed_steps=pushed,
        coordinator_steps=coordinator,
    )


def _plan_project(
    pipeline: q.Pipeline, filt: dict[str, Any]
) -> PushPlan | None:
    req = pipeline.required_fields()
    if not req:
        # None: every source column is observable; empty set would ship
        # zero-column documents that cannot rebuild a row count
        return None
    fields = tuple(sorted(req))
    return PushPlan(
        mode="project",
        filter=filt,
        pipeline=pipeline,
        fields=fields,
        pushed_steps=(f"project[{len(fields)} cols]",),
        coordinator_steps=tuple(step_label(s) for s in pipeline.steps),
    )


def plan_pushdown(
    pipeline: q.Pipeline, base_filter: Mapping[str, Any] | None = None
) -> PushPlan | None:
    """Choose the best shard-side plan for a pipeline, or ``None``.

    Preference order: fold to partials (smallest payload), then local
    top-k (k docs per shard), then projection (all docs, fewer
    columns).  ``None`` means the classic gather-everything path is the
    only correct strategy; callers must also treat it as the universal
    fallback whenever a returned plan's combine refuses.
    """
    if not pipeline.steps or not _statically_resolvable(pipeline):
        return None
    filt = merge_filters(base_filter, pipeline_prefilter(pipeline))
    return (
        _plan_partial(pipeline, filt)
        or _plan_topk(pipeline, filt)
        or _plan_project(pipeline, filt)
    )
