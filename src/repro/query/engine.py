"""Shared cached-pipeline execution core.

Three surfaces execute query-IR pipelines over the historical store:
the gateway's ``pipeline`` dialect, its ``sql`` dialect (which compiles
to the same IR), and the agent's NL database tool.  All of them must
observe the same discipline — store version read *before* the store
read, cache key shape ``("db_query", base_filter_key, pipeline)``,
prefilter pushdown with a full-frame retry, list results copied on both
sides of the cache — or they stop sharing entries and the versioned
invalidation guarantees silently erode.  :func:`run_cached_pipeline` is
that discipline in one place.

Not exported from :mod:`repro.query`: this module reaches into
:mod:`repro.provenance` and is serving infrastructure, not part of the
IR itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping

from repro.query import ast as q
from repro.query.cache import MISS, QueryCache, canonical_filter_key
from repro.query.executor import execute_query
from repro.query.partial import combine_partials
from repro.query.pushdown import merge_filters, pipeline_prefilter, plan_pushdown

__all__ = [
    "PipelineRun",
    "run_cached_pipeline",
    "pipeline_cache_key",
    "describe_result",
]


def describe_result(result: Any) -> str:
    """One-line human summary of an executed pipeline's result."""
    from repro.dataframe import DataFrame

    if isinstance(result, DataFrame):
        return f"{len(result)} row(s), columns: {', '.join(result.columns)}"
    if isinstance(result, list):
        return f"{len(result)} distinct value(s)"
    return f"result: {result}"


def pipeline_cache_key(
    base_filter_key: Hashable | None, pipeline: q.Pipeline,
) -> Hashable | None:
    """The shared cache key, or ``None`` when the query must bypass.

    The IR is frozen but its literals come from model or client input
    and may be unhashable (e.g. list comparisons); such queries bypass
    the cache instead of failing.
    """
    if base_filter_key is None:
        return None
    key = ("db_query", base_filter_key, pipeline)
    try:
        hash(key)
    except TypeError:
        return None
    return key


@dataclass(frozen=True)
class PipelineRun:
    """One executed pipeline: what happened and under which store stamp."""

    summary: str
    result: Any
    cache_state: str  # "hit" | "miss"
    version: int | None  # store version the result is pinned to
    #: operator-pushdown decision for this execution: ``None`` when the
    #: backend has no ``execute_partial`` / the query hit the cache /
    #: pushdown was disabled; otherwise ``mode``/``pushed_steps``/
    #: ``coordinator_steps`` plus merge stats, with a ``fallback``
    #: reason when the classic path had to answer instead
    pushdown: dict[str, Any] | None = None


def run_cached_pipeline(
    query_api: Any,
    pipeline: q.Pipeline,
    *,
    base_filter: Mapping[str, Any],
    base_filter_key: Hashable | None = None,
    cache: QueryCache | None = None,
    pushdown: bool = True,
    operator_pushdown: bool = True,
) -> PipelineRun:
    """Execute ``pipeline`` over the store with caching and pushdown.

    ``pushdown`` controls predicate pushdown (prefilter + shard
    routing); ``operator_pushdown`` additionally lets backends exposing
    ``execute_partial`` fold terminal aggregations, top-k selection,
    and column projection shard-side, with a guarded fallback to the
    classic gather-everything path whenever the merge cannot reproduce
    the single-store answer exactly.

    Raises :class:`~repro.errors.QueryExecutionError` on failure (never
    caches one).
    """
    from repro.provenance.query_api import store_version

    if cache is None:
        cache = query_api.cache
    if base_filter_key is None:
        base_filter_key = canonical_filter_key(base_filter)
    # version BEFORE the read: a write racing this call strands the
    # entry under a stamp that never matches again
    version = store_version(query_api.database)
    key = pipeline_cache_key(base_filter_key, pipeline) \
        if version is not None else None
    if key is not None:
        cached = cache.get(key, version)
        if cached is not MISS:
            summary, result = cached
            # copy list results so a caller mutating its answer cannot
            # poison later hits (frames/scalars are immutable)
            result = list(result) if isinstance(result, list) else result
            return PipelineRun(summary, result, "hit", version)
    push_info: dict[str, Any] | None = None
    if pushdown and operator_pushdown:
        runner = getattr(query_api.database, "execute_partial", None)
        plan = plan_pushdown(pipeline, base_filter) if runner else None
        if plan is not None:
            push_info = {
                "mode": plan.mode,
                "pushed_steps": list(plan.pushed_steps),
                "coordinator_steps": list(plan.coordinator_steps),
            }
            try:
                combined = combine_partials(plan, runner(plan))
            except Exception:  # noqa: BLE001 - classic path reproduces errors
                combined, push_info["fallback"] = None, "scatter failed"
            if combined is not None and combined.ok:
                result = combined.result
                push_info.update(combined.stats)
                summary = describe_result(result)
                if key is not None:
                    stored = list(result) if isinstance(result, list) else result
                    cache.put(key, version, (summary, stored))
                return PipelineRun(summary, result, "miss", version, push_info)
            if combined is not None:
                push_info["fallback"] = combined.reason or "unsupported"  # provlint: disable=falsy-or-default - empty reason means unspecified
    prefilter = pipeline_prefilter(pipeline) if pushdown else {}
    frame = query_api.to_frame(merge_filters(base_filter, prefilter))
    from repro.errors import QueryExecutionError

    try:
        result = execute_query(pipeline, frame)
    except QueryExecutionError:
        if not prefilter:
            raise
        # the reduced frame may lack columns that only appear on
        # excluded documents; retry over the full document set so
        # pushdown never changes observable behaviour
        frame = query_api.to_frame(dict(base_filter))
        result = execute_query(pipeline, frame)
    summary = describe_result(result)
    if key is not None:
        stored = list(result) if isinstance(result, list) else result
        cache.put(key, version, (summary, stored))
    return PipelineRun(summary, result, "miss", version, push_info)
