"""Parser: pandas-like query code -> :class:`~repro.query.ast.Pipeline`.

A hand-written tokeniser + recursive-descent parser over the surface
syntax the agent (and the simulated LLMs) emit.  Anything outside the
grammar raises :class:`~repro.errors.QuerySyntaxError` with the offending
position — the judge treats that as a syntax failure, exactly like the
paper's rule for invalid generated code.

Supported grammar (informally)::

    query    := "len(" chain ")" | chain
    chain    := "df" postfix*
    postfix  := "[" ( STRING | strlist | predicate ) "]"
              | ".sort_values(" sortargs ")"
              | ".head(" INT ")" | ".tail(" INT ")" | ".iloc[" INT ":]"
              | ".groupby(" keys ")" "[" STRING "]" "." AGG "()"
              | ".drop_duplicates(" ["subset=" strlist] ")"
              | ".nlargest(" INT "," STRING ")"     (desugars to sort+head)
              | ".nsmallest(" INT "," STRING ")"
              | "." AGG "()"        (after a column select)
              | ".unique()"         (after a column select)
    predicate  := orexpr ; orexpr := andexpr ("|" andexpr)* ; ...
    comparison := "df[" STRING "]" ( OP literal | ".str.contains(...)"
                 | ".isin([...])" | ".between(a, b)" | ".notna()" | ".isna()"
                 | ".str.startswith(...)" | ".str.endswith(...)" )
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import QuerySyntaxError
from repro.query import ast as q
from repro.dataframe.aggregations import is_known as is_known_agg

__all__ = ["parse_query", "tokenize"]


# ---------------------------------------------------------------------------
# Tokeniser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>-?\d+\.\d*(?:[eE][+-]?\d+)?|-?\.\d+|-?\d+(?:[eE][+-]?\d+)?)
  | (?P<OP>==|!=|<=|>=|<|>)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<PUNCT>[()\[\].,&|~=:])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: int


def tokenize(code: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(code)
    while i < n:
        m = _TOKEN_RE.match(code, i)
        if not m:
            raise QuerySyntaxError(f"unexpected character {code[i]!r} at position {i}")
        kind = m.lastgroup if m.lastgroup is not None else ""
        text = m.group()
        if kind != "WS":
            tokens.append(Token(kind, text, i))
        i = m.end()
    return tokens


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, code: str):
        self.code = code
        self.tokens = tokenize(code)
        self.i = 0

    # -- token utilities -----------------------------------------------------
    def peek(self, offset: int = 0) -> Token | None:
        j = self.i + offset
        return self.tokens[j] if j < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise QuerySyntaxError(f"unexpected end of query: {self.code!r}")
        self.i += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise QuerySyntaxError(
                f"expected {text!r} but found {tok.text!r} at position {tok.pos}"
            )
        return tok

    def at(self, text: str, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok is not None and tok.text == text

    def at_kind(self, kind: str, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok is not None and tok.kind == kind

    # -- entry ------------------------------------------------------------------
    def parse(self) -> q.Pipeline:
        row_count = False
        if self.at("len"):
            self.next()
            self.expect("(")
            steps = self.parse_chain()
            self.expect(")")
            row_count = True
        else:
            steps = self.parse_chain()
        if self.peek() is not None:
            tok = self.peek()
            raise QuerySyntaxError(
                f"trailing content at position {tok.pos}: {tok.text!r}"
            )
        if row_count:
            if steps and isinstance(steps[-1], q.TERMINAL_STEPS):
                raise QuerySyntaxError("len() cannot wrap a scalar-producing query")
            steps = steps + [q.RowCount()]
        return q.Pipeline(tuple(steps))

    # -- chain ------------------------------------------------------------------
    def parse_chain(self) -> list[q.Step]:
        tok = self.next()
        if tok.text != "df":
            raise QuerySyntaxError(
                f"query must start with 'df', found {tok.text!r} at {tok.pos}"
            )
        steps: list[q.Step] = []
        pending_column: str | None = None  # set after df[...]["col"]

        while True:
            if self.at("["):
                if pending_column is not None:
                    raise QuerySyntaxError(
                        "cannot index again after selecting a single column"
                    )
                self.next()
                nxt = self.peek()
                if nxt is None:
                    raise QuerySyntaxError("unclosed '['")
                if nxt.kind == "STRING":
                    # single column select: terminal agg must follow
                    pending_column = _unquote(self.next().text)
                    self.expect("]")
                elif nxt.text == "[":
                    cols = self.parse_string_list()
                    self.expect("]")
                    steps.append(q.Project(tuple(cols)))
                else:
                    pred = self.parse_predicate()
                    self.expect("]")
                    steps.append(q.Filter(pred))
            elif self.at("."):
                self.next()
                name_tok = self.next()
                name = name_tok.text
                if pending_column is not None:
                    # df[...]["col"].<agg>()
                    if name == "unique":
                        self.expect("(")
                        self.expect(")")
                        steps.append(q.Unique(pending_column))
                    elif name == "agg":
                        self.expect("(")
                        agg_tok = self.next()
                        if agg_tok.kind != "STRING":
                            raise QuerySyntaxError(
                                f"agg() expects a string at {agg_tok.pos}"
                            )
                        agg = _unquote(agg_tok.text)
                        self.expect(")")
                        self._check_agg(agg, name_tok.pos)
                        steps.append(q.Agg(pending_column, agg))
                    else:
                        self.expect("(")
                        self.expect(")")
                        self._check_agg(name, name_tok.pos)
                        steps.append(q.Agg(pending_column, name))
                    pending_column = None
                elif name == "sort_values":
                    steps.append(self.parse_sort())
                elif name == "head":
                    steps.append(q.Head(self.parse_single_int()))
                elif name == "tail":
                    steps.append(q.Tail(self.parse_single_int()))
                elif name == "iloc":
                    steps.append(self.parse_iloc())
                elif name == "groupby":
                    steps.append(self.parse_groupby())
                elif name == "drop_duplicates":
                    steps.append(self.parse_drop_duplicates())
                elif name == "nlargest":
                    n, col = self.parse_n_and_column()
                    steps.append(q.Sort((col,), (False,)))
                    steps.append(q.Head(n))
                elif name == "nsmallest":
                    n, col = self.parse_n_and_column()
                    steps.append(q.Sort((col,), (True,)))
                    steps.append(q.Head(n))
                else:
                    raise QuerySyntaxError(
                        f"unknown method .{name} at position {name_tok.pos}"
                    )
            else:
                break

        if pending_column is not None:
            # bare df["col"] — treat as single-column projection
            steps.append(q.Project((pending_column,)))
        return steps

    def _check_agg(self, name: str, pos: int) -> None:
        if not is_known_agg(name):
            raise QuerySyntaxError(f"unknown aggregation .{name}() at position {pos}")

    # -- postfix helpers --------------------------------------------------------
    def parse_single_int(self) -> int:
        self.expect("(")
        tok = self.next()
        if tok.kind != "NUMBER" or "." in tok.text or "e" in tok.text.lower():
            raise QuerySyntaxError(f"expected integer at position {tok.pos}")
        self.expect(")")
        return int(tok.text)

    def parse_iloc(self) -> q.Skip:
        # only the row-skip slice form df.iloc[n:] is part of the grammar
        self.expect("[")
        tok = self.next()
        if tok.kind != "NUMBER" or "." in tok.text or "e" in tok.text.lower() \
                or tok.text.startswith("-"):
            raise QuerySyntaxError(
                f".iloc expects a non-negative integer at position {tok.pos}"
            )
        self.expect(":")
        self.expect("]")
        return q.Skip(int(tok.text))

    def parse_n_and_column(self) -> tuple[int, str]:
        self.expect("(")
        n_tok = self.next()
        if n_tok.kind != "NUMBER":
            raise QuerySyntaxError(f"expected integer at position {n_tok.pos}")
        self.expect(",")
        col_tok = self.next()
        if col_tok.kind != "STRING":
            raise QuerySyntaxError(f"expected column string at position {col_tok.pos}")
        self.expect(")")
        return int(float(n_tok.text)), _unquote(col_tok.text)

    def parse_string_list(self) -> list[str]:
        self.expect("[")
        out: list[str] = []
        if not self.at("]"):
            while True:
                tok = self.next()
                if tok.kind != "STRING":
                    raise QuerySyntaxError(
                        f"expected string in list at position {tok.pos}"
                    )
                out.append(_unquote(tok.text))
                if self.at(","):
                    self.next()
                    if self.at("]"):
                        break
                else:
                    break
        self.expect("]")
        return out

    def parse_sort(self) -> q.Sort:
        self.expect("(")
        if self.at("["):
            keys = self.parse_string_list()
        else:
            tok = self.next()
            if tok.kind != "STRING":
                raise QuerySyntaxError(f"expected sort key at position {tok.pos}")
            keys = [_unquote(tok.text)]
        ascending: list[bool] = [True] * len(keys)
        if self.at(","):
            self.next()
            kw = self.next()
            if kw.text != "ascending":
                raise QuerySyntaxError(
                    f"expected 'ascending=' at position {kw.pos}, found {kw.text!r}"
                )
            self.expect("=")
            if self.at("["):
                self.next()
                vals: list[bool] = []
                while True:
                    vals.append(self.parse_bool())
                    if self.at(","):
                        self.next()
                    else:
                        break
                self.expect("]")
                ascending = vals
            else:
                ascending = [self.parse_bool()] * len(keys)
        self.expect(")")
        if len(ascending) != len(keys):
            raise QuerySyntaxError("ascending list length must match sort keys")
        return q.Sort(tuple(keys), tuple(ascending))

    def parse_bool(self) -> bool:
        tok = self.next()
        if tok.text == "True":
            return True
        if tok.text == "False":
            return False
        raise QuerySyntaxError(f"expected True/False at position {tok.pos}")

    def parse_groupby(self) -> q.GroupAgg:
        self.expect("(")
        if self.at("["):
            keys = self.parse_string_list()
        else:
            tok = self.next()
            if tok.kind != "STRING":
                raise QuerySyntaxError(
                    f"expected groupby key at position {tok.pos}"
                )
            keys = [_unquote(tok.text)]
        self.expect(")")
        self.expect("[")
        col_tok = self.next()
        if col_tok.kind != "STRING":
            raise QuerySyntaxError(
                f"expected selected column at position {col_tok.pos}"
            )
        column = _unquote(col_tok.text)
        self.expect("]")
        self.expect(".")
        agg_tok = self.next()
        agg = agg_tok.text
        if agg == "agg":
            self.expect("(")
            inner = self.next()
            if inner.kind != "STRING":
                raise QuerySyntaxError(f"agg() expects a string at {inner.pos}")
            agg = _unquote(inner.text)
            self.expect(")")
        else:
            self.expect("(")
            self.expect(")")
        self._check_agg(agg, agg_tok.pos)
        return q.GroupAgg(tuple(keys), column, agg)

    def parse_drop_duplicates(self) -> q.DropDuplicates:
        self.expect("(")
        subset: list[str] = []
        if self.at("subset"):
            self.next()
            self.expect("=")
            if self.at("["):
                subset = self.parse_string_list()
            else:
                tok = self.next()
                if tok.kind != "STRING":
                    raise QuerySyntaxError(
                        f"expected subset column at position {tok.pos}"
                    )
                subset = [_unquote(tok.text)]
        self.expect(")")
        return q.DropDuplicates(tuple(subset))

    # -- predicates ------------------------------------------------------------------
    def parse_predicate(self) -> q.Predicate:
        return self.parse_or()

    def parse_or(self) -> q.Predicate:
        left = self.parse_and()
        while self.at("|"):
            self.next()
            right = self.parse_and()
            left = q.Or(left, right)
        return left

    def parse_and(self) -> q.Predicate:
        left = self.parse_unary()
        while self.at("&"):
            self.next()
            right = self.parse_unary()
            left = q.And(left, right)
        return left

    def parse_unary(self) -> q.Predicate:
        if self.at("~"):
            self.next()
            return q.Not(self.parse_unary())
        if self.at("("):
            self.next()
            inner = self.parse_or()
            self.expect(")")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> q.Predicate:
        tok = self.next()
        if tok.text != "df":
            raise QuerySyntaxError(
                f"predicate must reference df[...], found {tok.text!r} at {tok.pos}"
            )
        self.expect("[")
        col_tok = self.next()
        if col_tok.kind != "STRING":
            raise QuerySyntaxError(f"expected column string at position {col_tok.pos}")
        field = q.Field(_unquote(col_tok.text))
        self.expect("]")

        nxt = self.peek()
        if nxt is None:
            raise QuerySyntaxError("incomplete comparison")
        if nxt.kind == "OP":
            op = self.next().text
            value = self.parse_literal()
            return q.Compare(field, op, value)
        if nxt.text == ".":
            self.next()
            meth = self.next()
            if meth.text == "str":
                self.expect(".")
                str_meth = self.next()
                self.expect("(")
                arg_tok = self.next()
                if arg_tok.kind != "STRING":
                    raise QuerySyntaxError(
                        f"expected string argument at position {arg_tok.pos}"
                    )
                arg = _unquote(arg_tok.text)
                # optional case= kwarg for contains
                case = True
                if self.at(","):
                    self.next()
                    kw = self.next()
                    if kw.text != "case":
                        raise QuerySyntaxError(
                            f"unknown kwarg {kw.text!r} at position {kw.pos}"
                        )
                    self.expect("=")
                    case = self.parse_bool()
                self.expect(")")
                if str_meth.text == "contains":
                    return q.StrContains(field, arg, case)
                if str_meth.text == "startswith":
                    return q.StrStartsWith(field, arg)
                if str_meth.text == "endswith":
                    return q.StrEndsWith(field, arg)
                raise QuerySyntaxError(
                    f"unknown .str method {str_meth.text!r} at {str_meth.pos}"
                )
            if meth.text == "isin":
                self.expect("(")
                values = self.parse_literal()
                if not isinstance(values, list):
                    raise QuerySyntaxError("isin() expects a list literal")
                self.expect(")")
                return q.IsIn(field, tuple(values))
            if meth.text == "between":
                self.expect("(")
                low = self.parse_literal()
                self.expect(",")
                high = self.parse_literal()
                self.expect(")")
                return q.Between(field, low, high)
            if meth.text == "notna":
                self.expect("(")
                self.expect(")")
                return q.NotNull(field)
            if meth.text == "isna":
                self.expect("(")
                self.expect(")")
                return q.IsNull(field)
            raise QuerySyntaxError(
                f"unknown predicate method .{meth.text} at position {meth.pos}"
            )
        raise QuerySyntaxError(
            f"expected comparison after column at position {nxt.pos}"
        )

    def parse_literal(self) -> Any:
        tok = self.next()
        if tok.kind == "STRING":
            return _unquote(tok.text)
        if tok.kind == "NUMBER":
            text = tok.text
            if "." in text or "e" in text.lower():
                return float(text)
            return int(text)
        if tok.text == "True":
            return True
        if tok.text == "False":
            return False
        if tok.text == "None":
            return None
        if tok.text == "[":
            values: list[Any] = []
            if not self.at("]"):
                while True:
                    values.append(self.parse_literal())
                    if self.at(","):
                        self.next()
                        if self.at("]"):
                            break
                    else:
                        break
            self.expect("]")
            return values
        raise QuerySyntaxError(f"bad literal {tok.text!r} at position {tok.pos}")


def parse_query(code: str) -> q.Pipeline:
    """Parse query code into a Pipeline, or raise QuerySyntaxError."""
    code = code.strip()
    if not code:
        raise QuerySyntaxError("empty query")
    return _Parser(code).parse()
