"""ProvenanceGateway: one versioned surface over agent, query, lineage.

Before this layer, every consumer bound to in-process objects and three
disjoint query dialects: Mongo-style filter documents on
:class:`~repro.provenance.query_api.QueryAPI`, pandas-like pipeline
strings through the agent's database tool, and method calls on
:class:`~repro.lineage.LineageIndex`.  The gateway redesigns that into
one request/response schema layer (:mod:`repro.api.schemas`) routed here:

* **chat** — :class:`~repro.api.schemas.ChatRequest` onto
  :meth:`AgentService.chat`, replies reduced to their deterministic
  anatomy (text / code / table / chart) so transports are comparable
  byte-for-byte;
* **query** — :meth:`execute_query` accepts all four dialects through
  one entry point, compiling each onto the *existing* query
  infrastructure: ``filter`` hits the Query API's cached frame
  materialisation, ``pipeline`` parses through the query IR with
  predicate pushdown and shares the versioned
  :class:`~repro.query.QueryCache` entries with the NL database tool
  (same key shape, so a programmatic query warms the cache for chat and
  vice versa), ``sql`` compiles a SELECT statement
  (:mod:`repro.sql`) onto the *same* IR — same executor, same pushdown,
  same cache entries as ``pipeline``, plus ``explain=True`` for the
  compiled plan — and ``graph`` routes onto the structured
  :class:`~repro.agent.tools.graph_query.GraphQueryTool` surface;
* **pagination** — frame-shaped results page through
  :class:`~repro.api.schemas.Cursor` tokens pinned to the query
  fingerprint *and* the store version: a write between pages makes the
  cursor stale (:data:`ErrorCode.CURSOR_STALE`) instead of silently
  shifting rows.  Cursors live client-side, so they survive a server
  restart; against a durable store
  (:class:`repro.storage.DurableStore`) the recovery epoch bump makes
  every pre-restart cursor come back ``CURSOR_STALE`` — never a
  silently wrong page over recovered contents;
* **stats** — per-endpoint request/error counters merged with the
  serving layer's snapshot, published as the MCP ``serving-stats``
  resource.

Every public method returns a schema instance — on failure an
:class:`~repro.api.schemas.ErrorEnvelope` with a stable code, never an
exception — which is what lets the stdlib HTTP transport
(:mod:`repro.api.http`) and the in-process client stay trivially thin.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_left, insort
from collections import deque
from time import perf_counter
from typing import Any, TYPE_CHECKING

from repro.api import schemas as s
from repro.api.schemas import (
    ChatReply,
    ChatRequest,
    CreateSessionRequest,
    Cursor,
    DIALECTS,
    ErrorCode,
    ErrorEnvelope,
    FramePayload,
    LineageReply,
    LineageRequest,
    Page,
    QueryReply,
    QueryRequest,
    SessionInfo,
    StatsReply,
)
from repro.dataframe import DataFrame
from repro.errors import ProvenanceError, QueryExecutionError, QuerySyntaxError
from repro.provenance.query_api import store_version
from repro.query import parse_query, render_query
from repro.query import ast as qast
from repro.query.engine import pipeline_cache_key, run_cached_pipeline
from repro.query.partial import step_label
from repro.query.pushdown import merge_filters, pipeline_prefilter, plan_pushdown
from repro.sql import SqlError, SqlSyntaxError, compile_sql

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.service import AgentService
    from repro.agent.session import AgentReply
    from repro.api.admission import AdmissionController
    from repro.provenance.query_api import QueryAPI

__all__ = ["ProvenanceGateway", "DEFAULT_PAGE_SIZE"]

#: per-endpoint latency reservoir bound (same rationale as the
#: LLM server's: stable tails, cheap insort on the request path)
_MAX_LATENCY_SAMPLES = 4096


class _LatencyReservoir:
    """Bounded most-recent latency samples with percentile snapshots.

    Same shape as :meth:`repro.llm.service.LLMServer.stats`: a sorted
    reservoir paired with a FIFO so eviction drops the oldest sample.
    Not thread-safe on its own — the gateway holds its stats lock.
    """

    __slots__ = ("_sorted", "_fifo", "_count")

    def __init__(self) -> None:
        self._sorted: list[float] = []
        self._fifo: deque[float] = deque()
        self._count = 0

    def add(self, value: float) -> None:
        self._count += 1
        if len(self._fifo) >= _MAX_LATENCY_SAMPLES:
            oldest = self._fifo.popleft()
            i = bisect_left(self._sorted, oldest)
            if i < len(self._sorted) and self._sorted[i] == oldest:
                self._sorted.pop(i)
        self._fifo.append(value)
        insort(self._sorted, value)

    def snapshot(self) -> dict[str, Any]:
        lat = self._sorted
        n = len(lat)
        return {
            "requests": self._count,
            "latency_p50_s": lat[int(0.50 * (n - 1))] if n else None,
            "latency_p90_s": lat[int(0.90 * (n - 1))] if n else None,
            "latency_p99_s": lat[int(0.99 * (n - 1))] if n else None,
            "latency_max_s": lat[-1] if n else None,
        }

#: page size used when a cursor continues a query that never set one
DEFAULT_PAGE_SIZE = 100

#: per-dialect request fields that belong to the OTHER dialects; their
#: presence is a BAD_REQUEST, never a silent no-op
_FOREIGN_FIELDS: dict[str, tuple[str, ...]] = {
    "filter": (
        "code", "sql", "operation", "task_id", "target",
        "depth", "workflow_id",
    ),
    "pipeline": (
        "filter", "sort", "limit", "sql", "operation",
        "task_id", "target", "depth", "workflow_id",
    ),
    "graph": ("filter", "sort", "limit", "code", "sql"),
    "sql": (
        "filter", "sort", "limit", "code", "operation", "task_id",
        "target", "depth", "workflow_id",
    ),
}


class ProvenanceGateway:
    """Transport-agnostic front door over one :class:`AgentService`."""

    def __init__(
        self,
        service: "AgentService",
        *,
        query_api: "QueryAPI | None" = None,
        base_filter: dict[str, Any] | None = None,
        default_page_size: int = DEFAULT_PAGE_SIZE,
        publish_mcp: bool = True,
    ):
        self.service = service
        db_tool = service.db_tool
        self.query_api = query_api or (
            db_tool.query_api if db_tool is not None else None
        )
        #: documents the pipeline dialect executes over, mirroring the
        #: database tool so both surfaces share cache entries
        self.base_filter = dict(
            base_filter
            or (db_tool.base_filter if db_tool is not None else {"type": "task"})
        )
        self.default_page_size = default_page_size
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._latency: dict[str, _LatencyReservoir] = {}
        #: operator-pushdown decisions for pipeline/sql executions:
        #: counters keyed pushed:<mode> / fallback:<mode> / classic /
        #: cache-hit, plus scatter-payload totals and the last decision
        self._pushdown_decisions: dict[str, int] = {}
        self._pushdown_totals: dict[str, int] = {
            "rows_scanned": 0, "payload_docs": 0, "payload_cells": 0,
        }
        self._pushdown_last: dict[str, Any] | None = None
        #: admission controller of the serving transport, when one is
        #: attached — its shed/queue counters ride the stats reply
        self._admission: "AdmissionController | None" = None
        if publish_mcp:
            # the serving snapshot now includes gateway traffic; the MCP
            # resource follows the front door
            service.mcp.add_resource("serving-stats", self.stats_payload)
            service.mcp.add_resource("gateway-stats", self.stats_payload)

    # -- accounting ------------------------------------------------------------
    def _count(self, endpoint: str) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def _observe(self, endpoint: str, elapsed_s: float) -> None:
        with self._lock:
            reservoir = self._latency.get(endpoint)
            if reservoir is None:
                reservoir = self._latency[endpoint] = _LatencyReservoir()
            reservoir.add(elapsed_s)

    def attach_admission(self, admission: "AdmissionController") -> None:
        """Surface a transport's admission counters in :meth:`stats`.

        Called by :meth:`repro.api.aio.AsyncGatewayServer.start`; the
        last transport to attach wins (one serving transport per gateway
        is the deployment shape).
        """
        self._admission = admission

    def _error(self, envelope: ErrorEnvelope) -> ErrorEnvelope:
        with self._lock:
            self._errors[envelope.code] = self._errors.get(envelope.code, 0) + 1
        return envelope

    def _fail(
        self, code: str, message: str, detail: dict[str, Any] | None = None
    ) -> ErrorEnvelope:
        return self._error(ErrorEnvelope(code=code, message=message, detail=detail))

    # -- sessions ----------------------------------------------------------------
    def create_session(
        self, request: CreateSessionRequest
    ) -> SessionInfo | ErrorEnvelope:
        self._count("sessions")
        started = perf_counter()
        try:
            session = self.service.create_session(
                request.session_id, model=request.model
            )
        except ValueError as exc:
            return self._fail(ErrorCode.SESSION_EXISTS, str(exc))
        except RuntimeError as exc:
            return self._fail(ErrorCode.SERVICE_CLOSED, str(exc))
        except Exception as exc:  # noqa: BLE001 - API boundary
            return self._fail(ErrorCode.INTERNAL, repr(exc))
        finally:
            self._observe("sessions", perf_counter() - started)
        return SessionInfo(
            session_id=session.session_id,
            model=session.model,
            turn_count=session.turn_count,
        )

    def session_info(self, session_id: str) -> SessionInfo | ErrorEnvelope:
        try:
            session = self.service.session(session_id)
        except KeyError as exc:
            return self._fail(ErrorCode.UNKNOWN_SESSION, str(exc.args[0]))
        return SessionInfo(
            session_id=session.session_id,
            model=session.model,
            turn_count=session.turn_count,
        )

    # -- chat --------------------------------------------------------------------
    def chat_native(self, session_id: str, message: str) -> "AgentReply":
        """One turn through the gateway, returning the rich in-process
        reply (DataFrame table, tool details).

        This is the path the :class:`~repro.agent.agent.ProvenanceAgent`
        facade rides; remote transports use :meth:`chat`, which reduces
        the same reply to its wire form.
        """
        self._count("chat")
        started = perf_counter()
        try:
            return self.service.chat(session_id, message)
        finally:
            self._observe("chat", perf_counter() - started)

    def chat(self, request: ChatRequest) -> ChatReply | ErrorEnvelope:
        try:
            reply = self.chat_native(request.session_id, request.message)
        except KeyError as exc:
            return self._fail(ErrorCode.UNKNOWN_SESSION, str(exc.args[0]))
        except RuntimeError as exc:
            return self._fail(ErrorCode.SERVICE_CLOSED, str(exc))
        except Exception as exc:  # noqa: BLE001 - API boundary
            return self._fail(ErrorCode.INTERNAL, repr(exc))
        return ChatReply(
            session_id=request.session_id,
            text=reply.text,
            intent=reply.intent.value,
            ok=reply.ok,
            code=reply.code,
            error=reply.error,
            chart=reply.chart,
            table=(
                FramePayload.from_frame(reply.table)
                if reply.table is not None
                else None
            ),
        )

    # -- the unified query surface ----------------------------------------------
    def execute_query(self, request: QueryRequest) -> QueryReply | ErrorEnvelope:
        """Execute one :class:`QueryRequest` in any dialect.

        All three dialects land on the same versioned infrastructure;
        the dialect only chooses the *compiler*, never the store or the
        cache.
        """
        self._count("query")
        started = perf_counter()
        try:
            if request.dialect not in DIALECTS:
                return self._fail(
                    ErrorCode.UNKNOWN_DIALECT,
                    f"unknown dialect {request.dialect!r}; "
                    f"expected one of {', '.join(DIALECTS)}",
                )
            if request.page_size is not None and request.page_size < 1:
                return self._fail(
                    ErrorCode.BAD_REQUEST,
                    f"page_size must be >= 1, got {request.page_size}",
                )
            if request.limit is not None and request.limit < 0:
                return self._fail(
                    ErrorCode.BAD_REQUEST,
                    f"limit must be >= 0, got {request.limit}",
                )
            # fields from another dialect are rejected, not silently
            # ignored: a client sending limit= with a pipeline query
            # must not believe the limit was applied
            stray = [
                name
                for name in _FOREIGN_FIELDS[request.dialect]
                if getattr(request, name) is not None
            ]
            if stray:
                return self._fail(
                    ErrorCode.BAD_REQUEST,
                    f"field(s) {', '.join(stray)} do not apply to the "
                    f"{request.dialect!r} dialect",
                )
            if request.dialect == "filter":
                return self._filter_query(request)
            if request.dialect == "pipeline":
                return self._pipeline_query(request)
            if request.dialect == "sql":
                return self._sql_query(request)
            return self._graph_query(request)
        except Exception as exc:  # noqa: BLE001 - API boundary: no tracebacks
            return self._fail(ErrorCode.INTERNAL, repr(exc))
        finally:
            self._observe("query", perf_counter() - started)

    # filter dialect: Mongo-style documents over the Query API
    def _filter_query(self, request: QueryRequest) -> QueryReply | ErrorEnvelope:
        if self.query_api is None:
            return self._fail(
                ErrorCode.BAD_REQUEST,
                "no historical store attached; filter/pipeline dialects "
                "need a QueryAPI",
            )
        if request.explain:
            # the filter dialect has no pipeline to push; its explain is
            # the store's own access plan (index/scan + shard routing)
            detail: dict[str, Any] = {
                "filter": s._plain(dict(request.filter if request.filter is not None else {})),
                "plan": s._plain(
                    self.query_api.explain(
                        request.filter if request.filter is not None else {}
                    )
                ),
                "store_version": self._version(),
            }
            return QueryReply(
                dialect=request.dialect,
                kind="explain",
                summary="explain: filter access plan",
                scalar=detail,
            )
        version = self._version()
        frame = self.query_api.to_frame(
            request.filter if request.filter is not None else {}
        )
        if request.sort:
            keys = [k for k, _ in request.sort]
            ascending = [direction >= 0 for _, direction in request.sort]
            try:
                frame = frame.sort_values(keys, ascending)
            except Exception as exc:  # noqa: BLE001 - bad sort column
                return self._fail(ErrorCode.QUERY_EXECUTION, str(exc))
        if request.limit is not None:
            frame = frame.head(request.limit)
        return self._frame_reply(request, frame, version, summary=None)

    # pipeline dialect: pandas-like code through the query IR
    def _pipeline_query(self, request: QueryRequest) -> QueryReply | ErrorEnvelope:
        if self.query_api is None:
            return self._fail(
                ErrorCode.BAD_REQUEST,
                "no historical store attached; filter/pipeline dialects "
                "need a QueryAPI",
            )
        if not request.code:
            return self._fail(
                ErrorCode.BAD_REQUEST, "pipeline dialect needs a 'code' field"
            )
        try:
            pipeline = parse_query(request.code)
        except QuerySyntaxError as exc:
            return self._fail(ErrorCode.QUERY_SYNTAX, str(exc))
        if request.explain:
            return self._ir_explain(request, pipeline)
        return self._run_pipeline(request, pipeline)

    # sql dialect: SELECT text compiled onto the same query IR, so it
    # shares the pipeline dialect's executor, pushdown and cache entries
    def _sql_query(self, request: QueryRequest) -> QueryReply | ErrorEnvelope:
        if self.query_api is None:
            return self._fail(
                ErrorCode.BAD_REQUEST,
                "no historical store attached; the sql dialect needs a "
                "QueryAPI",
            )
        if not request.sql:
            return self._fail(
                ErrorCode.BAD_REQUEST, "sql dialect needs a 'sql' field"
            )
        try:
            pipeline = compile_sql(request.sql)
        except SqlSyntaxError as exc:
            return self._fail(
                ErrorCode.QUERY_SYNTAX, str(exc), detail=exc.diagnostic()
            )
        except SqlError as exc:
            # resolution / unsupported-feature failures: the statement is
            # well-formed SQL the subset rejects, with a pointed reason
            return self._fail(
                ErrorCode.BAD_REQUEST, str(exc), detail=exc.diagnostic()
            )
        if request.explain:
            return self._ir_explain(request, pipeline)
        return self._run_pipeline(request, pipeline)

    def _ir_explain(
        self, request: QueryRequest, pipeline: "qast.Pipeline"
    ) -> QueryReply | ErrorEnvelope:
        """Compile-then-plan without executing: the compiled IR, the
        pushdown prefilter, the operator-pushdown plan (which steps run
        shard-side vs at the coordinator), the store's routing-aware
        plan, and whether the shared cache already holds this
        pipeline's result.  Shared by the sql and pipeline dialects —
        they compile onto the same IR, so they plan identically."""
        version = self._version()
        prefilter = pipeline_prefilter(pipeline)
        merged = merge_filters(self.base_filter, prefilter)
        key = pipeline_cache_key(_filter_cache_key(self.base_filter), pipeline)
        cached = (
            key is not None
            and version is not None
            and self.service.query_cache.peek(key, version)
        )
        detail: dict[str, Any] = {
            "pipeline": render_query(pipeline),
            "steps": pipeline.describe(),
            "pushdown": s._plain(prefilter),
            "plan": s._plain(self.query_api.explain(merged)),
            "cache": "hit" if cached else "miss",
            "store_version": version,
        }
        if request.sql is not None:
            detail["sql"] = request.sql
        if request.code is not None:
            detail["code"] = request.code
        plan = (
            plan_pushdown(pipeline, self.base_filter)
            if getattr(self.query_api.database, "execute_partial", None)
            else None
        )
        if plan is not None:
            detail["pushdown_mode"] = plan.mode
            detail["pushed_steps"] = list(plan.pushed_steps)
            detail["coordinator_steps"] = list(plan.coordinator_steps)
        else:
            detail["pushdown_mode"] = None
            detail["pushed_steps"] = []
            detail["coordinator_steps"] = [
                step_label(step) for step in pipeline.steps
            ]
        return QueryReply(
            dialect=request.dialect,
            kind="explain",
            summary=f"explain: {pipeline.describe()}",
            scalar=detail,
        )

    def _run_pipeline(
        self, request: QueryRequest, pipeline: "qast.Pipeline"
    ) -> QueryReply | ErrorEnvelope:
        """Execute a compiled pipeline through the shared engine and
        shape the reply.  The pipeline and sql dialects both land here,
        which is what makes their cache entries identical."""
        try:
            run = run_cached_pipeline(
                self.query_api,
                pipeline,
                base_filter=self.base_filter,
                cache=self.service.query_cache,
            )
        except QueryExecutionError as exc:
            return self._fail(ErrorCode.QUERY_EXECUTION, str(exc))
        self._record_pushdown(run)
        if isinstance(run.result, DataFrame):
            return self._frame_reply(
                request, run.result, run.version, summary=run.summary
            )
        if isinstance(run.result, list):
            return QueryReply(
                dialect=request.dialect,
                kind="scalar",
                summary=run.summary,
                scalar=[s._plain(v) for v in run.result],
            )
        return QueryReply(
            dialect=request.dialect,
            kind="scalar",
            summary=run.summary,
            scalar=s._plain(run.result),
        )

    def _record_pushdown(self, run: Any) -> None:
        """Fold one execution's pushdown decision into the stats counters."""
        info = run.pushdown
        if info is None:
            key = "cache-hit" if run.cache_state == "hit" else "classic"
        elif "fallback" in info:
            key = f"fallback:{info['mode']}"
        else:
            key = f"pushed:{info['mode']}"
        with self._lock:
            self._pushdown_decisions[key] = (
                self._pushdown_decisions.get(key, 0) + 1
            )
            if info is not None:
                for stat in self._pushdown_totals:
                    if stat in info:
                        self._pushdown_totals[stat] += int(info[stat])
                self._pushdown_last = dict(info)

    # graph dialect: structured traversal over the lineage index
    def _graph_query(self, request: QueryRequest) -> QueryReply | ErrorEnvelope:
        if not request.operation:
            return self._fail(
                ErrorCode.BAD_REQUEST, "graph dialect needs an 'operation' field"
            )
        if request.explain:
            # graph answers come straight from the in-memory lineage
            # index — there is no scatter path and nothing to push down
            return QueryReply(
                dialect=request.dialect,
                kind="explain",
                summary=f"explain: graph {request.operation}",
                scalar={
                    "operation": request.operation,
                    "source": "lineage-index",
                    "pushdown_mode": None,
                    "pushed_steps": [],
                    "coordinator_steps": [f"graph:{request.operation}"],
                    "index_version": self._graph_version(),
                },
            )
        # graph answers come from the lineage index, so graph cursors
        # pin to ITS monotonic applied-document counter: an index update
        # between pages goes CURSOR_STALE exactly like a store write
        # does for the other dialects
        version = self._graph_version()
        result = self.service.graph_tool.invoke(
            operation=request.operation,
            task_id=request.task_id,
            target=request.target,
            depth=request.depth,
            workflow_id=request.workflow_id,
        )
        if not result.ok:
            error = result.error or result.summary
            if "unknown task" in (error or ""):
                return self._fail(ErrorCode.UNKNOWN_TASK, error)
            return self._fail(ErrorCode.BAD_REQUEST, f"{result.summary}: {error}")
        if isinstance(result.data, DataFrame):
            return self._frame_reply(
                request, result.data, version, summary=result.summary
            )
        return QueryReply(
            dialect=request.dialect,
            kind="scalar",
            summary=result.summary,
            scalar=s._plain(result.data),
        )

    # -- lineage view -------------------------------------------------------------
    def lineage_view(self, request: LineageRequest) -> LineageReply | ErrorEnvelope:
        self._count("lineage")
        started = perf_counter()
        try:
            return self._lineage_view(request)
        finally:
            self._observe("lineage", perf_counter() - started)

    def _lineage_view(self, request: LineageRequest) -> LineageReply | ErrorEnvelope:
        if request.direction not in ("upstream", "downstream", "both"):
            return self._fail(
                ErrorCode.BAD_REQUEST,
                f"direction must be upstream|downstream|both, "
                f"got {request.direction!r}",
            )
        index = self.service.lineage
        try:
            upstream: tuple[str, ...] = ()
            downstream: tuple[str, ...] = ()
            if request.direction in ("upstream", "both"):
                upstream = tuple(
                    sorted(index.upstream(request.task_id, max_depth=request.depth))
                )
            if request.direction in ("downstream", "both"):
                downstream = tuple(
                    sorted(index.downstream(request.task_id, max_depth=request.depth))
                )
        except ProvenanceError as exc:
            return self._fail(ErrorCode.UNKNOWN_TASK, str(exc))
        except Exception as exc:  # noqa: BLE001 - API boundary
            return self._fail(ErrorCode.INTERNAL, repr(exc))
        node = {
            k: s._plain(v) for k, v in index.node(request.task_id).items()
        } or None
        return LineageReply(
            task_id=request.task_id,
            upstream=upstream,
            downstream=downstream,
            node=node,
        )

    # -- stats -------------------------------------------------------------------
    def stats(self) -> StatsReply:
        self._count("stats")
        started = perf_counter()
        service_stats = self.service.stats()
        admission = self._admission
        with self._lock:
            requests = dict(self._requests)
            errors = dict(self._errors)
            endpoints = {
                name: reservoir.snapshot()
                for name, reservoir in sorted(self._latency.items())
            }
            pushdown = {
                "decisions": dict(self._pushdown_decisions),
                "totals": dict(self._pushdown_totals),
                "last": (
                    dict(self._pushdown_last)
                    if self._pushdown_last is not None
                    else None
                ),
            }
        reply = StatsReply(
            sessions=service_stats["sessions"],
            turns_completed=service_stats["turns_completed"],
            requests=requests,
            errors=errors,
            query_cache=service_stats["query_cache"],
            llm=service_stats["llm"],
            endpoints=endpoints,
            admission=admission.snapshot() if admission is not None else {},
            pushdown=pushdown,
        )
        self._observe("stats", perf_counter() - started)
        return reply

    def stats_payload(self) -> dict[str, Any]:
        """Plain-dict stats for MCP resource reads."""
        return s.to_jsonable(self.stats())

    # -- content negotiation -----------------------------------------------------
    def render_csv(self, reply: Any) -> tuple[str, str]:
        """``(content_type, body)`` for a CSV-negotiated query outcome.

        Both transports route through here so a ``NOT_ACCEPTABLE``
        rendering (CSV of a non-frame result) lands in the gateway's
        per-code error counters like every other failure.
        """
        content_type, text = s.render_query_csv(reply)
        if (
            content_type == "application/json"
            and isinstance(reply, QueryReply)
        ):
            with self._lock:
                self._errors[ErrorCode.NOT_ACCEPTABLE] = (
                    self._errors.get(ErrorCode.NOT_ACCEPTABLE, 0) + 1
                )
        return content_type, text

    # -- pagination --------------------------------------------------------------
    def _version(self) -> int | None:
        if self.query_api is None:
            return None
        return store_version(self.query_api.database)

    def _graph_version(self) -> int | None:
        counter = getattr(self.service.lineage, "applied_count", None)
        return int(counter) if counter is not None else None

    def _fingerprint(self, request: QueryRequest) -> str:
        pinned = QueryRequest(
            dialect=request.dialect,
            filter=request.filter,
            sort=request.sort,
            limit=request.limit,
            code=request.code,
            sql=request.sql,
            explain=request.explain,
            operation=request.operation,
            task_id=request.task_id,
            target=request.target,
            depth=request.depth,
            workflow_id=request.workflow_id,
        )
        return hashlib.sha256(s.to_json(pinned).encode()).hexdigest()[:16]

    def _frame_reply(
        self,
        request: QueryRequest,
        frame: DataFrame,
        version: int | None,
        *,
        summary: str | None,
    ) -> QueryReply | ErrorEnvelope:
        total = len(frame)
        fingerprint = self._fingerprint(request)
        pinned_version = version if version is not None else 0
        offset = 0
        if request.cursor is not None:
            try:
                cursor = Cursor.decode(request.cursor)
            except s.SchemaViolation as exc:
                return self._fail(ErrorCode.CURSOR_INVALID, str(exc))
            if cursor.fingerprint != fingerprint:
                return self._fail(
                    ErrorCode.CURSOR_INVALID,
                    "cursor does not belong to this query",
                )
            if cursor.version != pinned_version:
                return self._fail(
                    ErrorCode.CURSOR_STALE,
                    "the store changed since this cursor was issued; "
                    "restart the query from the first page",
                    detail={
                        "cursor_version": cursor.version,
                        "store_version": pinned_version,
                    },
                )
            offset = cursor.offset
        if request.page_size is None and request.cursor is None:
            # unpaginated: the whole result in one reply
            return QueryReply(
                dialect=request.dialect,
                kind="frame",
                summary=summary,
                frame=FramePayload.from_frame(frame),
                page=Page(offset=0, total=total, returned=total),
            )
        size = request.page_size or self.default_page_size
        end = min(offset + size, total)
        window = (
            frame.take(list(range(offset, end))) if offset < total else frame.head(0)
        )
        returned = len(window)
        next_cursor = None
        if offset + returned < total:
            next_cursor = Cursor(
                fingerprint=fingerprint,
                offset=offset + returned,
                version=pinned_version,
            ).encode()
        return QueryReply(
            dialect=request.dialect,
            kind="frame",
            summary=summary,
            frame=FramePayload.from_frame(window),
            page=Page(
                offset=offset,
                total=total,
                returned=returned,
                next_cursor=next_cursor,
            ),
        )


def _filter_cache_key(filt: dict[str, Any]) -> Any:
    from repro.query.cache import canonical_filter_key

    return canonical_filter_key(filt)
