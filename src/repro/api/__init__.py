"""The provenance gateway: one versioned API surface over the stack.

The paper's reference architecture (§2.3, Fig. 1) puts the agent and the
Query API behind a service boundary that users and programs reach
remotely.  This package is that boundary:

* :mod:`repro.api.schemas` — frozen request/response dataclasses with
  strict canonical-JSON round-tripping, stable error codes, and
  cursor-based pagination types;
* :mod:`repro.api.gateway` — :class:`ProvenanceGateway`, routing schema
  requests onto the serving layer (:class:`~repro.agent.service.AgentService`),
  the Query API / versioned query cache, and the lineage index — with
  all three query dialects (``filter`` / ``pipeline`` / ``graph``)
  behind one ``execute_query``;
* :mod:`repro.api.routing` — the transport-neutral routing core
  (``/v1/sessions``, ``/v1/sessions/{id}/chat``, ``/v1/query``,
  ``/v1/lineage/{task_id}``, ``/v1/stats``) with JSON/CSV content
  negotiation, shared byte-for-byte by both transports;
* :mod:`repro.api.http` — the stdlib ``ThreadingHTTPServer`` transport
  (compatibility baseline, one thread per connection);
* :mod:`repro.api.aio` — the asyncio transport: one event-loop thread,
  a sized executor pool, and admission control
  (:mod:`repro.api.admission`: per-client/per-session token buckets,
  a bounded admission queue, graceful drain);
* :mod:`repro.api.client` — :class:`GatewayClient` (in-process) and
  :class:`RemoteClient` (HTTP, optional 429/503 retries honoring
  ``Retry-After``) with identical interfaces and byte-identical JSON
  responses.

See ``docs/api_gateway.md`` for endpoint reference and curl examples.
"""

from repro.api.admission import AdmissionController, TokenBucket
from repro.api.aio import AsyncGatewayServer
from repro.api.client import GatewayClient, GatewayConnectionError, RemoteClient
from repro.api.gateway import ProvenanceGateway
from repro.api.http import GatewayHTTPServer
from repro.api.schemas import (
    API_VERSION,
    ChatReply,
    ChatRequest,
    CreateSessionRequest,
    Cursor,
    DIALECTS,
    ErrorCode,
    ErrorEnvelope,
    FramePayload,
    LineageReply,
    LineageRequest,
    Page,
    QueryReply,
    QueryRequest,
    SchemaViolation,
    SessionInfo,
    StatsReply,
    from_json,
    to_json,
)

__all__ = [
    "API_VERSION",
    "DIALECTS",
    "AdmissionController",
    "AsyncGatewayServer",
    "ChatReply",
    "ChatRequest",
    "CreateSessionRequest",
    "Cursor",
    "ErrorCode",
    "ErrorEnvelope",
    "FramePayload",
    "GatewayClient",
    "GatewayConnectionError",
    "GatewayHTTPServer",
    "LineageReply",
    "LineageRequest",
    "Page",
    "ProvenanceGateway",
    "QueryReply",
    "QueryRequest",
    "RemoteClient",
    "SchemaViolation",
    "SessionInfo",
    "StatsReply",
    "TokenBucket",
    "from_json",
    "to_json",
]
