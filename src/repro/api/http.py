"""Stdlib threaded HTTP transport for the provenance gateway.

A :class:`~http.server.ThreadingHTTPServer` (one thread per in-flight
connection — which is exactly the concurrency grain of
:meth:`AgentService.chat`, whose calling thread drains its session's
queue) exposing the versioned surface:

====== ============================== ===============================
Method Path                           Body / reply
====== ============================== ===============================
POST   ``/v1/sessions``               CreateSessionRequest -> SessionInfo
POST   ``/v1/sessions/{id}/chat``     ``{"message": ...}`` -> ChatReply
POST   ``/v1/query``                  QueryRequest -> QueryReply
GET    ``/v1/lineage/{task_id}``      ``?direction=&depth=`` -> LineageReply
GET    ``/v1/stats``                  -> StatsReply
====== ============================== ===============================

All routing, content negotiation, and error mapping live in the
transport-neutral :mod:`repro.api.routing` core, shared byte-for-byte
with the asyncio transport (:mod:`repro.api.aio`).  This module only
owns the threaded socket lifecycle:

* **race-free startup** — the listening socket binds inside
  :meth:`GatewayHTTPServer.start`, which returns only after the serving
  thread is actually polling (``ready`` event set from inside
  ``serve_forever``), so a connect immediately after ``start()``
  is always served;
* **idempotent shutdown** — :meth:`stop` (alias :meth:`close`) is safe
  to call twice, from any thread, including via the
  :meth:`AgentService.close` hook the server registers on start;
* **keep-alive** — HTTP/1.1 with explicit ``Content-Length`` on every
  response, so one client connection serves a whole conversation.

This transport is the compatibility baseline: fine for tens of clients,
measured against (and outperformed by) the asyncio transport in
``benchmarks/bench_async_gateway.py``.  No third-party dependencies.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, TYPE_CHECKING

from repro.api.routing import (
    MAX_BODY_BYTES,
    STATUS_BY_CODE,
    WireRequest,
    WireResponse,
    error_response,
    handle_request,
)
from repro.api.schemas import ErrorCode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.gateway import ProvenanceGateway

__all__ = ["GatewayHTTPServer", "STATUS_BY_CODE", "MAX_BODY_BYTES"]


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"  # keep-alive by default
    server_version = "repro-gateway/1.0"

    # the owning GatewayHTTPServer injects .gateway via the server object
    @property
    def gateway(self) -> "ProvenanceGateway":
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # tests and benchmarks must not spam stderr

    # -- plumbing ----------------------------------------------------------------
    def _send_wire(self, response: WireResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        if response.retry_after is not None:
            self.send_header("Retry-After", str(response.retry_after))
        self.end_headers()
        self.wfile.write(response.body)

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_wire(
                error_response(ErrorCode.BAD_REQUEST, "bad Content-Length")
            )
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_wire(
                error_response(
                    ErrorCode.BAD_REQUEST,
                    f"body too large (> {MAX_BODY_BYTES} bytes)",
                )
            )
            return None
        return self.rfile.read(length)

    # -- routes ------------------------------------------------------------------
    def _serve(self, body: bytes) -> None:
        request = WireRequest(
            method=self.command,
            target=self.path,
            body=body,
            accept=self.headers.get("Accept", ""),
        )
        self._send_wire(handle_request(self.gateway, request))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._read_body()
            if body is None:
                return
            self._serve(body)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - transport must not crash
            try:
                self._send_wire(
                    error_response(ErrorCode.INTERNAL, repr(exc))
                )
            except Exception:  # noqa: BLE001; provlint: disable=exception-contract - socket already gone
                pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._serve(b"")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - transport must not crash
            try:
                self._send_wire(
                    error_response(ErrorCode.INTERNAL, repr(exc))
                )
            except Exception:  # noqa: BLE001; provlint: disable=exception-contract - socket already gone
                pass


class _ReadyHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that signals when it is actually polling."""

    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.ready = threading.Event()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        # set from the serving thread, immediately before the poll loop:
        # start() returning therefore means requests are being served,
        # not merely queued in the listen backlog
        self.ready.set()
        super().serve_forever(poll_interval)


class GatewayHTTPServer:
    """Lifecycle wrapper: a threaded HTTP server on a daemon thread.

    The socket binds inside :meth:`start` (``port=0`` picks an ephemeral
    port — the default for tests and benchmarks); :attr:`address`
    reports the bound ``(host, port)`` once started.  ``start`` blocks
    until the serving thread is polling, and registers a close hook on
    the owning :class:`~repro.agent.service.AgentService` so
    ``service.close()`` stops the transport first.  ``stop``/``close``
    are idempotent; a stopped server may be started again (re-binding,
    possibly on a new ephemeral port).
    """

    def __init__(
        self,
        gateway: "ProvenanceGateway",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self._httpd: _ReadyHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._lifecycle = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        httpd = self._httpd
        if httpd is None:
            raise RuntimeError("server is not started")
        host, port = httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GatewayHTTPServer":
        with self._lifecycle:
            if self._thread is not None:
                return self
            httpd = _ReadyHTTPServer(
                (self.host, self.port), _GatewayRequestHandler
            )
            httpd.gateway = self.gateway  # type: ignore[attr-defined]
            self._httpd = httpd
            self._thread = threading.Thread(
                target=httpd.serve_forever,
                name="gateway-http",
                daemon=True,
            )
            self._thread.start()
            httpd.ready.wait()  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop; request paths never take it
        service = getattr(self.gateway, "service", None)
        if service is not None and hasattr(service, "add_close_hook"):
            service.add_close_hook(self.stop)
        return self

    def stop(self) -> None:
        with self._lifecycle:
            httpd, self._httpd = self._httpd, None
            thread, self._thread = self._thread, None
            if httpd is None:
                return  # never started, or already stopped
            httpd.shutdown()  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop
            if thread is not None:
                thread.join(timeout=5)  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop
            httpd.server_close()

    #: drain-hook-friendly alias, mirroring the asyncio transport
    close = stop

    def __enter__(self) -> "GatewayHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
