"""Stdlib HTTP transport for the provenance gateway.

A :class:`~http.server.ThreadingHTTPServer` (one thread per in-flight
request — which is exactly the concurrency grain of
:meth:`AgentService.chat`, whose calling thread drains its session's
queue) exposing the versioned surface:

====== ============================== ===============================
Method Path                           Body / reply
====== ============================== ===============================
POST   ``/v1/sessions``               CreateSessionRequest -> SessionInfo
POST   ``/v1/sessions/{id}/chat``     ``{"message": ...}`` -> ChatReply
POST   ``/v1/query``                  QueryRequest -> QueryReply
GET    ``/v1/lineage/{task_id}``      ``?direction=&depth=`` -> LineageReply
GET    ``/v1/stats``                  -> StatsReply
====== ============================== ===============================

Transport rules:

* **canonical JSON** — every body is exactly
  :func:`repro.api.schemas.to_json` of the schema object the gateway
  returned, so the HTTP transport is byte-identical to the in-process
  client (the parity contract ``benchmarks/bench_gateway.py`` asserts);
* **content negotiation** — ``Accept: text/csv`` on ``/v1/query``
  renders frame-shaped replies as CSV; anything else is JSON.
  ``text/csv`` against a non-frame reply is ``406`` with a
  ``NOT_ACCEPTABLE`` envelope;
* **keep-alive** — HTTP/1.1 with explicit ``Content-Length`` on every
  response, so one client connection serves a whole conversation;
* **errors** — always an :class:`~repro.api.schemas.ErrorEnvelope`
  body; :data:`STATUS_BY_CODE` maps its stable code to the HTTP status.
  No request can produce a traceback response.

No third-party dependencies: ``http.server`` only.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, TYPE_CHECKING
from urllib.parse import parse_qs, unquote, urlparse

from repro.api import schemas as s
from repro.api.schemas import (
    ChatRequest,
    CreateSessionRequest,
    ErrorCode,
    ErrorEnvelope,
    LineageRequest,
    QueryReply,
    QueryRequest,
    SchemaViolation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.gateway import ProvenanceGateway

__all__ = ["GatewayHTTPServer", "STATUS_BY_CODE"]

#: stable error code -> HTTP status
STATUS_BY_CODE: dict[str, int] = {
    ErrorCode.MALFORMED_JSON: 400,
    ErrorCode.SCHEMA_VIOLATION: 400,
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.UNKNOWN_DIALECT: 400,
    ErrorCode.UNKNOWN_SESSION: 404,
    ErrorCode.SESSION_EXISTS: 409,
    ErrorCode.QUERY_SYNTAX: 400,
    ErrorCode.QUERY_EXECUTION: 422,
    ErrorCode.UNKNOWN_TASK: 404,
    ErrorCode.CURSOR_INVALID: 400,
    ErrorCode.CURSOR_STALE: 410,
    ErrorCode.NOT_FOUND: 404,
    ErrorCode.METHOD_NOT_ALLOWED: 405,
    ErrorCode.NOT_ACCEPTABLE: 406,
    ErrorCode.SERVICE_CLOSED: 503,
    ErrorCode.INTERNAL: 500,
}

_CHAT_PATH = re.compile(r"^/v1/sessions/([^/]+)/chat$")
_LINEAGE_PATH = re.compile(r"^/v1/lineage/([^/]+)$")

#: request body size guard (a gateway, not a file server)
MAX_BODY_BYTES = 4 * 1024 * 1024


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"  # keep-alive by default
    server_version = "repro-gateway/1.0"

    # the owning GatewayHTTPServer injects .gateway via the server object
    @property
    def gateway(self) -> "ProvenanceGateway":
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # tests and benchmarks must not spam stderr

    # -- plumbing ----------------------------------------------------------------
    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_schema(self, obj: Any, *, status: int | None = None) -> None:
        if isinstance(obj, ErrorEnvelope):
            status = STATUS_BY_CODE.get(obj.code, 500)
        body = s.to_json(obj).encode()
        self._send(status or 200, body, "application/json")

    def _send_error(self, code: str, message: str) -> None:
        self._send_schema(ErrorEnvelope(code=code, message=message))

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error(ErrorCode.BAD_REQUEST, "bad Content-Length")
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_error(
                ErrorCode.BAD_REQUEST, f"body too large (> {MAX_BODY_BYTES} bytes)"
            )
            return None
        return self.rfile.read(length)

    def _wants_csv(self) -> bool:
        accept = self.headers.get("Accept", "")
        return "text/csv" in accept.lower()

    # -- routes ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_post()
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - transport must not crash
            try:
                self._send_error(ErrorCode.INTERNAL, repr(exc))
            except Exception:  # noqa: BLE001 - socket already gone
                pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_get()
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - transport must not crash
            try:
                self._send_error(ErrorCode.INTERNAL, repr(exc))
            except Exception:  # noqa: BLE001 - socket already gone
                pass

    def _route_post(self) -> None:
        path = urlparse(self.path).path
        body = self._read_body()
        if body is None:
            return
        chat = _CHAT_PATH.match(path)
        if path == "/v1/sessions":
            self._handle_parsed(body, CreateSessionRequest,
                                self.gateway.create_session)
        elif chat is not None:
            session_id = unquote(chat.group(1))

            def run(payload: dict[str, Any]) -> Any:
                message = payload.get("message")
                if not isinstance(message, str):
                    raise SchemaViolation("field 'message' must be a string")
                return self.gateway.chat(
                    ChatRequest(session_id=session_id, message=message)
                )

            self._handle_raw(body, run)
        elif path == "/v1/query":
            self._handle_parsed(body, QueryRequest, self._run_query)
        elif path in ("/v1/stats", "/v1/lineage") or _LINEAGE_PATH.match(path):
            self._send_error(ErrorCode.METHOD_NOT_ALLOWED, f"GET {path}")
        else:
            self._send_error(ErrorCode.NOT_FOUND, f"no route for POST {path}")

    def _route_get(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path
        lineage = _LINEAGE_PATH.match(path)
        if path == "/v1/stats":
            self._send_schema(self.gateway.stats())
        elif lineage is not None:
            params = parse_qs(parsed.query)
            direction = params.get("direction", ["both"])[0]
            depth_raw = params.get("depth", [None])[0]
            depth: int | None = None
            if depth_raw is not None:
                try:
                    depth = int(depth_raw)
                except ValueError:
                    self._send_error(
                        ErrorCode.BAD_REQUEST, f"bad depth {depth_raw!r}"
                    )
                    return
            request = LineageRequest(
                task_id=unquote(lineage.group(1)), direction=direction, depth=depth
            )
            self._send_schema(self.gateway.lineage_view(request))
        elif path in ("/v1/sessions", "/v1/query") or _CHAT_PATH.match(path):
            self._send_error(ErrorCode.METHOD_NOT_ALLOWED, f"POST {path}")
        else:
            self._send_error(ErrorCode.NOT_FOUND, f"no route for GET {path}")

    def _run_query(self, request: QueryRequest) -> Any:
        return self.gateway.execute_query(request)

    # -- body handling -----------------------------------------------------------
    def _handle_parsed(self, body: bytes, schema: type, handler: Any) -> None:
        try:
            request = s.from_json(body or b"{}", schema)
        except SchemaViolation as exc:
            code = (
                ErrorCode.MALFORMED_JSON
                if "malformed JSON" in str(exc)
                else ErrorCode.SCHEMA_VIOLATION
            )
            self._send_error(code, str(exc))
            return
        reply = handler(request)
        if isinstance(reply, QueryReply) and self._wants_csv():
            content_type, text = self.gateway.render_csv(reply)
            if content_type == "text/csv":
                self._send(200, text.encode(), "text/csv")
            else:
                self._send(406, text.encode(), content_type)
            return
        self._send_schema(reply)

    def _handle_raw(self, body: bytes, run: Any) -> None:
        try:
            payload = json.loads(body or b"{}")
            if not isinstance(payload, dict):
                raise SchemaViolation("payload must be a JSON object")
        except (ValueError, TypeError) as exc:
            self._send_error(ErrorCode.MALFORMED_JSON, f"malformed JSON: {exc}")
            return
        try:
            reply = run(payload)
        except SchemaViolation as exc:
            self._send_error(ErrorCode.SCHEMA_VIOLATION, str(exc))
            return
        self._send_schema(reply)


class GatewayHTTPServer:
    """Lifecycle wrapper: a threaded HTTP server on a daemon thread.

    ``port=0`` binds an ephemeral port (the default for tests and
    benchmarks); :attr:`address` reports the bound ``(host, port)``.
    """

    def __init__(
        self,
        gateway: "ProvenanceGateway",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.gateway = gateway
        self._httpd = ThreadingHTTPServer((host, port), _GatewayRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.gateway = gateway  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GatewayHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="gateway-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "GatewayHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
