"""Transport-neutral request handling for the gateway's HTTP surface.

Both transports — the threaded :class:`~repro.api.http.GatewayHTTPServer`
and the asyncio :class:`~repro.api.aio.AsyncGatewayServer` — parse bytes
off their sockets, build a :class:`WireRequest`, and hand it to
:func:`handle_request`.  Everything the transports share lives here:
route matching, body parsing, content negotiation, error-code-to-status
mapping, and response shaping.  That sharing is what makes the two
transports **byte-identical by construction** — the parity matrix in
``benchmarks/bench_gateway.py`` asserts it, but there is no second
routing implementation left to diverge.

The one transport-level concern this module also owns is the
``Retry-After`` hint: any 429/503 response (:data:`ErrorCode.RATE_LIMITED`,
:data:`ErrorCode.OVERLOADED`, :data:`ErrorCode.SERVICE_CLOSED`) carries
``WireResponse.retry_after``, which transports emit as the header of the
same name and clients may honor with backoff
(:class:`~repro.api.client.RemoteClient` ``retries=``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING
from urllib.parse import parse_qs, unquote, urlparse

from repro.api import schemas as s
from repro.api.schemas import (
    ChatRequest,
    CreateSessionRequest,
    ErrorCode,
    ErrorEnvelope,
    LineageRequest,
    QueryReply,
    QueryRequest,
    SchemaViolation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.gateway import ProvenanceGateway

__all__ = [
    "STATUS_BY_CODE",
    "MAX_BODY_BYTES",
    "DEFAULT_RETRY_AFTER_S",
    "WireRequest",
    "WireResponse",
    "handle_request",
    "error_response",
    "session_id_of",
]

#: stable error code -> HTTP status
STATUS_BY_CODE: dict[str, int] = {
    ErrorCode.MALFORMED_JSON: 400,
    ErrorCode.SCHEMA_VIOLATION: 400,
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.UNKNOWN_DIALECT: 400,
    ErrorCode.UNKNOWN_SESSION: 404,
    ErrorCode.SESSION_EXISTS: 409,
    ErrorCode.QUERY_SYNTAX: 400,
    ErrorCode.QUERY_EXECUTION: 422,
    ErrorCode.UNKNOWN_TASK: 404,
    ErrorCode.CURSOR_INVALID: 400,
    ErrorCode.CURSOR_STALE: 410,
    ErrorCode.NOT_FOUND: 404,
    ErrorCode.METHOD_NOT_ALLOWED: 405,
    ErrorCode.NOT_ACCEPTABLE: 406,
    ErrorCode.RATE_LIMITED: 429,
    ErrorCode.OVERLOADED: 503,
    ErrorCode.SERVICE_CLOSED: 503,
    ErrorCode.INTERNAL: 500,
}

#: codes whose responses carry a Retry-After header
_RETRYABLE_CODES = frozenset(
    {ErrorCode.RATE_LIMITED, ErrorCode.OVERLOADED, ErrorCode.SERVICE_CLOSED}
)

#: Retry-After seconds when the shedding layer gave no better estimate
DEFAULT_RETRY_AFTER_S = 1

#: request body size guard (a gateway, not a file server)
MAX_BODY_BYTES = 4 * 1024 * 1024

_CHAT_PATH = re.compile(r"^/v1/sessions/([^/]+)/chat$")
_LINEAGE_PATH = re.compile(r"^/v1/lineage/([^/]+)$")


def session_id_of(path: str) -> str | None:
    """The (decoded) session id a request target addresses, if any.

    Admission control uses this to key per-session rate limiting
    *before* any body parsing or gateway work happens.
    """
    match = _CHAT_PATH.match(urlparse(path).path)
    return unquote(match.group(1)) if match is not None else None


@dataclass(frozen=True)
class WireRequest:
    """One parsed-off-the-socket request, transport details erased."""

    method: str
    target: str  # raw request target, query string included
    body: bytes = b""
    accept: str = "application/json"


@dataclass(frozen=True)
class WireResponse:
    """One response, ready for a transport to serialise.

    ``retry_after`` (seconds) is set on shed/drain responses; transports
    emit it as the ``Retry-After`` header.
    """

    status: int
    content_type: str
    body: bytes
    retry_after: int | None = None


def _schema_response(obj: Any, *, status: int | None = None) -> WireResponse:
    retry_after = None
    if isinstance(obj, ErrorEnvelope):
        status = STATUS_BY_CODE.get(obj.code, 500)
        if obj.code in _RETRYABLE_CODES:
            retry_after = _retry_after_of(obj)
    return WireResponse(
        status=status if status is not None else 200,
        content_type="application/json",
        body=s.to_json(obj).encode(),
        retry_after=retry_after,
    )


def _retry_after_of(envelope: ErrorEnvelope) -> int:
    detail = envelope.detail if envelope.detail is not None else {}
    value = detail.get("retry_after_s")
    if isinstance(value, (int, float)) and not isinstance(value, bool) and value >= 0:
        # ceil to whole seconds: Retry-After is integral, and rounding
        # down would invite a retry that is still rate limited
        return max(1, int(-(-value // 1)))
    return DEFAULT_RETRY_AFTER_S


def error_response(
    code: str, message: str, detail: dict[str, Any] | None = None
) -> WireResponse:
    """An :class:`ErrorEnvelope` response built transport-side.

    The admission layer sheds with this *before* the gateway sees the
    request, so these envelopes do not pass through the gateway's error
    counters — the admission counters account for them instead.
    """
    return _schema_response(ErrorEnvelope(code=code, message=message, detail=detail))


def handle_request(gateway: "ProvenanceGateway", request: WireRequest) -> WireResponse:
    """Route one wire request onto the gateway; never raises."""
    try:
        return _route(gateway, request)
    except Exception as exc:  # noqa: BLE001 - transport boundary: no tracebacks
        return _schema_response(
            ErrorEnvelope(code=ErrorCode.INTERNAL, message=repr(exc))
        )


def _route(gateway: "ProvenanceGateway", request: WireRequest) -> WireResponse:
    if request.method == "POST":
        return _route_post(gateway, request)
    if request.method == "GET":
        return _route_get(gateway, request)
    return error_response(
        ErrorCode.METHOD_NOT_ALLOWED, f"{request.method} {request.target}"
    )


def _route_post(gateway: "ProvenanceGateway", request: WireRequest) -> WireResponse:
    path = urlparse(request.target).path
    if len(request.body) > MAX_BODY_BYTES:
        return error_response(
            ErrorCode.BAD_REQUEST, f"body too large (> {MAX_BODY_BYTES} bytes)"
        )
    chat = _CHAT_PATH.match(path)
    if path == "/v1/sessions":
        return _handle_parsed(
            gateway, request, CreateSessionRequest, gateway.create_session
        )
    if chat is not None:
        session_id = unquote(chat.group(1))

        def run(payload: dict[str, Any]) -> Any:
            message = payload.get("message")
            if not isinstance(message, str):
                raise SchemaViolation("field 'message' must be a string")
            return gateway.chat(
                ChatRequest(session_id=session_id, message=message)
            )

        return _handle_raw(request, run)
    if path == "/v1/query":
        return _handle_parsed(
            gateway, request, QueryRequest, gateway.execute_query
        )
    if path in ("/v1/stats", "/v1/lineage") or _LINEAGE_PATH.match(path):
        return error_response(ErrorCode.METHOD_NOT_ALLOWED, f"GET {path}")
    return error_response(ErrorCode.NOT_FOUND, f"no route for POST {path}")


def _route_get(gateway: "ProvenanceGateway", request: WireRequest) -> WireResponse:
    parsed = urlparse(request.target)
    path = parsed.path
    lineage = _LINEAGE_PATH.match(path)
    if path == "/v1/stats":
        return _schema_response(gateway.stats())
    if lineage is not None:
        params = parse_qs(parsed.query)
        direction = params.get("direction", ["both"])[0]
        depth_raw = params.get("depth", [None])[0]
        depth: int | None = None
        if depth_raw is not None:
            try:
                depth = int(depth_raw)
            except ValueError:
                return error_response(
                    ErrorCode.BAD_REQUEST, f"bad depth {depth_raw!r}"
                )
        lineage_request = LineageRequest(
            task_id=unquote(lineage.group(1)), direction=direction, depth=depth
        )
        return _schema_response(gateway.lineage_view(lineage_request))
    if path in ("/v1/sessions", "/v1/query") or _CHAT_PATH.match(path):
        return error_response(ErrorCode.METHOD_NOT_ALLOWED, f"POST {path}")
    return error_response(ErrorCode.NOT_FOUND, f"no route for GET {path}")


def _wants_csv(request: WireRequest) -> bool:
    return "text/csv" in request.accept.lower()


def _handle_parsed(
    gateway: "ProvenanceGateway",
    request: WireRequest,
    schema: type,
    handler: Callable[[Any], Any],
) -> WireResponse:
    try:
        parsed = s.from_json(
            # provlint: disable=falsy-or-default - empty request body means an empty JSON object
            request.body or b"{}",
            schema,
        )
    except SchemaViolation as exc:
        code = (
            ErrorCode.MALFORMED_JSON
            if "malformed JSON" in str(exc)
            else ErrorCode.SCHEMA_VIOLATION
        )
        return error_response(code, str(exc))
    reply = handler(parsed)
    if isinstance(reply, QueryReply) and _wants_csv(request):
        content_type, text = gateway.render_csv(reply)
        if content_type == "text/csv":
            return WireResponse(200, "text/csv", text.encode())
        return WireResponse(406, content_type, text.encode())
    return _schema_response(reply)


def _handle_raw(
    request: WireRequest, run: Callable[[dict[str, Any]], Any]
) -> WireResponse:
    try:
        payload = json.loads(request.body or b"{}")  # provlint: disable=falsy-or-default - empty request body means an empty JSON object
        if not isinstance(payload, dict):
            raise SchemaViolation("payload must be a JSON object")
    except (ValueError, TypeError) as exc:
        return error_response(
            ErrorCode.MALFORMED_JSON, f"malformed JSON: {exc}"
        )
    try:
        reply = run(payload)
    except SchemaViolation as exc:
        return error_response(ErrorCode.SCHEMA_VIOLATION, str(exc))
    return _schema_response(reply)
