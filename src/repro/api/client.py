"""Gateway clients: one interface, two transports.

:class:`GatewayClient` calls a :class:`~repro.api.gateway.ProvenanceGateway`
in-process; :class:`RemoteClient` speaks the HTTP transport
(:mod:`repro.api.http`) over a keep-alive connection.  Both expose the
*same* methods with the same signatures and return the same schema
instances — and their ``*_json`` forms return the same canonical JSON
text byte-for-byte (``tests/api/test_client_parity.py`` and
``benchmarks/bench_gateway.py`` assert it).  Code written against one
transport runs unchanged against the other, which is the property the
paper's "programmatically (e.g., via Jupyter) ... or via natural
language" access modes need.

Neither client raises for API-level failures: those come back as
:class:`~repro.api.schemas.ErrorEnvelope` values with stable codes.
:class:`RemoteClient` raises :class:`GatewayConnectionError` only for
transport failures (server unreachable, connection dropped).
"""

from __future__ import annotations

import http.client
import time
from typing import Any, Callable, TYPE_CHECKING
from urllib.parse import quote

from repro.api import schemas as s
from repro.api.schemas import (
    ChatReply,
    ChatRequest,
    CreateSessionRequest,
    ErrorEnvelope,
    LineageReply,
    LineageRequest,
    QueryReply,
    QueryRequest,
    SessionInfo,
    StatsReply,
)
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.gateway import ProvenanceGateway

__all__ = ["GatewayClient", "RemoteClient", "GatewayConnectionError"]


class GatewayConnectionError(ReproError):
    """The HTTP transport failed below the API layer."""


class GatewayClient:
    """In-process client: the gateway surface with zero transport cost."""

    def __init__(self, gateway: "ProvenanceGateway"):
        self.gateway = gateway

    # -- sessions ----------------------------------------------------------------
    def create_session(
        self, session_id: str | None = None, *, model: str | None = None
    ) -> SessionInfo | ErrorEnvelope:
        return self.gateway.create_session(
            CreateSessionRequest(session_id=session_id, model=model)
        )

    # -- chat --------------------------------------------------------------------
    def chat(self, session_id: str, message: str) -> ChatReply | ErrorEnvelope:
        return self.gateway.chat(
            ChatRequest(session_id=session_id, message=message)
        )

    def chat_json(self, session_id: str, message: str) -> str:
        return s.to_json(self.chat(session_id, message))

    # -- query -------------------------------------------------------------------
    def query(self, request: QueryRequest) -> QueryReply | ErrorEnvelope:
        return self.gateway.execute_query(request)

    def query_json(self, request: QueryRequest) -> str:
        return s.to_json(self.query(request))

    def query_csv(self, request: QueryRequest) -> str:
        _content_type, text = self.gateway.render_csv(self.query(request))
        return text

    def sql(
        self,
        statement: str,
        *,
        explain: bool = False,
        page_size: int | None = None,
        cursor: str | None = None,
    ) -> QueryReply | ErrorEnvelope:
        """Run one SELECT through the gateway's sql dialect."""
        return self.query(QueryRequest(
            dialect="sql",
            sql=statement,
            explain=explain or None,
            page_size=page_size,
            cursor=cursor,
        ))

    # -- lineage -----------------------------------------------------------------
    def lineage(
        self, task_id: str, *, direction: str = "both", depth: int | None = None
    ) -> LineageReply | ErrorEnvelope:
        return self.gateway.lineage_view(
            LineageRequest(task_id=task_id, direction=direction, depth=depth)
        )

    def lineage_json(
        self, task_id: str, *, direction: str = "both", depth: int | None = None
    ) -> str:
        return s.to_json(self.lineage(task_id, direction=direction, depth=depth))

    # -- stats -------------------------------------------------------------------
    def stats(self) -> StatsReply:
        return self.gateway.stats()


def _parse_retry_after(value: str | None) -> float | None:
    """Seconds from a ``Retry-After`` header, or None when absent/odd."""
    if value is None:
        return None
    try:
        parsed = float(value)
    except ValueError:
        return None
    return parsed if parsed >= 0 else None


class RemoteClient:
    """HTTP client over one keep-alive connection (stdlib only).

    Method-for-method identical to :class:`GatewayClient`, against
    either gateway transport (threaded or asyncio).  Not thread-safe
    (one underlying connection): concurrent callers hold one
    ``RemoteClient`` each, which is also how real HTTP load looks.

    Resilience, both opt-in by degrees:

    * a request that fails on a *reused* keep-alive socket (the server
      idled it out: ``ECONNRESET`` / ``BrokenPipeError`` on reuse) gets
      exactly one clean reconnect-and-resend; a fresh connection's
      failure surfaces immediately as :class:`GatewayConnectionError`;
    * with ``retries=N``, a 429/503 reply (``RATE_LIMITED`` /
      ``OVERLOADED`` / ``SERVICE_CLOSED`` shedding) is retried up to N
      times, honoring the server's ``Retry-After`` hint under a capped
      exponential backoff.  The default ``retries=0`` returns the
      :class:`~repro.api.schemas.ErrorEnvelope` to the caller untouched.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = sleep
        self._conn: http.client.HTTPConnection | None = None

    @classmethod
    def for_server(cls, server: Any, **kwargs: Any) -> "RemoteClient":
        """Client for a started gateway server (threaded or asyncio)."""
        host, port = server.address
        return cls(host, port, **kwargs)

    # -- transport ---------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _send(
        self, method: str, path: str, body: str | None, headers: dict[str, str]
    ) -> tuple[int, float | None, str]:
        """One request/response exchange: ``(status, retry_after_s, body)``."""
        for attempt in (0, 1):
            conn = self._conn
            reused = conn is not None
            if conn is None:
                conn = self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                text = response.read().decode()
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                # a stale keep-alive socket earns one reconnect-and-resend;
                # a fresh connection failing is a real transport error
                self.close()
                if attempt or not reused:
                    raise GatewayConnectionError(
                        f"{method} {path} failed: {exc!r}"
                    ) from exc
                continue
            return (
                response.status,
                _parse_retry_after(response.getheader("Retry-After")),
                text,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(
        self,
        method: str,
        path: str,
        body: str | None = None,
        *,
        accept: str = "application/json",
    ) -> str:
        headers = {"Accept": accept}
        if body is not None:
            headers["Content-Type"] = "application/json"
        shed_retries = 0
        while True:
            status, retry_after, text = self._send(method, path, body, headers)
            if status not in (429, 503) or shed_retries >= self.retries:
                return text
            # the server's hint dominates the exponential schedule, and
            # the cap dominates both
            delay = self.backoff_base_s * (2 ** shed_retries)
            if retry_after is not None:
                delay = max(delay, retry_after)
            self._sleep(min(delay, self.backoff_cap_s))
            shed_retries += 1

    def _call(self, method: str, path: str, body: str | None = None) -> Any:
        text = self._request(method, path, body)
        try:
            return s.from_json(text)
        except s.SchemaViolation as exc:
            raise GatewayConnectionError(
                f"unparseable response from {method} {path}: {exc}"
            ) from exc

    # -- sessions ----------------------------------------------------------------
    def create_session(
        self, session_id: str | None = None, *, model: str | None = None
    ) -> SessionInfo | ErrorEnvelope:
        request = CreateSessionRequest(session_id=session_id, model=model)
        return self._call("POST", "/v1/sessions", s.to_json(request))

    # -- chat --------------------------------------------------------------------
    def chat(self, session_id: str, message: str) -> ChatReply | ErrorEnvelope:
        return s.from_json(self.chat_json(session_id, message))

    def chat_json(self, session_id: str, message: str) -> str:
        import json as _json

        body = _json.dumps({"message": message})
        return self._request(
            "POST", f"/v1/sessions/{quote(session_id, safe='')}/chat", body
        )

    # -- query -------------------------------------------------------------------
    def query(self, request: QueryRequest) -> QueryReply | ErrorEnvelope:
        return self._call("POST", "/v1/query", s.to_json(request))

    def query_json(self, request: QueryRequest) -> str:
        return self._request("POST", "/v1/query", s.to_json(request))

    def query_csv(self, request: QueryRequest) -> str:
        return self._request(
            "POST", "/v1/query", s.to_json(request), accept="text/csv"
        )

    def sql(
        self,
        statement: str,
        *,
        explain: bool = False,
        page_size: int | None = None,
        cursor: str | None = None,
    ) -> QueryReply | ErrorEnvelope:
        """Run one SELECT through the gateway's sql dialect."""
        return self.query(QueryRequest(
            dialect="sql",
            sql=statement,
            explain=explain or None,
            page_size=page_size,
            cursor=cursor,
        ))

    # -- lineage -----------------------------------------------------------------
    def lineage(
        self, task_id: str, *, direction: str = "both", depth: int | None = None
    ) -> LineageReply | ErrorEnvelope:
        return s.from_json(
            self.lineage_json(task_id, direction=direction, depth=depth)
        )

    def lineage_json(
        self, task_id: str, *, direction: str = "both", depth: int | None = None
    ) -> str:
        path = f"/v1/lineage/{quote(task_id, safe='')}?direction={quote(direction)}"
        if depth is not None:
            path += f"&depth={depth}"
        return self._request("GET", path)

    # -- stats -------------------------------------------------------------------
    def stats(self) -> StatsReply | ErrorEnvelope:
        return self._call("GET", "/v1/stats")
