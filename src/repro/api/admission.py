"""Admission control for the gateway transports: shed early, shed cheap.

The asyncio transport (:mod:`repro.api.aio`) dispatches request handling
onto a sized executor pool, because gateway/tool execution is
synchronous CPU-bound Python.  That pool is the resource under
contention, so this module bounds it *before any gateway work happens*:

* **token-bucket rate limiting**, per client and per session — a noisy
  client (or one noisy session of a well-behaved client) gets
  ``RATE_LIMITED`` (HTTP 429) with a ``Retry-After`` telling it when a
  token will be available, and every other identity is untouched;
* **a bounded admission queue** — at most ``max_concurrency`` requests
  execute while ``max_queue_depth`` more wait for an executor slot;
  anything beyond that is shed with ``OVERLOADED`` (HTTP 503)
  immediately, which is what keeps queue depth (and therefore tail
  latency) bounded past saturation instead of collapsing;
* **graceful drain** — :meth:`AdmissionController.begin_drain` flips the
  controller into reject-new mode (``SERVICE_CLOSED``, HTTP 503) while
  :meth:`wait_idle` lets the transport hold the listener open until
  every admitted request has finished.

Decisions are O(1) under one lock, and the hot accept path allocates a
single :class:`AdmissionDecision`.  Clocks are injectable so refill
behavior is testable under a frozen clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.api.schemas import ErrorCode

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "ADMITTED",
]


class TokenBucket:
    """A token bucket with monotonic refill.

    ``rate`` tokens accrue per second up to ``burst``.  :meth:`try_take`
    returns ``0.0`` when a token was taken, else the seconds until one
    becomes available (the ``Retry-After`` hint).  Refill is computed
    lazily from the injected monotonic ``clock``; a clock that stalls
    (frozen test clock) accrues nothing, and a clock that jumps
    backwards is treated as zero elapsed time — tokens never accrue
    retroactively and never go negative.

    Not thread-safe on its own: the :class:`AdmissionController` holds
    its lock across bucket access.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        # a backwards clock contributes nothing, but the watermark moves
        # so a later recovery does not refill the lost interval twice
        self._last = now

    def try_take(self, now: float) -> float:
        """Take one token at time ``now``; 0.0 on success, else wait (s)."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check.

    ``admitted=True`` means the caller owns one concurrency slot and
    MUST :meth:`AdmissionController.release` it when the request
    finishes.  Otherwise ``code`` carries the stable shed reason
    (``RATE_LIMITED`` / ``OVERLOADED`` / ``SERVICE_CLOSED``) and
    ``retry_after_s`` the backoff hint.
    """

    admitted: bool
    code: str | None = None
    message: str | None = None
    retry_after_s: float | None = None


#: the one admitted decision (no per-request allocation on the happy path)
ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Bounds what the transport lets through to the executor pool.

    ``max_concurrency`` is the executor width (requests actually
    running); ``max_queue_depth`` is how many admitted requests may wait
    for a slot.  Per-client/per-session token buckets are created on
    first sight of an identity and pruned beyond ``max_tracked``
    identities (oldest first), so a scan of short-lived clients cannot
    grow memory without bound.
    """

    def __init__(
        self,
        *,
        max_concurrency: int,
        max_queue_depth: int = 128,
        client_rate: float | None = None,
        client_burst: float = 10.0,
        session_rate: float | None = None,
        session_burst: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        max_tracked: int = 4096,
    ):
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.client_rate = client_rate
        self.client_burst = client_burst
        self.session_rate = session_rate
        self.session_burst = session_burst
        self._clock = clock
        self._max_tracked = max_tracked
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._clients: dict[str, TokenBucket] = {}
        self._sessions: dict[str, TokenBucket] = {}
        self._active = 0
        self._draining = False
        # counters (under _lock)
        self._accepted = 0
        self._rate_limited = 0
        self._overloaded = 0
        self._drained = 0
        self._queued_high_watermark = 0

    # -- the accept path ---------------------------------------------------------
    def admit(
        self, *, client: str | None = None, session: str | None = None
    ) -> AdmissionDecision:
        """Decide one request's fate; O(1), before any gateway work."""
        now = self._clock()
        with self._lock:
            if self._draining:
                self._drained += 1
                return AdmissionDecision(
                    admitted=False,
                    code=ErrorCode.SERVICE_CLOSED,
                    message="gateway is draining; no new requests accepted",
                    retry_after_s=None,
                )
            # rate limits first: a limited identity must see 429 even
            # when capacity is free, or a noisy client learns nothing
            if self.session_rate is not None and session is not None:
                wait = self._bucket(
                    self._sessions, session, self.session_rate,
                    self.session_burst,
                ).try_take(now)
                if wait > 0:
                    self._rate_limited += 1
                    return AdmissionDecision(
                        admitted=False,
                        code=ErrorCode.RATE_LIMITED,
                        message=f"session {session!r} is over its rate limit",
                        retry_after_s=wait,
                    )
            if self.client_rate is not None and client is not None:
                wait = self._bucket(
                    self._clients, client, self.client_rate, self.client_burst
                ).try_take(now)
                if wait > 0:
                    self._rate_limited += 1
                    return AdmissionDecision(
                        admitted=False,
                        code=ErrorCode.RATE_LIMITED,
                        message=f"client {client!r} is over its rate limit",
                        retry_after_s=wait,
                    )
            if self._active >= self.max_concurrency + self.max_queue_depth:
                self._overloaded += 1
                return AdmissionDecision(
                    admitted=False,
                    code=ErrorCode.OVERLOADED,
                    message=(
                        f"admission queue full "
                        f"({self._active} in flight, "
                        f"limit {self.max_concurrency}+{self.max_queue_depth})"
                    ),
                    retry_after_s=None,
                )
            self._active += 1
            self._accepted += 1
            queued = self._active - self.max_concurrency
            if queued > self._queued_high_watermark:
                self._queued_high_watermark = queued
            return ADMITTED

    def release(self) -> None:
        """Return one admitted request's slot (call exactly once)."""
        with self._lock:
            if self._active <= 0:  # pragma: no cover - caller bug guard
                raise RuntimeError("release() without a matching admit()")
            self._active -= 1
            if self._active == 0:
                self._idle.notify_all()

    def _bucket(
        self,
        buckets: dict[str, TokenBucket],
        key: str,
        rate: float,
        burst: float,
    ) -> TokenBucket:
        bucket = buckets.get(key)
        if bucket is None:
            if len(buckets) >= self._max_tracked:
                # dicts iterate in insertion order: drop the oldest
                # identity, which a live client simply re-creates full
                buckets.pop(next(iter(buckets)))
            bucket = TokenBucket(rate, burst, clock=self._clock)
            buckets[key] = bucket
        return bucket

    # -- drain -------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Reject new requests from now on; in-flight ones keep their slots."""
        with self._lock:
            self._draining = True

    def end_drain(self) -> None:
        """Accept new requests again (a restarted transport reuses its
        controller, which must not stay wedged in reject-new mode)."""
        with self._lock:
            self._draining = False

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every admitted request released its slot."""
        with self._idle:
            return self._idle.wait_for(lambda: self._active == 0, timeout)

    # -- observability -----------------------------------------------------------
    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def snapshot(self) -> dict[str, Any]:
        """Counters for the gateway-stats resource (plain JSON values)."""
        with self._lock:
            return {
                "accepted": self._accepted,
                "rate_limited": self._rate_limited,
                "overloaded": self._overloaded,
                "drained": self._drained,
                "in_flight": self._active,
                "queued": max(0, self._active - self.max_concurrency),
                "queued_high_watermark": self._queued_high_watermark,
                "max_concurrency": self.max_concurrency,
                "max_queue_depth": self.max_queue_depth,
                "draining": self._draining,
            }
