"""Asyncio HTTP transport for the provenance gateway (stdlib only).

The threaded transport (:mod:`repro.api.http`) spends most of each
request's budget inside ``http.server`` — per-request handler objects,
``email``-based header parsing, one small unbuffered ``send()`` per
header line — and holds one OS thread per connection.  At interactive
scale (the ROADMAP's thousands of concurrent clients) that is the
bottleneck, so this module rebuilds the transport on
``asyncio.start_server``:

* **one event loop thread** owns all sockets: a lean hand-rolled
  HTTP/1.1 parser (request line + the four headers the gateway cares
  about), and exactly one ``write()`` per response;
* **a sized executor pool** runs the actual request handling —
  gateway/tool execution is synchronous CPU-bound Python, so the loop
  never executes it inline; it dispatches
  :func:`repro.api.routing.handle_request` (the same routing core the
  threaded transport uses, so replies are byte-identical by
  construction) onto ``executor_workers`` threads;
* **admission control before any work** — an
  :class:`~repro.api.admission.AdmissionController` bounds that pool:
  per-client/per-session token buckets shed with 429
  (``RATE_LIMITED``), a full admission queue sheds with 503
  (``OVERLOADED``), both decided O(1) on the loop thread before the
  body is even parsed, both carrying ``Retry-After``;
* **graceful drain** — ``stop()`` (also registered as an
  :meth:`AgentService.close` hook) flips admission into reject-new
  mode, lets every admitted request finish and flush its reply, and
  closes the listener *last*, so a draining gateway answers 503 instead
  of refusing connections.

``benchmarks/bench_async_gateway.py`` measures the result: sustained
req/s across a 1..128 client sweep, tail latencies, and bounded-queue
shedding past saturation.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASON_PHRASES
from typing import Any, TYPE_CHECKING

from repro.api.admission import AdmissionController
from repro.api.routing import (
    MAX_BODY_BYTES,
    WireRequest,
    WireResponse,
    error_response,
    handle_request,
    session_id_of,
)
from repro.api.schemas import ErrorCode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.gateway import ProvenanceGateway

__all__ = ["AsyncGatewayServer", "DEFAULT_EXECUTOR_WORKERS"]


def _default_workers() -> int:
    import os

    return max(4, min(32, (os.cpu_count() or 1) * 4))


#: executor width when none is configured: enough threads to overlap
#: LLM-endpoint waits, few enough that the GIL is not a mosh pit
DEFAULT_EXECUTOR_WORKERS = _default_workers()

_MAX_HEADER_BYTES = 64 * 1024


class _BadRequestLine(Exception):
    """The bytes on the socket are not parseable HTTP/1.1."""


def _encode_response(response: WireResponse, *, keep_alive: bool) -> bytes:
    reason = _REASON_PHRASES.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
    )
    if response.retry_after is not None:
        head += f"Retry-After: {response.retry_after}\r\n"
    if not keep_alive:
        head += "Connection: close\r\n"
    head += "\r\n"
    return head.encode("latin-1") + response.body


class _ParsedHead:
    """Request line + the headers the gateway cares about."""

    __slots__ = (
        "method", "target", "content_length", "accept", "keep_alive",
        "client_id",
    )

    def __init__(self, head: bytes):
        lines = head.split(b"\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith(b"HTTP/1."):
            raise _BadRequestLine(lines[0][:120].decode("latin-1", "replace"))
        self.method = parts[0].decode("latin-1")
        self.target = parts[1].decode("latin-1")
        self.content_length = 0
        self.accept = ""
        self.keep_alive = parts[2] != b"HTTP/1.0"
        self.client_id: str | None = None
        for line in lines[1:]:
            if not line:
                continue
            sep = line.find(b":")
            if sep < 0:
                continue
            name = line[:sep].strip().lower()
            if name == b"content-length":
                try:
                    self.content_length = int(line[sep + 1:].strip())
                except ValueError:
                    raise _BadRequestLine("bad Content-Length") from None
            elif name == b"accept":
                self.accept = line[sep + 1:].strip().decode("latin-1")
            elif name == b"connection":
                token = line[sep + 1:].strip().lower()
                if token == b"close":
                    self.keep_alive = False
                elif token == b"keep-alive":
                    self.keep_alive = True
            elif name == b"x-client-id":
                self.client_id = line[sep + 1:].strip().decode("latin-1")


class AsyncGatewayServer:
    """Lifecycle wrapper: an asyncio HTTP server on a daemon loop thread.

    Mirrors :class:`~repro.api.http.GatewayHTTPServer`'s contract —
    ``start()`` binds and returns only once the loop is serving,
    ``stop()``/``close()`` are idempotent, ``address``/``url`` report
    the bound socket, context-manager use works — and adds graceful
    drain plus admission control.  ``admission=None`` builds a
    controller bounding the executor (no rate limits); pass a
    configured :class:`AdmissionController` for per-client/per-session
    limits.  The controller's counters surface through
    ``gateway.stats()`` (the ``gateway-stats`` MCP resource).
    """

    def __init__(
        self,
        gateway: "ProvenanceGateway",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int | None = None,
        admission: AdmissionController | None = None,
        drain_timeout: float = 30.0,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self.executor_workers = executor_workers or DEFAULT_EXECUTOR_WORKERS
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_concurrency=self.executor_workers)
        )
        self.drain_timeout = drain_timeout
        self._lifecycle = threading.Lock()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._bound: tuple[str, int] | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- addresses ---------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._bound is None:
            raise RuntimeError("server is not started")
        return self._bound

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "AsyncGatewayServer":
        with self._lifecycle:
            if self._thread is not None:
                return self
            self._ready.clear()
            self._startup_error = None
            self.admission.end_drain()  # a restart un-wedges the drain
            self._executor = ThreadPoolExecutor(
                max_workers=self.executor_workers,
                thread_name_prefix="gateway-aio",
            )
            self._thread = threading.Thread(
                target=self._run_loop, name="gateway-aio-loop", daemon=True
            )
            self._thread.start()
            self._ready.wait()  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop; request paths never take it
            if self._startup_error is not None:
                error, self._startup_error = self._startup_error, None
                thread, self._thread = self._thread, None
                thread.join(timeout=5)  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop
                self._executor.shutdown(wait=False)  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop
                self._executor = None
                raise error
        service = getattr(self.gateway, "service", None)
        if service is not None and hasattr(service, "add_close_hook"):
            service.add_close_hook(self.stop)
        attach = getattr(self.gateway, "attach_admission", None)
        if attach is not None:
            attach(self.admission)
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection,
                    self.host,
                    self.port,
                    limit=256 * 1024,
                )
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._server = server
        sockname = server.sockets[0].getsockname()
        self._bound = (str(sockname[0]), int(sockname[1]))
        # readiness is signalled from INSIDE the running loop: when
        # start() returns, the loop is provably polling, not merely
        # scheduled to run
        loop.call_soon(self._ready.set)
        try:
            loop.run_forever()
        finally:
            try:
                loop.run_until_complete(self._shutdown_async())
            finally:
                loop.close()

    async def _shutdown_async(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5)
            except (asyncio.TimeoutError, Exception):  # noqa: BLE001; provlint: disable=exception-contract - best-effort close during shutdown
                pass
        # idle keep-alive connections (no request in flight) are parked
        # in readuntil(): cancel them so the loop can close cleanly
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def stop(self) -> None:
        """Graceful drain, then full shutdown.  Idempotent.

        New requests are shed with 503 the moment drain begins;
        admitted ones finish and flush their replies; the listener
        closes last (when the loop exits).
        """
        with self._lifecycle:
            thread, self._thread = self._thread, None
            if thread is None:
                return  # never started, or already stopped
            loop = self._loop
            executor, self._executor = self._executor, None
            self.admission.begin_drain()
            self.admission.wait_idle(self.drain_timeout)
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=max(5.0, self.drain_timeout))  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop
            if executor is not None:
                executor.shutdown(wait=True)  # provlint: disable=blocking-call-under-lock - lifecycle mutex serialises slow start/stop
            self._loop = None
            self._server = None
            self._bound = None

    #: the name the close-hook contract and tests use
    close = stop

    def __enter__(self) -> "AsyncGatewayServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- the connection loop -----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        peer = writer.get_extra_info("peername")
        peer_key = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        try:
            while True:
                try:
                    head_bytes = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    break
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer,
                        error_response(
                            ErrorCode.BAD_REQUEST,
                            f"headers too large (> {_MAX_HEADER_BYTES} bytes)",
                        ),
                        keep_alive=False,
                    )
                    break
                try:
                    head = _ParsedHead(head_bytes)
                except _BadRequestLine as exc:
                    await self._respond(
                        writer,
                        error_response(
                            ErrorCode.BAD_REQUEST, f"bad request: {exc}"
                        ),
                        keep_alive=False,
                    )
                    break
                if head.content_length < 0 or head.content_length > MAX_BODY_BYTES:
                    # refuse before reading: the connection is poisoned
                    # by the unread body, so close it after replying
                    await self._respond(
                        writer,
                        error_response(
                            ErrorCode.BAD_REQUEST,
                            f"body too large (> {MAX_BODY_BYTES} bytes)",
                        ),
                        keep_alive=False,
                    )
                    break
                body = b""
                if head.content_length:
                    try:
                        body = await reader.readexactly(head.content_length)
                    except (
                        asyncio.IncompleteReadError,
                        ConnectionResetError,
                    ):
                        break
                decision = self.admission.admit(
                    client=head.client_id or peer_key,
                    session=session_id_of(head.target),
                )
                if not decision.admitted:
                    retry_after = decision.retry_after_s
                    await self._respond(
                        writer,
                        error_response(
                            decision.code,
                            decision.message or "request shed",  # provlint: disable=falsy-or-default - empty shed message falls back to generic text
                            detail=(
                                {"retry_after_s": retry_after}
                                if retry_after is not None
                                else None
                            ),
                        ),
                        keep_alive=head.keep_alive,
                    )
                    if not head.keep_alive:
                        break
                    continue
                try:
                    response = await self._dispatch(
                        WireRequest(
                            method=head.method,
                            target=head.target,
                            body=body,
                            accept=head.accept,
                        )
                    )
                    try:
                        await self._respond(
                            writer, response, keep_alive=head.keep_alive
                        )
                    except (ConnectionResetError, BrokenPipeError):
                        break
                finally:
                    # released only after the reply is flushed: a drain
                    # waiting on wait_idle() must not stop the loop
                    # while an accepted request's bytes are unsent
                    self.admission.release()
                if not head.keep_alive:
                    break
        except asyncio.CancelledError:  # loop shutdown cancelled us
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001; provlint: disable=exception-contract - peer already gone
                pass

    async def _dispatch(self, request: WireRequest) -> WireResponse:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, handle_request, self.gateway, request
            )
        except Exception as exc:  # noqa: BLE001 - executor refused/died
            return error_response(ErrorCode.INTERNAL, repr(exc))

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        response: WireResponse,
        *,
        keep_alive: bool,
    ) -> None:
        writer.write(_encode_response(response, keep_alive=keep_alive))
        await writer.drain()
