"""Versioned request/response schemas for the provenance gateway.

The reference architecture puts the agent behind a service interface
that users and programs reach remotely (paper §2.3, §5.3).  Everything
that crosses that boundary is one of the frozen dataclasses in this
module, serialised with :func:`to_json` and parsed back with
:func:`from_json`.  The contract the gateway's tests (and the parity
benchmark) enforce:

* **round-trip exactness** — ``from_json(to_json(x)) == x`` for every
  schema, property-tested with hypothesis over arbitrary field values;
* **canonical bytes** — :func:`to_json` emits sorted-key, separator-free
  JSON, so the in-process client and the HTTP transport produce
  *byte-identical* payloads for the same request;
* **no tracebacks** — malformed payloads raise
  :class:`SchemaViolation`, which the gateway maps to a stable
  :class:`ErrorEnvelope` code (:data:`ErrorCode`), never a stack trace.

Schemas are versioned by the ``"type"`` tag each document carries
(``"v1/chat_request"`` etc.); a future ``v2`` adds new tags without
breaking ``v1`` consumers.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.errors import ReproError

__all__ = [
    "API_VERSION",
    "ErrorCode",
    "SchemaViolation",
    "FramePayload",
    "CreateSessionRequest",
    "SessionInfo",
    "ChatRequest",
    "ChatReply",
    "Cursor",
    "Page",
    "QueryRequest",
    "QueryReply",
    "LineageRequest",
    "LineageReply",
    "StatsReply",
    "ErrorEnvelope",
    "DIALECTS",
    "to_json",
    "to_jsonable",
    "from_json",
    "from_jsonable",
    "schema_type",
]

#: the one wire version this module defines
API_VERSION = "v1"

#: query dialects the unified ``/v1/query`` surface accepts
DIALECTS = ("filter", "pipeline", "graph", "sql")


class SchemaViolation(ReproError):
    """A payload does not satisfy its schema (wrong/missing/unknown field)."""


class ErrorCode:
    """Stable error codes carried by :class:`ErrorEnvelope`.

    These are wire contract: clients branch on them, so they never
    change meaning.  HTTP maps them to status codes
    (:data:`repro.api.http.STATUS_BY_CODE`).
    """

    MALFORMED_JSON = "MALFORMED_JSON"
    SCHEMA_VIOLATION = "SCHEMA_VIOLATION"
    BAD_REQUEST = "BAD_REQUEST"
    UNKNOWN_DIALECT = "UNKNOWN_DIALECT"
    UNKNOWN_SESSION = "UNKNOWN_SESSION"
    SESSION_EXISTS = "SESSION_EXISTS"
    QUERY_SYNTAX = "QUERY_SYNTAX"
    QUERY_EXECUTION = "QUERY_EXECUTION"
    UNKNOWN_TASK = "UNKNOWN_TASK"
    CURSOR_INVALID = "CURSOR_INVALID"
    CURSOR_STALE = "CURSOR_STALE"
    NOT_FOUND = "NOT_FOUND"
    METHOD_NOT_ALLOWED = "METHOD_NOT_ALLOWED"
    NOT_ACCEPTABLE = "NOT_ACCEPTABLE"
    RATE_LIMITED = "RATE_LIMITED"
    OVERLOADED = "OVERLOADED"
    SERVICE_CLOSED = "SERVICE_CLOSED"
    INTERNAL = "INTERNAL"

    ALL = (
        MALFORMED_JSON,
        SCHEMA_VIOLATION,
        BAD_REQUEST,
        UNKNOWN_DIALECT,
        UNKNOWN_SESSION,
        SESSION_EXISTS,
        QUERY_SYNTAX,
        QUERY_EXECUTION,
        UNKNOWN_TASK,
        CURSOR_INVALID,
        CURSOR_STALE,
        NOT_FOUND,
        METHOD_NOT_ALLOWED,
        NOT_ACCEPTABLE,
        RATE_LIMITED,
        OVERLOADED,
        SERVICE_CLOSED,
        INTERNAL,
    )


# ---------------------------------------------------------------------------
# field validators (strict: wrong types raise SchemaViolation)
# ---------------------------------------------------------------------------


def _plain(value: Any) -> Any:
    """Coerce numpy scalars / odd leaves into JSON-plain python values."""
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        # NaN is not valid JSON and never equal to itself; provenance
        # frames use it for missing values -> map to null on the wire
        return None if value != value else value
    # numpy scalar family without importing numpy here
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _plain(item())
        except Exception:  # noqa: BLE001; provlint: disable=exception-contract - fall through to str
            pass
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return str(value)


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (str, bool, int, float))


def _is_plain(value: Any) -> bool:
    """True for any JSON-plain value (scalar, or nested list/object)."""
    if _is_scalar(value):
        return True
    if isinstance(value, list):
        return all(_is_plain(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _is_plain(v) for k, v in value.items())
    return False


def _expect(cond: bool, what: str) -> None:
    if not cond:
        raise SchemaViolation(what)


def _str(data: Mapping[str, Any], name: str) -> str:
    v = data.get(name)
    _expect(isinstance(v, str), f"field {name!r} must be a string, got {v!r}")
    return v


def _opt_str(data: Mapping[str, Any], name: str) -> str | None:
    v = data.get(name)
    if v is None:
        return None
    _expect(isinstance(v, str), f"field {name!r} must be a string or null")
    return v


def _bool(data: Mapping[str, Any], name: str, default: bool | None = None) -> bool:
    v = data.get(name, default)
    _expect(isinstance(v, bool), f"field {name!r} must be a boolean")
    return v


def _opt_bool(data: Mapping[str, Any], name: str) -> bool | None:
    v = data.get(name)
    if v is None:
        return None
    _expect(isinstance(v, bool), f"field {name!r} must be a boolean or null")
    return v


def _opt_int(data: Mapping[str, Any], name: str) -> int | None:
    v = data.get(name)
    if v is None:
        return None
    _expect(isinstance(v, int) and not isinstance(v, bool),
            f"field {name!r} must be an integer or null")
    return v


def _int(data: Mapping[str, Any], name: str) -> int:
    v = data.get(name)
    _expect(isinstance(v, int) and not isinstance(v, bool),
            f"field {name!r} must be an integer")
    return v


def _opt_dict(data: Mapping[str, Any], name: str) -> dict[str, Any] | None:
    v = data.get(name)
    if v is None:
        return None
    _expect(isinstance(v, dict), f"field {name!r} must be an object or null")
    return v


def _dict(data: Mapping[str, Any], name: str) -> dict[str, Any]:
    v = data.get(name, None)
    _expect(isinstance(v, dict), f"field {name!r} must be an object")
    return v


def _check_keys(data: Mapping[str, Any], cls: type) -> None:
    allowed = {f.name for f in fields(cls)} | {"type"}
    unknown = set(data) - allowed
    _expect(not unknown,
            f"unknown field(s) for {cls.__name__}: {', '.join(sorted(unknown))}")


# ---------------------------------------------------------------------------
# payload fragments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FramePayload:
    """Wire form of a tabular result: column names + row tuples."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    @classmethod
    def from_frame(cls, frame: Any) -> "FramePayload":
        """Build from a :class:`repro.dataframe.DataFrame` (values made plain)."""
        columns = tuple(frame.columns)
        rows = tuple(
            tuple(_plain(row[c]) for c in columns) for row in frame.to_dicts()
        )
        return cls(columns=columns, rows=rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_frame(self) -> Any:
        from repro.dataframe import DataFrame

        return DataFrame.from_records(self.to_dicts())

    def to_csv(self) -> str:
        """RFC-4180-ish CSV (the ``text/csv`` content negotiation form)."""
        def cell(v: Any) -> str:
            if v is None:
                return ""
            s = str(v)
            if any(ch in s for ch in ',"\n\r'):
                s = '"' + s.replace('"', '""') + '"'
            return s

        lines = [",".join(cell(c) for c in self.columns)]
        lines.extend(",".join(cell(v) for v in row) for row in self.rows)
        return "\r\n".join(lines) + "\r\n"

    def _jsonable(self) -> dict[str, Any]:
        return {
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
        }

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "FramePayload":
        _check_keys(data, cls)
        cols = data.get("columns")
        rows = data.get("rows")
        _expect(isinstance(cols, list) and all(isinstance(c, str) for c in cols),
                "field 'columns' must be a list of strings")
        _expect(isinstance(rows, list), "field 'rows' must be a list")
        parsed_rows = []
        for i, row in enumerate(rows):
            _expect(isinstance(row, list) and len(row) == len(cols),
                    f"row {i} must be a list of {len(cols)} values")
            _expect(all(_is_plain(v) for v in row),
                    f"row {i} must contain only JSON-plain values")
            parsed_rows.append(tuple(row))
        return cls(columns=tuple(cols), rows=tuple(parsed_rows))


@dataclass(frozen=True)
class Page:
    """Pagination envelope attached to frame-shaped query results."""

    offset: int
    total: int
    returned: int
    next_cursor: str | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "Page":
        _check_keys(data, cls)
        return cls(
            offset=_int(data, "offset"),
            total=_int(data, "total"),
            returned=_int(data, "returned"),
            next_cursor=_opt_str(data, "next_cursor"),
        )


@dataclass(frozen=True)
class Cursor:
    """Opaque-on-the-wire resume point for paginated query results.

    ``fingerprint`` pins the cursor to the exact query that produced it;
    ``version`` pins it to the store version the first page was computed
    against — any write in between invalidates the cursor
    (:data:`ErrorCode.CURSOR_STALE`), because offsets into a changed
    result set are meaningless.
    """

    fingerprint: str
    offset: int
    version: int

    def encode(self) -> str:
        raw = json.dumps(
            {"f": self.fingerprint, "o": self.offset, "v": self.version},
            sort_keys=True, separators=(",", ":"),
        ).encode()
        return base64.urlsafe_b64encode(raw).decode().rstrip("=")

    @classmethod
    def decode(cls, token: str) -> "Cursor":
        try:
            padded = token + "=" * (-len(token) % 4)
            data = json.loads(base64.urlsafe_b64decode(padded.encode()))
            cursor = cls(
                fingerprint=str(data["f"]),
                offset=int(data["o"]),
                version=int(data["v"]),
            )
        except Exception as exc:  # noqa: BLE001 - any garbage is invalid
            raise SchemaViolation(f"invalid cursor token: {exc}") from None
        # tokens are client-forgeable: a negative offset would wrap
        # python slicing around the result set
        if cursor.offset < 0 or cursor.version < 0:
            raise SchemaViolation("invalid cursor token: negative field")
        return cursor


# ---------------------------------------------------------------------------
# requests / responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CreateSessionRequest:
    session_id: str | None = None
    model: str | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "CreateSessionRequest":
        _check_keys(data, cls)
        return cls(
            session_id=_opt_str(data, "session_id"),
            model=_opt_str(data, "model"),
        )


@dataclass(frozen=True)
class SessionInfo:
    session_id: str
    model: str
    turn_count: int = 0

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "SessionInfo":
        _check_keys(data, cls)
        return cls(
            session_id=_str(data, "session_id"),
            model=_str(data, "model"),
            turn_count=_int(data, "turn_count") if "turn_count" in data else 0,
        )


@dataclass(frozen=True)
class ChatRequest:
    session_id: str
    message: str

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "ChatRequest":
        _check_keys(data, cls)
        return cls(
            session_id=_str(data, "session_id"),
            message=_str(data, "message"),
        )


@dataclass(frozen=True)
class ChatReply:
    """Deterministic reply anatomy (text, code, table, chart) for one turn.

    Volatile per-call details (LLM latency, cache hit/miss) stay off the
    wire so the in-process and HTTP transports return byte-identical
    payloads for the same conversation.
    """

    session_id: str
    text: str
    intent: str
    ok: bool = True
    code: str | None = None
    error: str | None = None
    chart: str | None = None
    table: FramePayload | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "ChatReply":
        _check_keys(data, cls)
        table = data.get("table")
        return cls(
            session_id=_str(data, "session_id"),
            text=_str(data, "text"),
            intent=_str(data, "intent"),
            ok=_bool(data, "ok", True),
            code=_opt_str(data, "code"),
            error=_opt_str(data, "error"),
            chart=_opt_str(data, "chart"),
            table=FramePayload._parse(table) if table is not None else None,
        )


@dataclass(frozen=True)
class QueryRequest:
    """One query, in one of four dialects, through one surface.

    * ``dialect="filter"`` — a Mongo-style ``filter`` document plus
      optional ``sort`` / ``limit`` (the Query API surface);
    * ``dialect="pipeline"`` — pandas-like query ``code`` compiled
      through the query IR (the agent's generated-code surface);
    * ``dialect="graph"`` — a lineage traversal named by ``operation``
      (+ ``task_id`` / ``target`` / ``depth`` / ``workflow_id``);
    * ``dialect="sql"`` — a SELECT statement in ``sql``, compiled onto
      the same query IR as the pipeline dialect (shared cache entries);
      ``explain=True`` returns the compiled plan instead of executing.

    ``page_size`` / ``cursor`` paginate frame-shaped results in any
    dialect.
    """

    dialect: str
    filter: dict[str, Any] | None = None
    sort: tuple[tuple[str, int], ...] | None = None
    limit: int | None = None
    code: str | None = None
    sql: str | None = None
    explain: bool | None = None
    operation: str | None = None
    task_id: str | None = None
    target: str | None = None
    depth: int | None = None
    workflow_id: str | None = None
    page_size: int | None = None
    cursor: str | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "QueryRequest":
        _check_keys(data, cls)
        sort = data.get("sort")
        parsed_sort: tuple[tuple[str, int], ...] | None = None
        if sort is not None:
            _expect(isinstance(sort, list), "field 'sort' must be a list")
            pairs = []
            for item in sort:
                _expect(
                    isinstance(item, list) and len(item) == 2
                    and isinstance(item[0], str)
                    and isinstance(item[1], int) and not isinstance(item[1], bool)
                    and item[1] in (1, -1),
                    "each sort entry must be [field, 1|-1]",
                )
                pairs.append((item[0], item[1]))
            parsed_sort = tuple(pairs)
        return cls(
            dialect=_str(data, "dialect"),
            filter=_opt_dict(data, "filter"),
            sort=parsed_sort,
            limit=_opt_int(data, "limit"),
            code=_opt_str(data, "code"),
            sql=_opt_str(data, "sql"),
            explain=_opt_bool(data, "explain"),
            operation=_opt_str(data, "operation"),
            task_id=_opt_str(data, "task_id"),
            target=_opt_str(data, "target"),
            depth=_opt_int(data, "depth"),
            workflow_id=_opt_str(data, "workflow_id"),
            page_size=_opt_int(data, "page_size"),
            cursor=_opt_str(data, "cursor"),
        )

    def _jsonable(self) -> dict[str, Any]:
        out = _default_jsonable(self)
        if self.sort is not None:
            out["sort"] = [list(p) for p in self.sort]
        return out


@dataclass(frozen=True)
class QueryReply:
    """Result of one :class:`QueryRequest`, shape-tagged by ``kind``.

    ``kind="frame"`` carries ``frame`` (+ ``page``); ``kind="scalar"``
    carries ``scalar``; ``kind="records"`` carries ``records`` (list of
    grouped/aggregated result objects).
    """

    dialect: str
    kind: str
    summary: str | None = None
    frame: FramePayload | None = None
    scalar: Any = None
    records: tuple[dict[str, Any], ...] | None = None
    page: Page | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "QueryReply":
        _check_keys(data, cls)
        frame = data.get("frame")
        page = data.get("page")
        records = data.get("records")
        parsed_records: tuple[dict[str, Any], ...] | None = None
        if records is not None:
            _expect(isinstance(records, list)
                    and all(isinstance(r, dict) for r in records),
                    "field 'records' must be a list of objects")
            parsed_records = tuple(records)
        scalar = data.get("scalar")
        _expect(_is_scalar(scalar) or isinstance(scalar, (list, dict)),
                "field 'scalar' must be a JSON value")
        return cls(
            dialect=_str(data, "dialect"),
            kind=_str(data, "kind"),
            summary=_opt_str(data, "summary"),
            frame=FramePayload._parse(frame) if frame is not None else None,
            scalar=scalar,
            records=parsed_records,
            page=Page._parse(page) if page is not None else None,
        )

    def _jsonable(self) -> dict[str, Any]:
        out = _default_jsonable(self)
        if self.records is not None:
            out["records"] = [dict(r) for r in self.records]
        return out


@dataclass(frozen=True)
class LineageRequest:
    task_id: str
    direction: str = "both"  # "upstream" | "downstream" | "both"
    depth: int | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "LineageRequest":
        _check_keys(data, cls)
        return cls(
            task_id=_str(data, "task_id"),
            direction=_str(data, "direction") if "direction" in data else "both",
            depth=_opt_int(data, "depth"),
        )


@dataclass(frozen=True)
class LineageReply:
    task_id: str
    upstream: tuple[str, ...] = ()
    downstream: tuple[str, ...] = ()
    node: dict[str, Any] | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "LineageReply":
        _check_keys(data, cls)
        up = data.get("upstream", [])
        down = data.get("downstream", [])
        for name, v in (("upstream", up), ("downstream", down)):
            _expect(isinstance(v, list) and all(isinstance(t, str) for t in v),
                    f"field {name!r} must be a list of strings")
        return cls(
            task_id=_str(data, "task_id"),
            upstream=tuple(up),
            downstream=tuple(down),
            node=_opt_dict(data, "node"),
        )

    def _jsonable(self) -> dict[str, Any]:
        out = _default_jsonable(self)
        out["upstream"] = list(self.upstream)
        out["downstream"] = list(self.downstream)
        return out


@dataclass(frozen=True)
class StatsReply:
    """Gateway-level serving snapshot (also the MCP serving resource).

    ``endpoints`` carries per-endpoint latency percentiles (same shape
    as ``LLMServer.stats()``: ``requests`` / ``latency_p50_s`` /
    ``latency_p90_s`` / ``latency_p99_s`` / ``latency_max_s``);
    ``admission`` carries the transport's admission-control counters
    (accepted / rate_limited / overloaded / queued high watermark) when
    an :class:`~repro.api.admission.AdmissionController` is attached;
    ``pushdown`` carries per-query operator-pushdown decisions for the
    pipeline/sql dialects (``decisions`` counters keyed
    ``pushed:<mode>`` / ``fallback:<mode>`` / ``classic`` /
    ``cache-hit``, scan/payload totals, and the ``last`` decision).
    """

    sessions: int
    turns_completed: int
    requests: dict[str, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    query_cache: dict[str, Any] = field(default_factory=dict)
    llm: dict[str, Any] = field(default_factory=dict)
    endpoints: dict[str, Any] = field(default_factory=dict)
    admission: dict[str, Any] = field(default_factory=dict)
    pushdown: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "StatsReply":
        _check_keys(data, cls)
        return cls(
            sessions=_int(data, "sessions"),
            turns_completed=_int(data, "turns_completed"),
            requests=_dict(data, "requests") if "requests" in data else {},
            errors=_dict(data, "errors") if "errors" in data else {},
            query_cache=_dict(data, "query_cache") if "query_cache" in data else {},
            llm=_dict(data, "llm") if "llm" in data else {},
            endpoints=_dict(data, "endpoints") if "endpoints" in data else {},
            admission=_dict(data, "admission") if "admission" in data else {},
            pushdown=_dict(data, "pushdown") if "pushdown" in data else {},
        )


@dataclass(frozen=True)
class ErrorEnvelope:
    """The one failure shape: a stable code, a message, optional detail."""

    code: str
    message: str
    detail: dict[str, Any] | None = None

    @classmethod
    def _parse(cls, data: Mapping[str, Any]) -> "ErrorEnvelope":
        _check_keys(data, cls)
        code = _str(data, "code")
        _expect(code in ErrorCode.ALL, f"unknown error code {code!r}")
        return cls(
            code=code,
            message=_str(data, "message"),
            detail=_opt_dict(data, "detail"),
        )


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------

#: type tag -> schema class (the dispatch table for :func:`from_json`)
SCHEMA_TYPES: dict[str, type] = {
    f"{API_VERSION}/create_session_request": CreateSessionRequest,
    f"{API_VERSION}/session_info": SessionInfo,
    f"{API_VERSION}/chat_request": ChatRequest,
    f"{API_VERSION}/chat_reply": ChatReply,
    f"{API_VERSION}/query_request": QueryRequest,
    f"{API_VERSION}/query_reply": QueryReply,
    f"{API_VERSION}/lineage_request": LineageRequest,
    f"{API_VERSION}/lineage_reply": LineageReply,
    f"{API_VERSION}/stats_reply": StatsReply,
    f"{API_VERSION}/error": ErrorEnvelope,
    f"{API_VERSION}/frame": FramePayload,
    f"{API_VERSION}/page": Page,
}

_TYPE_BY_CLASS = {cls: tag for tag, cls in SCHEMA_TYPES.items()}


def schema_type(obj: Any) -> str:
    """The wire type tag (``"v1/..."``) for a schema instance."""
    try:
        return _TYPE_BY_CLASS[type(obj)]
    except KeyError:
        raise SchemaViolation(f"not an API schema: {type(obj).__name__}") from None


def _default_jsonable(obj: Any) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, FramePayload):
            value = value._jsonable()
        elif isinstance(value, Page):
            value = _default_jsonable(value)
        out[f.name] = value
    return out


def to_jsonable(obj: Any) -> dict[str, Any]:
    """Schema instance -> plain dict carrying its ``"type"`` tag."""
    tag = schema_type(obj)
    maker = getattr(obj, "_jsonable", None)
    data = maker() if maker is not None else _default_jsonable(obj)
    data["type"] = tag
    return data


def to_json(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, no NaN.

    Canonical bytes are the parity contract: the in-process client and
    the HTTP server both emit exactly this text for the same response.
    """
    return json.dumps(
        to_jsonable(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def from_jsonable(data: Any, expected: type | None = None) -> Any:
    """Parse a tagged payload dict into its schema instance (strict)."""
    if not isinstance(data, Mapping):
        raise SchemaViolation(
            f"payload must be a JSON object, got {type(data).__name__}"
        )
    tag = data.get("type")
    if expected is not None and tag is None:
        # tag-less payloads are accepted when the route implies the type
        # (e.g. the body of POST /v1/sessions/{id}/chat)
        return expected._parse(data)
    if not isinstance(tag, str) or tag not in SCHEMA_TYPES:
        raise SchemaViolation(f"unknown payload type {tag!r}")
    cls = SCHEMA_TYPES[tag]
    if expected is not None and cls is not expected:
        raise SchemaViolation(
            f"expected {_TYPE_BY_CLASS[expected]!r}, got {tag!r}"
        )
    return cls._parse(data)


def from_json(text: str | bytes, expected: type | None = None) -> Any:
    """JSON text -> schema instance; :class:`SchemaViolation` on bad input."""
    try:
        data = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise SchemaViolation(f"malformed JSON: {exc}") from None
    return from_jsonable(data, expected)


def render_query_csv(reply: Any) -> tuple[str, str]:
    """Content-negotiated ``text/csv`` rendering of a query outcome.

    Returns ``(content_type, body)``.  Frame-shaped replies render as
    CSV; every other outcome (scalar results, error envelopes) renders
    as its canonical JSON with the appropriate content type, so the
    in-process client and the HTTP transport emit identical bytes.
    """
    if isinstance(reply, QueryReply) and reply.frame is not None:
        return "text/csv", reply.frame.to_csv()
    if isinstance(reply, QueryReply):
        envelope = ErrorEnvelope(
            code=ErrorCode.NOT_ACCEPTABLE,
            message=(
                f"text/csv requested but the result kind is "
                f"{reply.kind!r}, not a frame"
            ),
        )
        return "application/json", to_json(envelope)
    return "application/json", to_json(reply)
