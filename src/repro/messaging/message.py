"""Message envelope shared by all brokers.

Regardless of the underlying broker, all provenance messages adhere to a
common schema (paper §2.3); the envelope carries routing metadata while
``payload`` holds the task-provenance document itself.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

_counter = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """A single published message.

    Attributes
    ----------
    topic:
        Dot-separated routing key, e.g. ``"provenance.task"``.
    payload:
        JSON-serialisable message body.
    published_at:
        Hub-side timestamp (seconds).
    seq:
        Monotonic sequence number assigned at publish time; consumers can
        rely on it for per-broker total ordering.
    headers:
        Optional routing/diagnostic metadata (e.g. anomaly tags).
    """

    topic: str
    payload: Mapping[str, Any]
    published_at: float = 0.0
    seq: int = field(default_factory=lambda: next(_counter))
    headers: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "topic": self.topic,
                "payload": dict(self.payload),
                "published_at": self.published_at,
                "seq": self.seq,
                "headers": dict(self.headers),
            },
            sort_keys=True,
            default=str,
        )

    @classmethod
    def from_json(cls, text: str) -> "Envelope":
        doc = json.loads(text)
        return cls(
            topic=doc["topic"],
            payload=doc["payload"],
            published_at=doc.get("published_at", 0.0),
            seq=doc.get("seq", 0),
            headers=doc.get("headers", {}),
        )

    def size_bytes(self) -> int:
        """Approximate wire size; drives the broker cost models."""
        return len(self.to_json().encode("utf-8"))
