"""Client-side message buffering with configurable flush strategies.

To reduce interference with HPC applications, instrumented tasks do not
publish provenance per message: they append to an in-memory buffer that
flushes in bulk (paper §2.3 / §4.1).  Strategies:

* :class:`SizeFlush` — flush when the buffer holds N messages;
* :class:`IntervalFlush` — flush when the clock says the buffer is older
  than T seconds;
* :class:`HybridFlush` — whichever triggers first.

Flushes also happen explicitly on :meth:`MessageBuffer.flush` and on
:meth:`MessageBuffer.close` so no message is lost at workflow shutdown.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Any, Mapping

from repro.messaging.broker import Broker
from repro.utils.clock import Clock, VirtualClock

__all__ = ["FlushStrategy", "SizeFlush", "IntervalFlush", "HybridFlush", "MessageBuffer"]


class FlushStrategy(ABC):
    """Decides whether a buffer should flush after an append."""

    @abstractmethod
    def should_flush(self, pending: int, oldest_age_s: float) -> bool:
        ...


class SizeFlush(FlushStrategy):
    def __init__(self, max_messages: int):
        if max_messages < 1:
            raise ValueError("max_messages must be >= 1")
        self.max_messages = max_messages

    def should_flush(self, pending: int, oldest_age_s: float) -> bool:
        return pending >= self.max_messages


class IntervalFlush(FlushStrategy):
    def __init__(self, max_age_s: float):
        if max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        self.max_age_s = max_age_s

    def should_flush(self, pending: int, oldest_age_s: float) -> bool:
        return pending > 0 and oldest_age_s >= self.max_age_s


class HybridFlush(FlushStrategy):
    def __init__(self, max_messages: int, max_age_s: float):
        self._size = SizeFlush(max_messages)
        self._interval = IntervalFlush(max_age_s)

    def should_flush(self, pending: int, oldest_age_s: float) -> bool:
        return self._size.should_flush(pending, oldest_age_s) or (
            self._interval.should_flush(pending, oldest_age_s)
        )


class MessageBuffer:
    """Accumulates payloads for one topic and flushes them in batches."""

    def __init__(
        self,
        broker: Broker,
        topic: str,
        strategy: FlushStrategy | None = None,
        clock: Clock | None = None,
    ):
        self.broker = broker
        self.topic = topic
        # explicit None checks: a caller's strategy/clock may compare
        # falsy (e.g. a clock at time zero) and must not be replaced
        self.strategy = strategy if strategy is not None else SizeFlush(64)
        self.clock = clock if clock is not None else VirtualClock()
        self._pending: list[Mapping[str, Any]] = []
        self._oldest_at: float | None = None
        self._last_task_id: str | None = None
        self._lock = threading.Lock()
        # flushed batches queue here and are published OUTSIDE the lock
        # (the broker delivers synchronously to subscriber callbacks; a
        # callback that re-enters this buffer must not deadlock on the
        # non-reentrant lock — same enqueue-then-drain split as
        # InProcessBroker)
        self._outbox: list[list[Mapping[str, Any]]] = []
        self._draining = False
        self.flush_count = 0
        self.appended_count = 0

    def append(self, payload: Mapping[str, Any]) -> bool:
        """Add a payload; returns True if this append triggered a flush."""
        with self._lock:
            self._pending.append(payload)
            self.appended_count += 1
            task_id = payload.get("task_id")
            if task_id is not None:
                self._last_task_id = str(task_id)
            if self._oldest_at is None:
                self._oldest_at = self.clock.now()
            flushed = self.strategy.should_flush(
                len(self._pending), self._age()
            )
            if flushed:
                self._enqueue_flush_locked()
        if flushed:
            self._drain_outbox()
        return flushed

    def poll(self) -> bool:
        """Time-based check (call periodically); flushes if the buffer aged out."""
        with self._lock:
            flushed = bool(self._pending) and self.strategy.should_flush(
                len(self._pending), self._age()
            )
            if flushed:
                self._enqueue_flush_locked()
        if flushed:
            self._drain_outbox()
        return flushed

    def flush(self) -> int:
        """Flush unconditionally; returns the number of messages published."""
        with self._lock:
            n = len(self._pending)
            if n:
                self._enqueue_flush_locked()
        if n:
            self._drain_outbox()
        return n

    def close(self) -> None:
        self.flush()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def last_task_id(self) -> str | None:
        """``task_id`` of the most recently appended payload, if any.

        Retained across flushes so producers (e.g. the workflow engine)
        can correlate the task they just emitted without reaching into
        the buffer's internals or depending on flush timing.
        """
        with self._lock:
            return self._last_task_id

    def _age(self) -> float:
        if self._oldest_at is None:
            return 0.0
        return self.clock.now() - self._oldest_at

    def _enqueue_flush_locked(self) -> None:
        """Move the pending batch to the outbox (caller holds the lock)."""
        self._outbox.append(self._pending)
        self._pending = []
        self._oldest_at = None
        self.flush_count += 1

    def _drain_outbox(self) -> None:
        """Publish queued batches with the lock released.

        Single-drainer: the thread that flips ``_draining`` publishes
        every batch in the outbox, including batches enqueued while it
        was publishing (a subscriber callback that re-enters ``append``
        only queues; its batch is delivered by the active drainer, in
        order, without re-acquiring the lock around broker delivery).
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
        try:
            while True:
                with self._lock:
                    if not self._outbox:
                        self._draining = False
                        return
                    batch = self._outbox.pop(0)
                self.broker.publish_batch(self.topic, batch)
        except BaseException:
            with self._lock:
                self._draining = False
            raise
