"""Brokers: thread-safe topic pub/sub with pluggable cost profiles.

:class:`InProcessBroker` delivers synchronously to callback subscribers
(deterministic, easy to test) while remaining thread-safe for the
workflow engine's worker threads.  A :class:`BrokerProfile` attaches a
*simulated* cost model — per-publish latency, per-byte cost, and batch
amortisation — mirroring the trade-offs the paper names for Redis
(low-latency, minimal setup), Kafka (high-throughput batching), and
Mofka (RDMA-optimised transport).  Costs accrue on a virtual clock so
benchmarks can compare brokers without real network I/O.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.errors import BrokerClosedError
from repro.messaging.message import Envelope
from repro.messaging.pubsub import topic_matches, validate_pattern, validate_topic
from repro.utils.clock import Clock, VirtualClock

__all__ = [
    "Broker",
    "BrokerProfile",
    "InProcessBroker",
    "Subscription",
    "REDIS_LIKE",
    "KAFKA_LIKE",
    "MOFKA_LIKE",
]


@dataclass(frozen=True)
class BrokerProfile:
    """Simulated transport cost model.

    ``batch_overhead_s`` is paid once per publish *call* (request/ack
    round trip), ``per_message_s`` once per message inside the call, and
    ``per_byte_s`` scales with payload size.  Large batches therefore
    amortise the call overhead — which is exactly Kafka's trade-off:
    expensive round trips, cheap records.
    """

    name: str
    per_message_s: float
    per_byte_s: float
    batch_overhead_s: float

    def batch_cost(self, sizes: Iterable[int]) -> float:
        sizes = list(sizes)
        return (
            self.batch_overhead_s
            + len(sizes) * self.per_message_s
            + sum(sizes) * self.per_byte_s
        )


# Profiles express *relative* behaviour (paper §2.3): Redis — cheap
# round trips, fine for singles with minimal setup; Kafka — expensive
# round trips but tiny per-record cost, so batch amortisation wins at
# volume; Mofka — RDMA-like, cheapest overall on tightly coupled HPC
# networks.
REDIS_LIKE = BrokerProfile("redis-like", 50e-6, 2e-9, 10e-6)
KAFKA_LIKE = BrokerProfile("kafka-like", 10e-6, 0.5e-9, 400e-6)
MOFKA_LIKE = BrokerProfile("mofka-like", 5e-6, 0.2e-9, 2e-6)


@dataclass
class Subscription:
    """Handle returned by :meth:`Broker.subscribe`; use to unsubscribe.

    ``batch_callback`` is optional: subscribers that can consume a whole
    batch in one call (e.g. the Provenance Keeper's batched upsert path)
    receive one ``batch_callback(envelopes)`` per matching batch publish
    instead of N ``callback(envelope)`` invocations.

    The private fields implement out-of-lock delivery: matching
    envelopes are *enqueued* to ``_pending`` under the broker lock
    (which fixes the per-subscription order), then delivered outside it
    by whichever publisher thread owns the ``_delivering`` flag — so a
    slow consumer convoys neither other publishers nor other
    subscriptions.
    """

    pattern: str
    callback: Callable[[Envelope], None]
    sid: int
    batch_callback: Callable[[list[Envelope]], None] | None = None
    #: FIFO of ("single", Envelope) / ("batch", [Envelope, ...]) items
    _pending: deque = field(default_factory=deque, repr=False)
    #: True while one thread is draining ``_pending`` (others enqueue only)
    _delivering: bool = field(default=False, repr=False)
    _dlock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class Broker(ABC):
    """Interface every hub backend implements."""

    @abstractmethod
    def publish(self, topic: str, payload: Mapping[str, Any], **headers: Any) -> Envelope:
        ...

    @abstractmethod
    def publish_batch(self, topic: str, payloads: Iterable[Mapping[str, Any]]) -> list[Envelope]:
        ...

    @abstractmethod
    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None],
        *,
        batch_callback: Callable[[list[Envelope]], None] | None = None,
    ) -> Subscription:
        ...

    @abstractmethod
    def unsubscribe(self, subscription: Subscription) -> None:
        ...

    @abstractmethod
    def close(self) -> None:
        ...


class InProcessBroker(Broker):
    """Synchronous-delivery, thread-safe in-process broker.

    Delivery happens inside :meth:`publish` on the caller's thread;
    subscriber exceptions are captured into :attr:`delivery_errors`
    rather than propagated to publishers (a failed consumer must not
    break a running HPC job — the capture layer is non-intrusive).
    """

    def __init__(self, profile: BrokerProfile = REDIS_LIKE, clock: Clock | None = None):
        self.profile = profile
        # explicit None check: a clock at time zero compares falsy
        self.clock = clock if clock is not None else VirtualClock()
        self._subs: dict[int, Subscription] = {}
        self._next_sid = 0
        self._lock = threading.RLock()
        self._closed = False
        self.published_count = 0
        self.delivered_count = 0
        self.simulated_cost_s = 0.0
        self.delivery_errors: list[tuple[Envelope, BaseException]] = []
        self._log: list[Envelope] = []

    # -- publishing ------------------------------------------------------------
    #
    # Publish is split in two so the global lock is held only for
    # bookkeeping, never through subscriber code: under the lock the
    # envelopes are logged and *enqueued* onto each matching
    # subscription's FIFO (which pins the per-subscription delivery
    # order to the global publish order); outside the lock the caller
    # drains those queues, with a per-subscription ``_delivering`` flag
    # guaranteeing one drainer at a time.  Concurrent publishers
    # therefore serialise only on the cheap enqueue — a slow subscriber
    # blocks neither other publishers nor other subscriptions — while
    # each subscriber still observes every message exactly once, in
    # order, and (in the single-threaded case) synchronously within the
    # publish call, exactly as before.
    #
    # Consistency caveat: when ANOTHER thread currently owns a
    # subscription's drain, publish() returns after enqueueing and that
    # thread completes the delivery moments later.  Concurrent
    # publishers therefore get per-subscription ordered, at-most-
    # briefly-deferred delivery rather than strict read-your-writes —
    # the trade the paper's asynchronous bulk-streaming hub makes
    # anyway (capture must never block on consumers).  Single-threaded
    # publishers keep the old synchronous behaviour.
    def publish(self, topic: str, payload: Mapping[str, Any], **headers: Any) -> Envelope:
        validate_topic(topic)
        with self._lock:
            self._ensure_open()
            env = Envelope(
                topic=topic,
                payload=payload,
                published_at=self.clock.now(),
                headers=headers,
            )
            self.simulated_cost_s += self.profile.batch_cost([env.size_bytes()])
            targets = self._enqueue([env], batched=False)
        for sub in targets:
            self._drain(sub)
        return env

    def publish_batch(
        self, topic: str, payloads: Iterable[Mapping[str, Any]]
    ) -> list[Envelope]:
        validate_topic(topic)
        with self._lock:
            self._ensure_open()
            now = self.clock.now()
            envs = [
                Envelope(topic=topic, payload=p, published_at=now) for p in payloads
            ]
            self.simulated_cost_s += self.profile.batch_cost(
                e.size_bytes() for e in envs
            )
            targets = self._enqueue(envs, batched=True)
        for sub in targets:
            self._drain(sub)
        return envs

    def _enqueue(
        self, envs: list[Envelope], *, batched: bool
    ) -> list[Subscription]:
        """Log the envelopes and queue matching delivery work (under lock).

        Returns the subscriptions that received new work, in
        registration order.  Batch publishes enqueue one ``("batch",
        envelopes)`` item for batch-capable subscribers — one callback
        per batch, regardless of size — and per-envelope items
        otherwise.
        """
        for env in envs:
            self.published_count += 1
            self._log.append(env)
        targets: list[Subscription] = []
        for sub in self._subs.values():
            matched = [e for e in envs if topic_matches(sub.pattern, e.topic)]
            if not matched:
                continue
            if batched and sub.batch_callback is not None:
                sub._pending.append(("batch", matched))
            else:
                sub._pending.extend(("single", e) for e in matched)
            targets.append(sub)
        return targets

    def _drain(self, sub: Subscription) -> None:
        """Deliver ``sub``'s queued items until empty (outside the lock).

        The ``_delivering`` flag admits one drainer at a time; losing
        the race is fine because the winner cannot observe the queue
        empty (and release ownership) without seeing items we enqueued
        first — emptiness check and flag release happen in one
        ``_dlock`` section, and every enqueue precedes its ``_drain``
        call.
        """
        with sub._dlock:
            if sub._delivering or not sub._pending:
                return
            sub._delivering = True
        try:
            while True:
                with sub._dlock:
                    if not sub._pending:
                        sub._delivering = False
                        return
                    item = sub._pending.popleft()
                self._deliver_item(sub, item)
        except BaseException:  # pragma: no cover - interpreter shutdown paths
            with sub._dlock:
                sub._delivering = False
            raise

    def _deliver_item(self, sub: Subscription, item: tuple[str, Any]) -> None:
        kind, data = item
        if kind == "batch":
            try:
                sub.batch_callback(data)  # type: ignore[misc]
                with self._lock:
                    self.delivered_count += len(data)
            except Exception as exc:  # noqa: BLE001 - consumer isolation
                # every envelope in the failed batch is a lost message
                with self._lock:
                    self.delivery_errors.extend((env, exc) for env in data)
        else:
            self._deliver_one(sub, data)

    def _deliver_one(self, sub: Subscription, env: Envelope) -> None:
        try:
            sub.callback(env)
            with self._lock:
                self.delivered_count += 1
        except Exception as exc:  # noqa: BLE001 - consumer isolation
            with self._lock:
                self.delivery_errors.append((env, exc))

    # -- subscriptions ------------------------------------------------------------
    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None],
        *,
        batch_callback: Callable[[list[Envelope]], None] | None = None,
    ) -> Subscription:
        validate_pattern(pattern)
        with self._lock:
            self._ensure_open()
            sub = Subscription(pattern, callback, self._next_sid, batch_callback)
            self._subs[self._next_sid] = sub
            self._next_sid += 1
            return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            self._subs.pop(subscription.sid, None)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    # -- replay / introspection ------------------------------------------------------
    def history(self, pattern: str = "#") -> list[Envelope]:
        """Messages retained by the broker that match ``pattern``."""
        validate_pattern(pattern)
        with self._lock:
            return [e for e in self._log if topic_matches(pattern, e.topic)]

    def replay(self, pattern: str, callback: Callable[[Envelope], None]) -> int:
        """Deliver retained history to a late subscriber; returns count."""
        matched = self.history(pattern)
        for env in matched:
            callback(env)
        return len(matched)

    # -- lifecycle -------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._subs.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise BrokerClosedError("broker is closed")
