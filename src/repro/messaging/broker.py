"""Brokers: thread-safe topic pub/sub with pluggable cost profiles.

:class:`InProcessBroker` delivers synchronously to callback subscribers
(deterministic, easy to test) while remaining thread-safe for the
workflow engine's worker threads.  A :class:`BrokerProfile` attaches a
*simulated* cost model — per-publish latency, per-byte cost, and batch
amortisation — mirroring the trade-offs the paper names for Redis
(low-latency, minimal setup), Kafka (high-throughput batching), and
Mofka (RDMA-optimised transport).  Costs accrue on a virtual clock so
benchmarks can compare brokers without real network I/O.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import BrokerClosedError
from repro.messaging.message import Envelope
from repro.messaging.pubsub import topic_matches, validate_pattern, validate_topic
from repro.utils.clock import Clock, VirtualClock

__all__ = [
    "Broker",
    "BrokerProfile",
    "InProcessBroker",
    "Subscription",
    "REDIS_LIKE",
    "KAFKA_LIKE",
    "MOFKA_LIKE",
]


@dataclass(frozen=True)
class BrokerProfile:
    """Simulated transport cost model.

    ``batch_overhead_s`` is paid once per publish *call* (request/ack
    round trip), ``per_message_s`` once per message inside the call, and
    ``per_byte_s`` scales with payload size.  Large batches therefore
    amortise the call overhead — which is exactly Kafka's trade-off:
    expensive round trips, cheap records.
    """

    name: str
    per_message_s: float
    per_byte_s: float
    batch_overhead_s: float

    def batch_cost(self, sizes: Iterable[int]) -> float:
        sizes = list(sizes)
        return (
            self.batch_overhead_s
            + len(sizes) * self.per_message_s
            + sum(sizes) * self.per_byte_s
        )


# Profiles express *relative* behaviour (paper §2.3): Redis — cheap
# round trips, fine for singles with minimal setup; Kafka — expensive
# round trips but tiny per-record cost, so batch amortisation wins at
# volume; Mofka — RDMA-like, cheapest overall on tightly coupled HPC
# networks.
REDIS_LIKE = BrokerProfile("redis-like", 50e-6, 2e-9, 10e-6)
KAFKA_LIKE = BrokerProfile("kafka-like", 10e-6, 0.5e-9, 400e-6)
MOFKA_LIKE = BrokerProfile("mofka-like", 5e-6, 0.2e-9, 2e-6)


@dataclass
class Subscription:
    """Handle returned by :meth:`Broker.subscribe`; use to unsubscribe.

    ``batch_callback`` is optional: subscribers that can consume a whole
    batch in one call (e.g. the Provenance Keeper's batched upsert path)
    receive one ``batch_callback(envelopes)`` per matching batch publish
    instead of N ``callback(envelope)`` invocations.
    """

    pattern: str
    callback: Callable[[Envelope], None]
    sid: int
    batch_callback: Callable[[list[Envelope]], None] | None = None


class Broker(ABC):
    """Interface every hub backend implements."""

    @abstractmethod
    def publish(self, topic: str, payload: Mapping[str, Any], **headers: Any) -> Envelope:
        ...

    @abstractmethod
    def publish_batch(self, topic: str, payloads: Iterable[Mapping[str, Any]]) -> list[Envelope]:
        ...

    @abstractmethod
    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None],
        *,
        batch_callback: Callable[[list[Envelope]], None] | None = None,
    ) -> Subscription:
        ...

    @abstractmethod
    def unsubscribe(self, subscription: Subscription) -> None:
        ...

    @abstractmethod
    def close(self) -> None:
        ...


class InProcessBroker(Broker):
    """Synchronous-delivery, thread-safe in-process broker.

    Delivery happens inside :meth:`publish` on the caller's thread;
    subscriber exceptions are captured into :attr:`delivery_errors`
    rather than propagated to publishers (a failed consumer must not
    break a running HPC job — the capture layer is non-intrusive).
    """

    def __init__(self, profile: BrokerProfile = REDIS_LIKE, clock: Clock | None = None):
        self.profile = profile
        self.clock = clock or VirtualClock()
        self._subs: dict[int, Subscription] = {}
        self._next_sid = 0
        self._lock = threading.RLock()
        self._closed = False
        self.published_count = 0
        self.delivered_count = 0
        self.simulated_cost_s = 0.0
        self.delivery_errors: list[tuple[Envelope, BaseException]] = []
        self._log: list[Envelope] = []

    # -- publishing ------------------------------------------------------------
    def publish(self, topic: str, payload: Mapping[str, Any], **headers: Any) -> Envelope:
        validate_topic(topic)
        with self._lock:
            self._ensure_open()
            env = Envelope(
                topic=topic,
                payload=payload,
                published_at=self.clock.now(),
                headers=headers,
            )
            self.simulated_cost_s += self.profile.batch_cost([env.size_bytes()])
            self._record_and_deliver([env], batched=False)
            return env

    def publish_batch(
        self, topic: str, payloads: Iterable[Mapping[str, Any]]
    ) -> list[Envelope]:
        validate_topic(topic)
        with self._lock:
            self._ensure_open()
            now = self.clock.now()
            envs = [
                Envelope(topic=topic, payload=p, published_at=now) for p in payloads
            ]
            self.simulated_cost_s += self.profile.batch_cost(
                e.size_bytes() for e in envs
            )
            self._record_and_deliver(envs, batched=True)
            return envs

    def _record_and_deliver(self, envs: list[Envelope], *, batched: bool) -> None:
        subs = list(self._subs.values())
        for env in envs:
            self.published_count += 1
            self._log.append(env)
        if not batched:
            # plain publish: deliver in subscriber registration order
            for env in envs:
                for sub in subs:
                    if topic_matches(sub.pattern, env.topic):
                        self._deliver_one(sub, env)
            return
        # batch publish: batch-capable subscribers get one call per batch,
        # regardless of batch size
        for sub in subs:
            matched = [e for e in envs if topic_matches(sub.pattern, e.topic)]
            if not matched:
                continue
            if sub.batch_callback is not None:
                try:
                    sub.batch_callback(matched)
                    self.delivered_count += len(matched)
                except Exception as exc:  # noqa: BLE001 - consumer isolation
                    # every envelope in the failed batch is a lost message
                    self.delivery_errors.extend((env, exc) for env in matched)
            else:
                for env in matched:
                    self._deliver_one(sub, env)

    def _deliver_one(self, sub: Subscription, env: Envelope) -> None:
        try:
            sub.callback(env)
            self.delivered_count += 1
        except Exception as exc:  # noqa: BLE001 - consumer isolation
            self.delivery_errors.append((env, exc))

    # -- subscriptions ------------------------------------------------------------
    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None],
        *,
        batch_callback: Callable[[list[Envelope]], None] | None = None,
    ) -> Subscription:
        validate_pattern(pattern)
        with self._lock:
            self._ensure_open()
            sub = Subscription(pattern, callback, self._next_sid, batch_callback)
            self._subs[self._next_sid] = sub
            self._next_sid += 1
            return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            self._subs.pop(subscription.sid, None)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    # -- replay / introspection ------------------------------------------------------
    def history(self, pattern: str = "#") -> list[Envelope]:
        """Messages retained by the broker that match ``pattern``."""
        validate_pattern(pattern)
        with self._lock:
            return [e for e in self._log if topic_matches(pattern, e.topic)]

    def replay(self, pattern: str, callback: Callable[[Envelope], None]) -> int:
        """Deliver retained history to a late subscriber; returns count."""
        matched = self.history(pattern)
        for env in matched:
            callback(env)
        return len(matched)

    # -- lifecycle -------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._subs.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise BrokerClosedError("broker is closed")
