"""Streaming hub: the asynchronous backbone of the provenance architecture.

The paper's reference architecture (Fig. 2) streams provenance messages
from instrumented workflows to a central hub over a publish/subscribe
protocol; Provenance Keepers and the agent's Context Manager subscribe to
it.  This package provides:

* :class:`~repro.messaging.broker.InProcessBroker` — a thread-safe topic
  pub/sub broker (the in-process stand-in for Redis Pub/Sub);
* broker **performance profiles** (redis-like, kafka-like, mofka-like)
  modelling the per-message/per-batch costs the paper attributes to each
  backend, for the ablation benchmark;
* :class:`~repro.messaging.buffer.MessageBuffer` — client-side buffering
  with size/interval/hybrid flush strategies ("provenance messages are
  buffered in-memory and streamed asynchronously in bulk");
* :class:`~repro.messaging.federation.FederatedHub` — several brokers
  behind one facade, routed by topic prefix, for large ECH deployments.
"""

from repro.messaging.message import Envelope
from repro.messaging.broker import (
    Broker,
    BrokerProfile,
    InProcessBroker,
    KAFKA_LIKE,
    MOFKA_LIKE,
    REDIS_LIKE,
    Subscription,
)
from repro.messaging.buffer import (
    FlushStrategy,
    HybridFlush,
    IntervalFlush,
    MessageBuffer,
    SizeFlush,
)
from repro.messaging.federation import FederatedHub
from repro.messaging.pubsub import topic_matches

__all__ = [
    "Envelope",
    "Broker",
    "BrokerProfile",
    "InProcessBroker",
    "Subscription",
    "REDIS_LIKE",
    "KAFKA_LIKE",
    "MOFKA_LIKE",
    "FlushStrategy",
    "SizeFlush",
    "IntervalFlush",
    "HybridFlush",
    "MessageBuffer",
    "FederatedHub",
    "topic_matches",
]
