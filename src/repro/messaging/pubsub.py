"""Topic pattern matching.

Topics are dot-separated segments (``provenance.task``,
``provenance.anomaly``).  Subscriptions may use ``*`` to match exactly
one segment and ``#`` to match any remaining suffix (RabbitMQ-style),
so ``provenance.#`` receives every provenance message.
"""

from __future__ import annotations

from repro.errors import TopicError

__all__ = ["topic_matches", "validate_topic", "validate_pattern"]


def validate_topic(topic: str) -> None:
    if not topic or any(not seg for seg in topic.split(".")):
        raise TopicError(f"invalid topic {topic!r}")
    if "*" in topic or "#" in topic:
        raise TopicError(f"topic {topic!r} must not contain wildcards")


def validate_pattern(pattern: str) -> None:
    if not pattern:
        raise TopicError("empty pattern")
    segs = pattern.split(".")
    if any(not seg for seg in segs):
        raise TopicError(f"invalid pattern {pattern!r}")
    if "#" in segs[:-1]:
        raise TopicError(f"'#' may only appear as the final segment: {pattern!r}")
    for seg in segs:
        if len(seg) > 1 and ("*" in seg or "#" in seg):
            raise TopicError(f"wildcards must be whole segments: {pattern!r}")


def topic_matches(pattern: str, topic: str) -> bool:
    """True when ``topic`` is covered by ``pattern``."""
    p_segs = pattern.split(".")
    t_segs = topic.split(".")
    for i, p in enumerate(p_segs):
        if p == "#":
            return True
        if i >= len(t_segs):
            return False
        if p != "*" and p != t_segs[i]:
            return False
    return len(p_segs) == len(t_segs)
