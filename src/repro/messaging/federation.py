"""Federated streaming hub.

Large ECH deployments can run several brokers "tailored to specific
performance and reliability needs" (paper §2.3): e.g. a Mofka-like hub
inside the HPC fabric and a Redis-like hub for edge services.  The
federation routes publishes by topic prefix and fans subscriptions out
to every member, presenting the combined system as a single hub.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.errors import TopicError
from repro.messaging.broker import Broker, Subscription
from repro.messaging.message import Envelope

__all__ = ["FederatedHub"]


class FederatedHub(Broker):
    """Multiple brokers behind a single Broker facade.

    Routes are ``(topic_prefix, broker)`` pairs checked in registration
    order; the first matching prefix wins.  A default broker handles
    everything unrouted.
    """

    def __init__(self, default: Broker):
        self.default = default
        self._routes: list[tuple[str, Broker]] = []

    def add_route(self, topic_prefix: str, broker: Broker) -> None:
        if not topic_prefix:
            raise TopicError("empty topic prefix")
        self._routes.append((topic_prefix, broker))

    def route_for(self, topic: str) -> Broker:
        for prefix, broker in self._routes:
            if topic == prefix or topic.startswith(prefix + "."):
                return broker
        return self.default

    def members(self) -> list[Broker]:
        seen: list[Broker] = []
        for _, b in self._routes:
            if b not in seen:
                seen.append(b)
        if self.default not in seen:
            seen.append(self.default)
        return seen

    # -- Broker interface -------------------------------------------------------
    def publish(self, topic: str, payload: Mapping[str, Any], **headers: Any) -> Envelope:
        return self.route_for(topic).publish(topic, payload, **headers)

    def publish_batch(
        self, topic: str, payloads: Iterable[Mapping[str, Any]]
    ) -> list[Envelope]:
        return self.route_for(topic).publish_batch(topic, payloads)

    def subscribe(
        self,
        pattern: str,
        callback: Callable[[Envelope], None],
        *,
        batch_callback: Callable[[list[Envelope]], None] | None = None,
    ) -> Subscription:
        # Fan out to every member; the returned handle wraps them all.
        subs = [
            b.subscribe(pattern, callback, batch_callback=batch_callback)
            for b in self.members()
        ]
        handle = Subscription(pattern, callback, sid=-1, batch_callback=batch_callback)
        handle.fanout = subs  # type: ignore[attr-defined]
        handle.brokers = self.members()  # type: ignore[attr-defined]
        return handle

    def unsubscribe(self, subscription: Subscription) -> None:
        for broker, sub in zip(
            getattr(subscription, "brokers", []),
            getattr(subscription, "fanout", []),
        ):
            broker.unsubscribe(sub)

    def close(self) -> None:
        for b in self.members():
            b.close()
